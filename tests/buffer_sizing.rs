//! Integration tests for the buffer-size-constrained pipeline (Table 2,
//! bottom half).

use kiter::generators::{buffer_sized, dsp, random_graph, RandomGraphConfig};
use kiter::{optimal_throughput, symbolic_execution_throughput, Budget, Throughput};

/// Bounding buffers can only reduce the throughput.
#[test]
fn bounded_throughput_never_exceeds_unbounded() {
    for seed in 0..10 {
        let graph = random_graph(&RandomGraphConfig::small_csdf(), seed).expect("generator");
        let unbounded = optimal_throughput(&graph).expect("kiter");
        let bounded_graph = buffer_sized(&graph, 2).expect("bounding");
        let bounded = optimal_throughput(&bounded_graph).expect("kiter bounded");
        assert!(
            bounded.throughput <= unbounded.throughput,
            "seed {seed}: bounding increased the throughput"
        );
    }
}

/// Larger capacities can only help.
#[test]
fn throughput_is_monotone_in_buffer_slack() {
    let graph = dsp::modem().expect("modem");
    let mut previous = Throughput::Deadlocked;
    for slack in [1u64, 2, 4, 8] {
        let bounded = buffer_sized(&graph, slack).expect("bounding");
        let result = optimal_throughput(&bounded).expect("kiter");
        assert!(
            result.throughput >= previous,
            "throughput decreased when slack grew to {slack}"
        );
        previous = result.throughput;
    }
    // With generous capacities the bounded graph reaches the unbounded
    // optimum.
    let unbounded = optimal_throughput(&graph).expect("kiter");
    let generous = optimal_throughput(&buffer_sized(&graph, 64).expect("bounding")).expect("kiter");
    assert_eq!(generous.throughput, unbounded.throughput);
}

/// The exact methods still agree on bounded graphs (where the simulator's
/// state space is finite by construction).
#[test]
fn bounded_graphs_cross_validate() {
    let budget = Budget::default();
    for seed in 0..10 {
        let graph = random_graph(&RandomGraphConfig::small_csdf(), seed).expect("generator");
        let bounded_graph = buffer_sized(&graph, 3).expect("bounding");
        let kiter = optimal_throughput(&bounded_graph).expect("kiter");
        let symbolic = symbolic_execution_throughput(&bounded_graph, &budget).expect("symbolic");
        if let Some(reference) = symbolic.throughput() {
            assert_eq!(kiter.throughput, reference, "seed {seed}");
        }
    }
}

/// Tiny capacities deadlock multirate graphs; both methods must notice.
#[test]
fn undersized_buffers_deadlock() {
    let mut builder = kiter::CsdfGraphBuilder::new();
    let producer = builder.add_sdf_task("producer", 1);
    let consumer = builder.add_sdf_task("consumer", 1);
    builder.add_sdf_buffer(producer, consumer, 5, 3, 0);
    builder.add_serializing_self_loop(producer);
    builder.add_serializing_self_loop(consumer);
    let graph = builder.build().expect("valid");
    // Capacity 4 < production burst of 5: the producer can never fire.
    let bounded = csdf::transform::bound_buffers(
        &graph,
        &[csdf::transform::BufferCapacity {
            buffer: kiter::BufferId::new(0),
            capacity: 4,
        }],
    )
    .expect("bounding");
    let kiter = optimal_throughput(&bounded).expect("kiter");
    assert_eq!(kiter.throughput, Throughput::Deadlocked);
    let symbolic = symbolic_execution_throughput(&bounded, &Budget::default()).expect("symbolic");
    assert_eq!(symbolic.throughput(), Some(Throughput::Deadlocked));
}
