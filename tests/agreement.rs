//! Cross-crate integration tests: the three exact methods must agree.

use kiter::generators::{dsp, random_graph, RandomGraphConfig};
use kiter::{
    expansion_throughput, optimal_throughput, paper_example, periodic_throughput,
    symbolic_execution_throughput, Budget, Throughput,
};

/// K-Iter and symbolic execution are both exact: they must agree on every
/// graph the simulator can finish within its budget.
#[test]
fn kiter_matches_symbolic_execution_on_random_csdf_graphs() {
    let config = RandomGraphConfig::small_csdf();
    let budget = Budget::default();
    let mut checked = 0;
    for seed in 0..40 {
        let graph = random_graph(&config, seed).expect("generator cannot fail");
        let kiter = optimal_throughput(&graph).expect("kiter");
        let symbolic = symbolic_execution_throughput(&graph, &budget).expect("symbolic");
        if let Some(reference) = symbolic.throughput() {
            assert_eq!(
                kiter.throughput, reference,
                "disagreement on seed {seed}:\n{graph}"
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 32,
        "too many symbolic-execution timeouts: {checked}/40"
    );
}

/// The phase-level HSDF expansion is exact on true CSDF graphs too.
#[test]
fn kiter_matches_expansion_on_random_csdf_graphs() {
    let config = RandomGraphConfig::small_csdf();
    let budget = Budget::default();
    let mut checked = 0;
    for seed in 0..25 {
        let graph = random_graph(&config, seed).expect("generator cannot fail");
        let kiter = optimal_throughput(&graph).expect("kiter");
        let expansion = expansion_throughput(&graph, &budget).expect("expansion");
        if let Some(reference) = expansion.throughput() {
            assert_eq!(
                kiter.throughput, reference,
                "disagreement on seed {seed}:\n{graph}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 20, "too many expansion timeouts: {checked}/25");
}

/// On SDF graphs the expansion method is exact as well.
#[test]
fn kiter_matches_expansion_on_random_sdf_graphs() {
    let config = RandomGraphConfig::sdf(6);
    let budget = Budget::default();
    for seed in 0..25 {
        let graph = random_graph(&config, seed).expect("generator cannot fail");
        let kiter = optimal_throughput(&graph).expect("kiter");
        let expansion = expansion_throughput(&graph, &budget).expect("expansion");
        if let Some(reference) = expansion.throughput() {
            assert_eq!(
                kiter.throughput, reference,
                "disagreement on seed {seed}:\n{graph}"
            );
        }
    }
}

/// The periodic method is a lower bound of the optimum, never above it.
#[test]
fn periodic_is_a_lower_bound_on_random_graphs() {
    let config = RandomGraphConfig::default();
    for seed in 0..25 {
        let graph = random_graph(&config, seed).expect("generator cannot fail");
        let kiter = optimal_throughput(&graph).expect("kiter");
        let periodic = periodic_throughput(&graph).expect("periodic");
        if let (Some(bound), Throughput::Finite(_)) = (periodic.throughput(), kiter.throughput) {
            assert!(
                bound <= kiter.throughput,
                "periodic bound above optimum on seed {seed}"
            );
        }
    }
}

/// The reconstructed paper example: exact methods agree, periodic is a bound.
#[test]
fn paper_example_cross_validation() {
    let (graph, _) = paper_example();
    let kiter = optimal_throughput(&graph).expect("kiter");
    assert!(matches!(kiter.throughput, Throughput::Finite(_)));

    let symbolic = symbolic_execution_throughput(&graph, &Budget::benchmark()).expect("symbolic");
    if let Some(reference) = symbolic.throughput() {
        assert_eq!(kiter.throughput, reference);
    }

    let periodic = periodic_throughput(&graph).expect("periodic");
    if let Some(bound) = periodic.throughput() {
        assert!(bound <= kiter.throughput);
    }
}

/// The hand-written DSP applications: every method that completes agrees.
#[test]
fn dsp_suite_cross_validation() {
    let budget = Budget::default();
    for graph in dsp::actual_dsp_suite().expect("dsp suite") {
        let kiter = optimal_throughput(&graph).expect("kiter");
        assert!(
            matches!(kiter.throughput, Throughput::Finite(_)),
            "{} must have a finite optimal throughput",
            graph.name()
        );
        let expansion = expansion_throughput(&graph, &budget).expect("expansion");
        if let Some(reference) = expansion.throughput() {
            assert_eq!(kiter.throughput, reference, "{}", graph.name());
        }
        let symbolic = symbolic_execution_throughput(&graph, &budget).expect("symbolic");
        if let Some(reference) = symbolic.throughput() {
            assert_eq!(kiter.throughput, reference, "{}", graph.name());
        }
    }
}

/// Deadlocked graphs are recognised identically by K-Iter and the simulator.
#[test]
fn deadlock_detection_agrees() {
    let mut builder = kiter::CsdfGraphBuilder::new();
    let a = builder.add_task("a", vec![1, 2]);
    let b = builder.add_sdf_task("b", 3);
    builder.add_buffer(a, b, vec![1, 1], vec![2], 0);
    builder.add_buffer(b, a, vec![2], vec![1, 1], 1);
    let graph = builder.build().expect("valid graph");
    let kiter = optimal_throughput(&graph).expect("kiter");
    let symbolic = symbolic_execution_throughput(&graph, &Budget::default()).expect("symbolic");
    assert_eq!(Some(kiter.throughput), symbolic.throughput());
}
