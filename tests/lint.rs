//! Cross-layer properties of the static analyzer: on every random generator
//! graph the pre-solve bounds must bracket the exact K-periodic answer, a
//! static deadlock proof must match the solver's verdict, and the whole
//! report must be bit-identical across threads.

use kiter::generators::{random_graph, RandomGraphConfig};
use kiter::lint::{analyze, LintReport};
use kiter::{optimal_throughput, Throughput};

/// The three generator families swept by the property tests. Every family
/// serialises its tasks with one-token self-loops (the SDF3 benchmark
/// convention), which is the precondition under which the lint upper bounds
/// are sound for the solver's event-graph model.
fn families() -> Vec<(&'static str, RandomGraphConfig)> {
    vec![
        ("sdf", RandomGraphConfig::sdf(6)),
        ("small_csdf", RandomGraphConfig::small_csdf()),
        ("default_csdf", RandomGraphConfig::default()),
    ]
}

#[test]
fn bounds_bracket_the_exact_throughput_on_500_random_graphs() {
    let mut checked = 0usize;
    for (family, config) in families() {
        for seed in 0..200u64 {
            let graph = random_graph(&config, seed).expect("generator emits valid graphs");
            let report = analyze(&graph);
            let bounds = report
                .bounds
                .unwrap_or_else(|| panic!("{family}/{seed}: consistent graph must get bounds"));
            let exact = optimal_throughput(&graph)
                .unwrap_or_else(|e| panic!("{family}/{seed}: solver failed: {e}"))
                .throughput;
            assert!(
                bounds.brackets(&exact),
                "{family}/{seed}: exact {exact:?} escapes the bracket [{:?}, {:?}]",
                bounds.lower,
                bounds.upper,
            );
            if report.certain_deadlock() {
                assert_eq!(
                    exact,
                    Throughput::Deadlocked,
                    "{family}/{seed}: a static deadlock proof must match the solver",
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 500, "swept only {checked} graphs");
}

#[test]
fn every_error_on_a_generated_graph_is_a_confirmed_deadlock_proof() {
    // The generator only emits consistent graphs, but its feedback markings
    // occasionally deadlock (e.g. the `sdf` family at seed 20). So error
    // diagnostics are allowed — yet each must be a deadlock *proof* the
    // solver confirms; anything else (L000/L001) would be a false positive.
    for (family, config) in families() {
        for seed in 0..50u64 {
            let graph = random_graph(&config, seed).unwrap();
            let report = analyze(&graph);
            let errors: Vec<_> = report
                .diagnostics
                .iter()
                .filter(|d| d.code.severity() == kiter::lint::Severity::Error)
                .collect();
            if errors.is_empty() {
                continue;
            }
            assert!(
                errors.iter().all(|d| d.code.proves_deadlock()),
                "{family}/{seed}: non-deadlock error on a generated graph:\n{}",
                report.render(None),
            );
            let exact = optimal_throughput(&graph).unwrap().throughput;
            assert_eq!(
                exact,
                Throughput::Deadlocked,
                "{family}/{seed}: lint proved a deadlock the solver does not see",
            );
        }
    }
}

#[test]
fn reports_are_bit_identical_across_threads_on_random_graphs() {
    let config = RandomGraphConfig::default();
    let graphs: Vec<_> = (0..16u64)
        .map(|seed| random_graph(&config, seed).unwrap())
        .collect();
    let baseline: Vec<LintReport> = graphs.iter().map(analyze).collect();
    let runs: Vec<Vec<LintReport>> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| scope.spawn(|| graphs.iter().map(analyze).collect::<Vec<_>>()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    for run in runs {
        assert_eq!(run, baseline);
        for (report, expected) in run.iter().zip(&baseline) {
            assert_eq!(report.render(Some("g")), expected.render(Some("g")));
        }
    }
}
