//! Cross-method agreement on the paper's running example (Figure 2).
//!
//! The three exact throughput evaluation methods — K-Iter (the paper's
//! contribution), HSDF expansion and symbolic execution — must all report the
//! same maximum throughput for the reconstructed Figure-2 graph, and the
//! 1-periodic bound must stay at or below it.

use kiter::{
    expansion_throughput, optimal_throughput, paper_example, periodic_throughput,
    symbolic_execution_throughput, Budget, Throughput,
};

#[test]
fn kiter_expansion_and_symbolic_execution_agree_on_the_paper_example() {
    let (graph, _) = paper_example();
    let budget = Budget::default();

    let kiter = optimal_throughput(&graph).expect("kiter");
    let expansion = expansion_throughput(&graph, &budget).expect("expansion");
    let symbolic = symbolic_execution_throughput(&graph, &budget).expect("symbolic");

    let expansion_value = expansion
        .throughput()
        .expect("expansion finishes within the default budget on the paper example");
    let symbolic_value = symbolic
        .throughput()
        .expect("symbolic execution finishes within the default budget on the paper example");

    assert_eq!(
        kiter.throughput, expansion_value,
        "K-Iter and HSDF expansion disagree:\n{graph}"
    );
    assert_eq!(
        kiter.throughput, symbolic_value,
        "K-Iter and symbolic execution disagree:\n{graph}"
    );
}

#[test]
fn periodic_bound_does_not_exceed_the_optimum_on_the_paper_example() {
    let (graph, _) = paper_example();
    let optimal = optimal_throughput(&graph).expect("kiter");
    let periodic = periodic_throughput(&graph).expect("periodic");
    if let Some(bound) = periodic.throughput() {
        assert!(
            bound <= optimal.throughput,
            "1-periodic bound {bound:?} exceeds the optimum {:?}",
            optimal.throughput
        );
    }
}

#[test]
fn the_paper_example_optimum_is_finite_and_stable() {
    let (graph, tasks) = paper_example();
    assert_eq!(graph.task_count(), 4);
    let q = graph.repetition_vector().expect("consistent");
    assert_eq!(q.get(tasks.a), 6);
    assert_eq!(q.get(tasks.b), 12);
    assert_eq!(q.get(tasks.c), 6);
    assert_eq!(q.get(tasks.d), 1);

    let result = optimal_throughput(&graph).expect("kiter");
    let Throughput::Finite(value) = result.throughput else {
        panic!("the paper example must have finite throughput");
    };
    // Regression pin: the reconstruction's exact optimum, cross-checked above
    // against expansion and symbolic execution.
    let period = result.period().expect("finite throughput has a period");
    assert_eq!(
        period.checked_mul(&value).expect("no overflow"),
        kiter::Rational::ONE
    );
}
