//! Integration and property tests for the long-lived analysis-session /
//! design-space-exploration stack (ISSUE 5): a mutated-in-place session must
//! be **bit-identical** — throughput, periodicity vector K, iteration count,
//! critical tasks — to a from-scratch evaluation of the mutated graph, for
//! random capacity/token edits in both directions, including deadlocking
//! capacities.

use proptest::prelude::*;

use kiter::explore::{ExploreOptions, ParetoSweep, ScenarioSet};
use kiter::generators::{random_graph, RandomGraphConfig};
use kiter::model::transform::bound_all_buffers_tracked;
use kiter::model::{text, BufferId};
use kiter::{kiter_with_options, optimal_throughput, AnalysisSession, KIterOptions};

/// Deterministic xorshift so edit sequences are reproducible per seed.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// The ISSUE-5 acceptance property: a session whose bounded graph is
    /// mutated in place through random capacity edits (both directions,
    /// including capacities small enough to deadlock) and random marking
    /// edits stays bit-identical to a cold `kiter_with_options` run on a
    /// copy of the mutated graph — same throughput, K, iteration count and
    /// critical tasks — while only ever building its arena once.
    #[test]
    fn mutated_sessions_are_bit_identical_to_cold_evaluations(
        seed in 0u64..5_000,
        edits in 3usize..7,
    ) {
        let graph = random_graph(&RandomGraphConfig::small_csdf(), seed).expect("generator");
        let bounded = bound_all_buffers_tracked(&graph, |_, b| {
            2 * (b.total_production() + b.total_consumption()) + b.initial_tokens()
        })
        .expect("bounding");
        let pairs: Vec<(BufferId, BufferId)> = bounded.bounded_pairs().collect();
        prop_assert!(!pairs.is_empty());

        let mut session =
            AnalysisSession::new(bounded.graph().clone(), KIterOptions::default())
                .expect("session");
        let mut reference = bounded.graph().clone();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;

        for _ in 0..edits {
            // A batch of 1–3 mutations between evaluations.
            for _ in 0..1 + xorshift(&mut state) % 3 {
                let (forward, reverse) = pairs[(xorshift(&mut state) % pairs.len() as u64) as usize];
                if xorshift(&mut state) % 3 == 0 {
                    // Marking edit on the forward buffer, both directions.
                    let tokens = xorshift(&mut state) % 6;
                    session.set_initial_tokens(forward, tokens).expect("marking edit");
                    reference.set_initial_tokens(forward, tokens).expect("marking edit");
                } else {
                    // Capacity edit: the floor is the forward marking, so
                    // small deltas cover deadlocking capacities.
                    let marking = reference.buffer(forward).initial_tokens();
                    let capacity = marking + xorshift(&mut state) % 12;
                    session.set_capacity(forward, reverse, capacity).expect("capacity edit");
                    reference.set_capacity(forward, reverse, capacity).expect("capacity edit");
                }
            }
            let from_session = session.evaluate().expect("session evaluation");
            let cold = kiter_with_options(&reference, &KIterOptions::default())
                .expect("cold evaluation");
            prop_assert_eq!(&from_session, &cold);
        }
        // The whole history of mutations never forced a rebuild.
        prop_assert_eq!(session.stats().full_builds, 1);
        prop_assert_eq!(session.solves(), edits);
    }

    /// Warm-started sessions keep the throughput exact in both directions:
    /// after relaxations they may reuse the previous K (fewer iterations),
    /// after tightenings they must fall back to the bit-identical cold
    /// start on their own.
    #[test]
    fn warm_started_sessions_keep_the_exact_throughput(
        seed in 0u64..5_000,
        edits in 3usize..6,
    ) {
        let graph = random_graph(&RandomGraphConfig::small_csdf(), seed).expect("generator");
        let bounded = bound_all_buffers_tracked(&graph, |_, b| {
            2 * (b.total_production() + b.total_consumption()) + b.initial_tokens()
        })
        .expect("bounding");
        let pairs: Vec<(BufferId, BufferId)> = bounded.bounded_pairs().collect();
        prop_assert!(!pairs.is_empty());

        let mut warm = AnalysisSession::new(bounded.graph().clone(), KIterOptions::default())
            .expect("session")
            .with_warm_start(true);
        let mut reference = bounded.graph().clone();
        let mut state = seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;

        for _ in 0..edits {
            let (forward, reverse) = pairs[(xorshift(&mut state) % pairs.len() as u64) as usize];
            let marking = reference.buffer(forward).initial_tokens();
            // Alternating generous and tight capacities exercises both the
            // warm path and the cold fallback.
            let capacity = marking + xorshift(&mut state) % 16;
            warm.set_capacity(forward, reverse, capacity).expect("capacity edit");
            reference.set_capacity(forward, reverse, capacity).expect("capacity edit");

            let warm_result = warm.evaluate().expect("warm evaluation");
            let cold = optimal_throughput(&reference).expect("cold evaluation");
            prop_assert_eq!(warm_result.throughput, cold.throughput);
        }
    }

    /// A uniform-slack Pareto sweep — the 32-point acceptance workload at
    /// property-test scale — matches independent cold evaluations point by
    /// point at every worker count.
    #[test]
    fn pareto_sweeps_match_cold_evaluations(seed in 0u64..5_000) {
        let graph = random_graph(&RandomGraphConfig::small_csdf(), seed).expect("generator");
        let sweep = ParetoSweep::uniform_slack(&graph, &[1, 2, 3, 4]).expect("sweep");
        let reference = sweep.run(&ExploreOptions::default()).expect("sequential run");
        for workers in [2usize, 4] {
            let parallel = sweep
                .run(&ExploreOptions { workers, ..ExploreOptions::default() })
                .expect("parallel run");
            prop_assert_eq!(&reference.points, &parallel.points);
        }
        for point in &reference.points {
            let mut cold = sweep.bounded().clone();
            for &(forward, capacity) in &point.capacities {
                let reverse = cold.reverse_of(forward).expect("tracked pair");
                cold.graph_mut().set_capacity(forward, reverse, capacity).expect("resize");
            }
            let cold_result = optimal_throughput(cold.graph()).expect("cold evaluation");
            prop_assert_eq!(&point.result, &cold_result);
        }
    }
}

/// The committed SDF3 benchmark fixture replays end to end through the
/// session API: import, bound, sweep, and agree with cold evaluations.
#[test]
fn sdf3_fixture_replays_through_the_session_api() {
    let xml = include_str!("../crates/csdf/tests/fixtures/modem.sdf3.xml");
    let imported = text::parse_sdf3_xml(xml).expect("fixture imports");
    let graph = kiter::model::transform::serialize_tasks(&imported).expect("serialises");

    let unbounded = optimal_throughput(&graph).expect("kiter");
    assert!(
        matches!(unbounded.throughput, kiter::Throughput::Finite(_)),
        "fixture must have finite throughput, got {}",
        unbounded.throughput
    );

    let sweep = ParetoSweep::uniform_slack(&graph, &[1, 2, 4, 8]).expect("sweep");
    let outcome = sweep.run(&ExploreOptions::default()).expect("run");
    for pair in outcome.points.windows(2) {
        assert!(pair[1].throughput() >= pair[0].throughput());
    }
    // Generous capacities recover the unbounded optimum.
    assert_eq!(
        outcome.points.last().expect("points").throughput(),
        unbounded.throughput
    );
    for point in &outcome.points {
        let mut cold = sweep.bounded().clone();
        for &(forward, capacity) in &point.capacities {
            let reverse = cold.reverse_of(forward).expect("tracked");
            cold.graph_mut()
                .set_capacity(forward, reverse, capacity)
                .expect("resize");
        }
        assert_eq!(
            point.result,
            optimal_throughput(cold.graph()).expect("cold"),
            "slack {} diverged",
            point.label
        );
    }
}

/// Scenario sets are the replay vehicle for marking studies: outcomes match
/// cold evaluations and are order-stable across worker counts.
#[test]
fn scenario_sets_replay_marking_studies() {
    let xml = include_str!("../crates/csdf/tests/fixtures/modem.sdf3.xml");
    let imported = text::parse_sdf3_xml(xml).expect("fixture imports");
    let graph = kiter::model::transform::serialize_tasks(&imported).expect("serialises");
    let ctrl = BufferId::new(4); // the rate-limiting return channel

    let mut scenarios = ScenarioSet::new(graph.clone());
    for tokens in [2u64, 4, 8, 16] {
        scenarios.add(format!("ctrl={tokens}"), vec![(ctrl, tokens)]);
    }
    let sequential = scenarios.run(&ExploreOptions::default()).expect("run");
    let parallel = scenarios
        .run(&ExploreOptions {
            workers: 2,
            ..ExploreOptions::default()
        })
        .expect("parallel run");
    assert_eq!(sequential, parallel);
    for (outcome, tokens) in sequential.iter().zip([2u64, 4, 8, 16]) {
        let mut cold = graph.clone();
        cold.set_initial_tokens(ctrl, tokens).expect("marking");
        assert_eq!(
            outcome.result,
            optimal_throughput(&cold).expect("cold"),
            "scenario {tokens}"
        );
    }
    // More control tokens can only help.
    for pair in sequential.windows(2) {
        assert!(pair[1].result.throughput >= pair[0].result.throughput);
    }
}
