//! Property-based tests over randomly generated CSDF graphs.

use proptest::prelude::*;

use kiter::analysis::{
    duplicate_phases, evaluate_k_periodic, transformed_repetition_vector, EvaluationOutcome,
    EventGraph, EventGraphLimits,
};
use kiter::generators::{random_graph, RandomGraphConfig};
use kiter::ratio::{
    maximum_cycle_mean, maximum_cycle_ratio, maximum_cycle_ratio_with, CycleRatioOutcome,
    RatioGraph, Solver, SolverChoice,
};
use kiter::{
    optimal_throughput, symbolic_execution_throughput, AnalysisOptions, Budget, EventGraphArena,
    KPeriodicSchedule, PeriodicityVector, Rational, TaskId, Throughput,
};

/// Deterministic random bi-valued graph. `unit_times` restricts arc times to
/// one (the cycle-mean special case); otherwise times range over small
/// rationals *including zero and negative values*, which exercises the
/// `Infinite` / `NonPositive` outcome classification of the solvers.
fn random_ratio_graph(seed: u64, nodes: usize, arcs: usize, unit_times: bool) -> RatioGraph {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut graph = RatioGraph::new(nodes);
    for _ in 0..arcs {
        let from = (next() % nodes as u64) as usize;
        let to = (next() % nodes as u64) as usize;
        // Small integers keep every walk weight far away from i128 overflow.
        let cost = Rational::from_integer(-3 + (next() % 14) as i128);
        let time = if unit_times {
            Rational::ONE
        } else {
            Rational::new(-2 + (next() % 8) as i128, 1 + (next() % 3) as i128).unwrap()
        };
        graph.add_arc(graph.node(from), graph.node(to), cost, time);
    }
    graph
}

/// The outcome parts that must be identical across solvers (the critical
/// circuit itself may legitimately differ when several attain the maximum).
fn outcome_signature(outcome: &CycleRatioOutcome) -> (u8, Option<Rational>) {
    match outcome {
        CycleRatioOutcome::Acyclic => (0, None),
        CycleRatioOutcome::NonPositive => (1, None),
        CycleRatioOutcome::Finite { ratio, .. } => (2, Some(*ratio)),
        CycleRatioOutcome::Infinite { .. } => (3, None),
    }
}

fn small_config(max_phases: usize, tasks: usize) -> RandomGraphConfig {
    RandomGraphConfig {
        tasks,
        extra_edges: 1,
        feedback_edges: 1,
        repetition_choices: vec![1, 2, 3],
        max_phases,
        duration_range: (1, 4),
        marking_factor: 2,
        serialize: true,
        locality: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The headline claim of the paper: K-Iter computes the *exact* maximum
    /// throughput, i.e. the value found by self-timed state-space exploration.
    #[test]
    fn kiter_equals_symbolic_execution(seed in 0u64..5_000, tasks in 3usize..6, phases in 1usize..4) {
        let graph = random_graph(&small_config(phases, tasks), seed).expect("generator");
        let kiter = optimal_throughput(&graph).expect("kiter");
        let symbolic = symbolic_execution_throughput(&graph, &Budget::default()).expect("sim");
        if let Some(reference) = symbolic.throughput() {
            prop_assert_eq!(kiter.throughput, reference);
        }
    }

    /// Growing the periodicity vector can only improve (or keep) the
    /// K-periodic throughput bound.
    #[test]
    fn kperiodic_bound_is_monotone_in_k(seed in 0u64..5_000, tasks in 3usize..6) {
        let graph = random_graph(&small_config(2, tasks), seed).expect("generator");
        let q = graph.repetition_vector().expect("consistent");
        let options = AnalysisOptions::default();
        let unitary = evaluate_k_periodic(&graph, &PeriodicityVector::unitary(&graph), &options)
            .expect("unitary evaluation");
        let full = evaluate_k_periodic(&graph, &PeriodicityVector::full(&q), &options)
            .expect("full evaluation");
        prop_assert!(full.throughput() >= unitary.throughput());
    }

    /// Theorem 3: the transformed graph G̃ is consistent and the paper's q̃
    /// satisfies its balance equations.
    #[test]
    fn duplication_preserves_consistency(seed in 0u64..5_000, tasks in 3usize..6, k_seed in 0u64..1_000) {
        let graph = random_graph(&small_config(3, tasks), seed).expect("generator");
        let q = graph.repetition_vector().expect("consistent");
        // Derive a pseudo-random periodicity vector from k_seed.
        let entries: Vec<u64> = (0..graph.task_count())
            .map(|index| 1 + ((k_seed >> (index % 8)) & 0x3))
            .collect();
        let k = PeriodicityVector::from_entries(&graph, entries).expect("valid K");
        let transformed = duplicate_phases(&graph, &k).expect("duplication");
        prop_assert!(transformed.is_consistent());
        let q_tilde = transformed_repetition_vector(&q, &k).expect("q tilde");
        prop_assert!(q_tilde.validates(&transformed));
    }

    /// Any feasible K-periodic evaluation yields an explicit schedule that
    /// keeps every buffer non-negative when replayed.
    #[test]
    fn schedules_replay_without_negative_buffers(seed in 0u64..5_000, tasks in 3usize..5) {
        let graph = random_graph(&small_config(2, tasks), seed).expect("generator");
        let options = AnalysisOptions::default();
        let k = PeriodicityVector::unitary(&graph);
        if let Some(schedule) = KPeriodicSchedule::compute(&graph, &k, &options).expect("compute") {
            prop_assert!(schedule.validate(&graph, 4), "schedule violates a buffer:\n{}", graph);
        }
    }

    /// Every MCR solver choice returns the same outcome and exact ratio on
    /// arbitrary bi-valued graphs, including arcs with zero and negative
    /// times (Howard's certificate either applies or it defers to the
    /// parametric certifier, so agreement must be bit-exact).
    #[test]
    fn mcr_solvers_agree_on_random_ratio_graphs(base_seed in 0u64..50_000, nodes in 1usize..10, arcs in 1usize..28) {
        for sub in 0..24u64 {
        let seed = base_seed.wrapping_mul(131).wrapping_add(sub);
        let graph = random_ratio_graph(seed, nodes, arcs, false);
        let reference = maximum_cycle_ratio(&graph).expect("parametric");
        for choice in [SolverChoice::Howard, SolverChoice::Auto, SolverChoice::Karp] {
            let outcome = maximum_cycle_ratio_with(&graph, choice).expect("alternative solver");
            prop_assert!(
                outcome_signature(&reference) == outcome_signature(&outcome),
                "solver {:?} disagrees on seed {} ({} nodes, {} arcs): {:?} vs {:?}",
                choice, seed, nodes, arcs, reference, outcome
            );
            // Whatever circuit is reported must be internally consistent.
            if let Some(cycle) = outcome.cycle() {
                let (cost, time) = (cycle.cost, cycle.time);
                match outcome {
                    CycleRatioOutcome::Finite { ratio, .. } => {
                        prop_assert!(time.is_positive());
                        prop_assert_eq!(cost.checked_div(&time).expect("positive time"), ratio);
                    }
                    CycleRatioOutcome::Infinite { .. } => {
                        prop_assert!(!time.is_positive());
                    }
                    _ => unreachable!("cycle() is Some only for Finite/Infinite"),
                }
            }
        }
        }
    }

    /// The integer-numerator Howard kernel and the parallel per-SCC solver
    /// are *bit-identical* — not just same-ratio — to the scalar sequential
    /// `Rational` path: same `CycleRatioOutcome` variant, same λ, same
    /// critical circuit (arcs, nodes, cost, time), for every solver choice,
    /// at 1/2/4 worker threads, on random graphs with negative and zero arc
    /// times. (The parallel merge replays outcomes in component order and
    /// the integer kernel mirrors every scalar tie-break, so full structural
    /// equality must hold.)
    #[test]
    fn integer_kernel_and_parallel_solvers_are_bit_identical(base_seed in 0u64..50_000, nodes in 1usize..11, arcs in 1usize..30) {
        for sub in 0..12u64 {
            let seed = base_seed.wrapping_mul(193).wrapping_add(sub);
            let graph = random_ratio_graph(seed, nodes, arcs, false);
            for choice in [
                SolverChoice::Auto,
                SolverChoice::Parametric,
                SolverChoice::Howard,
                SolverChoice::Karp,
            ] {
                let scalar = Solver::new(choice)
                    .with_integer_kernel(false)
                    .solve(&graph)
                    .expect("scalar sequential solve");
                let integer = Solver::new(choice).solve(&graph).expect("integer solve");
                prop_assert!(
                    scalar == integer,
                    "integer kernel diverges for {:?} on seed {}: {:?} vs {:?}",
                    choice, seed, scalar, integer
                );
                for threads in [2usize, 4, 8] {
                    let parallel = Solver::new(choice)
                        .with_threads(threads)
                        .solve(&graph)
                        .expect("parallel solve");
                    prop_assert!(
                        scalar == parallel,
                        "parallel x{} diverges for {:?} on seed {}: {:?} vs {:?}",
                        threads, choice, seed, scalar, parallel
                    );
                }
            }
        }
    }

    /// On unit-time graphs the maximum cycle ratio degenerates to Karp's
    /// maximum cycle mean: `Finite(r)` iff the mean is `r > 0`, `NonPositive`
    /// iff the mean exists but is not positive, `Acyclic` iff there is none.
    #[test]
    fn mcr_solvers_match_cycle_mean_on_unit_time_graphs(base_seed in 0u64..50_000, nodes in 1usize..9, arcs in 1usize..24) {
        for sub in 0..24u64 {
        let seed = base_seed.wrapping_mul(137).wrapping_add(sub);
        let graph = random_ratio_graph(seed, nodes, arcs, true);
        let mean = maximum_cycle_mean(&graph).expect("karp");
        for choice in [
            SolverChoice::Parametric,
            SolverChoice::Howard,
            SolverChoice::Auto,
            SolverChoice::Karp,
        ] {
            let outcome = maximum_cycle_ratio_with(&graph, choice).expect("solver");
            match mean {
                None => prop_assert_eq!(&outcome, &CycleRatioOutcome::Acyclic),
                Some(value) if value.is_positive() => {
                    prop_assert!(
                        outcome.ratio() == Some(value),
                        "solver {:?} on seed {}: {:?} vs mean {:?}",
                        choice, seed, outcome, value
                    );
                }
                Some(_) => {
                    prop_assert!(
                        outcome == CycleRatioOutcome::NonPositive,
                        "solver {:?} on seed {}: {:?}",
                        choice, seed, outcome
                    );
                }
            }
        }
        }
    }

    /// Tentpole invariant of the incremental event-graph pipeline: patching
    /// one arena through a random sequence of K-updates yields a
    /// [`RatioGraph`](kiter::ratio::RatioGraph) *bit-identical* (node count,
    /// arc order, exact `L`/`H` values) to a from-scratch
    /// [`EventGraph::build`] at every intermediate vector — including on CSDF
    /// graphs with zero-duration phases, and both with and without the dirty
    /// hint the K-Iter update rule provides.
    #[test]
    fn incremental_arena_matches_from_scratch(seed in 0u64..50_000, tasks in 3usize..7, phases in 1usize..4) {
        let config = RandomGraphConfig {
            // Zero durations exercise zero-cost arcs.
            duration_range: (0, 4),
            ..small_config(phases, tasks)
        };
        let graph = random_graph(&config, seed).expect("generator");
        let q = graph.repetition_vector().expect("consistent");
        let limits = EventGraphLimits::default();
        let mut k = PeriodicityVector::unitary(&graph);
        let mut arena = EventGraphArena::build(&graph, &q, &k, &limits).expect("base build");

        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..5u64 {
            let mut raised = Vec::new();
            for _ in 0..1 + next() % 2 {
                let task = TaskId::new((next() % tasks as u64) as usize);
                let value = k.get(task) * (1 + next() % 3);
                if k.raise(task, value).expect("valid periodicity") {
                    raised.push(task);
                }
            }
            // Alternate between the hinted dirty set and full detection.
            let hint = (step % 2 == 0).then_some(raised.as_slice());
            arena.apply_update(&graph, &k, hint).expect("patch");

            let fresh = EventGraph::build(&graph, &q, &k, &limits).expect("scratch build");
            prop_assert_eq!(arena.ratio_graph(), fresh.ratio_graph());
            prop_assert_eq!(arena.node_count(), fresh.node_count());
            prop_assert_eq!(arena.arc_count(), fresh.arc_count());
            prop_assert_eq!(arena.lcm_k(), fresh.lcm_k());
            for task in graph.task_ids() {
                prop_assert_eq!(arena.phase_count_of(task), fresh.phase_count_of(task));
                for phase in 0..arena.phase_count_of(task) {
                    prop_assert_eq!(arena.duration_of(task, phase), fresh.duration_of(task, phase));
                    prop_assert_eq!(arena.node_of(task, phase), fresh.node_of(task, phase));
                }
            }
        }
    }

    /// Single-node self-loop components — the smallest cyclic SCCs — stay
    /// bit-identical across kernels and thread counts too, including loops
    /// with zero and negative times (the `Infinite` classification) and a
    /// multi-component mix where the merge order matters.
    #[test]
    fn self_loop_components_are_bit_identical(seed in 0u64..20_000, loops in 1usize..7) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // `loops` isolated self-loops plus an acyclic chain threading them.
        let mut graph = RatioGraph::new(loops + 1);
        for node in 0..loops {
            let cost = Rational::from_integer(-2 + (next() % 9) as i128);
            let time = Rational::new(-1 + (next() % 5) as i128, 1 + (next() % 3) as i128).unwrap();
            graph.add_arc(graph.node(node), graph.node(node), cost, time);
            graph.add_arc(graph.node(node), graph.node(loops), Rational::ONE, Rational::ONE);
        }
        for choice in [
            SolverChoice::Auto,
            SolverChoice::Parametric,
            SolverChoice::Howard,
            SolverChoice::Karp,
        ] {
            let scalar = Solver::new(choice)
                .with_integer_kernel(false)
                .solve(&graph)
                .expect("scalar solve");
            for threads in [1usize, 2, 4, 8] {
                let solved = Solver::new(choice)
                    .with_threads(threads)
                    .solve(&graph)
                    .expect("solve");
                prop_assert!(
                    scalar == solved,
                    "{:?} x{} seed {}: {:?} vs {:?}",
                    choice, threads, seed, scalar, solved
                );
            }
        }
    }

    /// The 1-periodic throughput never exceeds the optimum, and the optimum's
    /// period equals the inverse of its throughput.
    #[test]
    fn periodic_bound_and_period_inversion(seed in 0u64..5_000, tasks in 3usize..6) {
        let graph = random_graph(&small_config(2, tasks), seed).expect("generator");
        let options = AnalysisOptions::default();
        let periodic = evaluate_k_periodic(&graph, &PeriodicityVector::unitary(&graph), &options)
            .expect("periodic");
        let optimal = optimal_throughput(&graph).expect("kiter");
        if let EvaluationOutcome::Feasible { throughput, .. } = periodic.outcome {
            prop_assert!(throughput <= optimal.throughput);
        }
        if let Throughput::Finite(value) = optimal.throughput {
            let period = optimal.period().expect("finite throughput has a period");
            prop_assert_eq!(
                period.checked_mul(&value).expect("no overflow"),
                Rational::ONE
            );
        }
    }

    /// SDF3 XML export/import is the identity on random CSDF graphs — same
    /// ids, names, rates, durations and markings — including `bufferSize`
    /// capacity annotations, so the XML can serve as a lossless wire format.
    #[test]
    fn sdf3_xml_round_trips_random_graphs(seed in 0u64..5_000, tasks in 3usize..7, phases in 1usize..4) {
        let graph = random_graph(&small_config(phases, tasks), seed).expect("generator");
        let round_trip = kiter::model::text::parse_sdf3_xml(
            &kiter::model::text::write_sdf3_xml(&graph),
        ).expect("exported XML re-imports");
        prop_assert_eq!(&round_trip, &graph);

        // Annotate every non-self-loop buffer with a pseudo-random capacity.
        let capacities: Vec<(kiter::BufferId, u64)> = graph
            .buffers()
            .filter(|(_, buffer)| !buffer.is_self_loop())
            .map(|(id, _)| (id, 1 + (seed ^ id.index() as u64) % 16))
            .collect();
        let xml = kiter::model::text::write_sdf3_xml_with_capacities(&graph, &capacities);
        let import = kiter::model::text::parse_sdf3_xml_import(&xml).expect("re-imports");
        prop_assert_eq!(&import.graph, &graph);
        prop_assert_eq!(&import.buffer_capacities, &capacities);
    }
}
