//! Property-based tests over randomly generated CSDF graphs.

use proptest::prelude::*;

use kiter::analysis::{
    duplicate_phases, evaluate_k_periodic, transformed_repetition_vector, EvaluationOutcome,
};
use kiter::generators::{random_graph, RandomGraphConfig};
use kiter::{
    optimal_throughput, symbolic_execution_throughput, AnalysisOptions, Budget, KPeriodicSchedule,
    PeriodicityVector, Rational, Throughput,
};

fn small_config(max_phases: usize, tasks: usize) -> RandomGraphConfig {
    RandomGraphConfig {
        tasks,
        extra_edges: 1,
        feedback_edges: 1,
        repetition_choices: vec![1, 2, 3],
        max_phases,
        duration_range: (1, 4),
        marking_factor: 2,
        serialize: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The headline claim of the paper: K-Iter computes the *exact* maximum
    /// throughput, i.e. the value found by self-timed state-space exploration.
    #[test]
    fn kiter_equals_symbolic_execution(seed in 0u64..5_000, tasks in 3usize..6, phases in 1usize..4) {
        let graph = random_graph(&small_config(phases, tasks), seed).expect("generator");
        let kiter = optimal_throughput(&graph).expect("kiter");
        let symbolic = symbolic_execution_throughput(&graph, &Budget::default()).expect("sim");
        if let Some(reference) = symbolic.throughput() {
            prop_assert_eq!(kiter.throughput, reference);
        }
    }

    /// Growing the periodicity vector can only improve (or keep) the
    /// K-periodic throughput bound.
    #[test]
    fn kperiodic_bound_is_monotone_in_k(seed in 0u64..5_000, tasks in 3usize..6) {
        let graph = random_graph(&small_config(2, tasks), seed).expect("generator");
        let q = graph.repetition_vector().expect("consistent");
        let options = AnalysisOptions::default();
        let unitary = evaluate_k_periodic(&graph, &PeriodicityVector::unitary(&graph), &options)
            .expect("unitary evaluation");
        let full = evaluate_k_periodic(&graph, &PeriodicityVector::full(&q), &options)
            .expect("full evaluation");
        prop_assert!(full.throughput() >= unitary.throughput());
    }

    /// Theorem 3: the transformed graph G̃ is consistent and the paper's q̃
    /// satisfies its balance equations.
    #[test]
    fn duplication_preserves_consistency(seed in 0u64..5_000, tasks in 3usize..6, k_seed in 0u64..1_000) {
        let graph = random_graph(&small_config(3, tasks), seed).expect("generator");
        let q = graph.repetition_vector().expect("consistent");
        // Derive a pseudo-random periodicity vector from k_seed.
        let entries: Vec<u64> = (0..graph.task_count())
            .map(|index| 1 + ((k_seed >> (index % 8)) & 0x3))
            .collect();
        let k = PeriodicityVector::from_entries(&graph, entries).expect("valid K");
        let transformed = duplicate_phases(&graph, &k).expect("duplication");
        prop_assert!(transformed.is_consistent());
        let q_tilde = transformed_repetition_vector(&q, &k).expect("q tilde");
        prop_assert!(q_tilde.validates(&transformed));
    }

    /// Any feasible K-periodic evaluation yields an explicit schedule that
    /// keeps every buffer non-negative when replayed.
    #[test]
    fn schedules_replay_without_negative_buffers(seed in 0u64..5_000, tasks in 3usize..5) {
        let graph = random_graph(&small_config(2, tasks), seed).expect("generator");
        let options = AnalysisOptions::default();
        let k = PeriodicityVector::unitary(&graph);
        if let Some(schedule) = KPeriodicSchedule::compute(&graph, &k, &options).expect("compute") {
            prop_assert!(schedule.validate(&graph, 4), "schedule violates a buffer:\n{}", graph);
        }
    }

    /// The 1-periodic throughput never exceeds the optimum, and the optimum's
    /// period equals the inverse of its throughput.
    #[test]
    fn periodic_bound_and_period_inversion(seed in 0u64..5_000, tasks in 3usize..6) {
        let graph = random_graph(&small_config(2, tasks), seed).expect("generator");
        let options = AnalysisOptions::default();
        let periodic = evaluate_k_periodic(&graph, &PeriodicityVector::unitary(&graph), &options)
            .expect("periodic");
        let optimal = optimal_throughput(&graph).expect("kiter");
        if let EvaluationOutcome::Feasible { throughput, .. } = periodic.outcome {
            prop_assert!(throughput <= optimal.throughput);
        }
        if let Throughput::Finite(value) = optimal.throughput {
            let period = optimal.period().expect("finite throughput has a period");
            prop_assert_eq!(
                period.checked_mul(&value).expect("no overflow"),
                Rational::ONE
            );
        }
    }
}
