//! Quickstart: build a small CSDF graph and evaluate its throughput with
//! every method in the workspace.
//!
//! Run with `cargo run --example quickstart`.

use kiter::{
    expansion_throughput, optimal_throughput, periodic_throughput, symbolic_execution_throughput,
    Budget, CsdfGraphBuilder, KPeriodicSchedule,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-stage multirate pipeline: a sensor produces bursts of samples,
    // a filter decimates them, a sink consumes the result. A feedback buffer
    // models the bounded capacity between sink and sensor.
    let mut builder = CsdfGraphBuilder::named("quickstart");
    let sensor = builder.add_task("sensor", vec![1, 1, 2]);
    let filter = builder.add_sdf_task("filter", 3);
    let sink = builder.add_sdf_task("sink", 1);
    builder.add_buffer(sensor, filter, vec![2, 2, 4], vec![4], 0);
    builder.add_sdf_buffer(filter, sink, 2, 1, 0);
    builder.add_buffer(sink, sensor, vec![1], vec![1, 1, 2], 16);
    builder.add_serializing_self_loop(sensor);
    builder.add_serializing_self_loop(filter);
    builder.add_serializing_self_loop(sink);
    let graph = builder.build()?;

    println!("{graph}");
    let q = graph.repetition_vector()?;
    println!("repetition vector: {:?} (Σq = {})\n", q.as_slice(), q.sum());

    // The paper's contribution: K-Iter gives the exact maximum throughput.
    let optimal = optimal_throughput(&graph)?;
    println!(
        "K-Iter:             Th* = {}  (period {:?}, K = {}, {} iterations)",
        optimal.throughput,
        optimal.period().map(|p| p.to_string()),
        optimal.periodicity,
        optimal.iterations
    );

    // The approximate 1-periodic baseline.
    let periodic = periodic_throughput(&graph)?;
    println!(
        "1-periodic [4]:     Th  = {}",
        periodic
            .throughput()
            .map_or_else(|| "no solution".to_string(), |t| t.to_string())
    );

    // The exact baselines.
    let symbolic = symbolic_execution_throughput(&graph, &Budget::default())?;
    println!(
        "symbolic exec [16]: Th* = {}",
        symbolic
            .throughput()
            .map_or_else(|| "budget exhausted".to_string(), |t| t.to_string())
    );
    let expansion = expansion_throughput(&graph, &Budget::default());
    match expansion {
        Ok(result) => println!(
            "expansion [6]:      Th* = {}",
            result
                .throughput()
                .map_or_else(|| "budget exhausted".to_string(), |t| t.to_string())
        ),
        Err(err) => println!("expansion [6]:      not applicable ({err})"),
    }

    // Extract and print the optimal K-periodic schedule.
    if let Some(schedule) =
        KPeriodicSchedule::compute(&graph, &optimal.periodicity, &Default::default())?
    {
        println!("\nK-periodic schedule (one line per task, one column per time unit):");
        println!("{}", schedule.ascii_gantt(&graph, 60));
        assert!(schedule.validate(&graph, 4));
    }
    Ok(())
}
