//! Walk through the running example of the paper (Figures 2–5).
//!
//! The example rebuilds the reconstructed Figure-2 graph, prints its
//! repetition vector, evaluates the 1-periodic bound (the situation of
//! Figure 5), runs K-Iter iteration by iteration (Algorithm 1) and finally
//! prints an ASCII Gantt chart of the optimal K-periodic schedule (the
//! situation of Figure 4) next to the as-soon-as-possible reference
//! (Figure 3, obtained by symbolic execution).
//!
//! Run with `cargo run --example paper_walkthrough`.

use kiter::analysis::{EventGraph, EventGraphLimits};
use kiter::{
    evaluate_periodic, kiter_with_options, paper_example, symbolic_execution_throughput,
    AnalysisOptions, Budget, KIterOptions, KPeriodicSchedule,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (graph, tasks) = paper_example();
    println!("=== Figure 2 (reconstructed): {graph}");
    let q = graph.repetition_vector()?;
    println!(
        "repetition vector q = {:?}  (paper: [6, 12, 6, 1])\n",
        q.as_slice()
    );

    // Figure 5: the bi-valued event graph for K = [1,1,1,1].
    let unitary = kiter::PeriodicityVector::unitary(&graph);
    let event_graph = EventGraph::build(&graph, &q, &unitary, &EventGraphLimits::default())?;
    println!(
        "=== Figure 5: event graph for K = [1,1,1,1]: {} nodes, {} arcs",
        event_graph.node_count(),
        event_graph.arc_count()
    );
    let periodic = evaluate_periodic(&graph, &AnalysisOptions::default())?;
    match &periodic.outcome {
        kiter::analysis::EvaluationOutcome::Feasible {
            period,
            critical_tasks,
            ..
        } => {
            println!(
                "1-periodic minimum period Ω = {period}, critical tasks: {:?}\n",
                critical_tasks
                    .iter()
                    .map(|&t| graph.task(t).name())
                    .collect::<Vec<_>>()
            );
        }
        other => println!("1-periodic evaluation: {other:?}\n"),
    }

    // Algorithm 1, iteration by iteration.
    println!("=== K-Iter (Algorithm 1)");
    let options = KIterOptions {
        record_history: true,
        ..KIterOptions::default()
    };
    let result = kiter_with_options(&graph, &options)?;
    for (index, step) in result.history.iter().enumerate() {
        println!(
            "  iteration {}: K = {}, event graph {}x{}, period = {}, critical = {:?}, optimal = {}",
            index + 1,
            step.periodicity,
            step.event_graph_size.0,
            step.event_graph_size.1,
            step.period
                .map_or_else(|| "infeasible".to_string(), |p| p.to_string()),
            step.critical_tasks
                .iter()
                .map(|&t| graph.task(t).name())
                .collect::<Vec<_>>(),
            step.optimal
        );
    }
    println!(
        "  => maximum throughput Th* = {} (period {:?}) after {} iterations\n",
        result.throughput,
        result.period().map(|p| p.to_string()),
        result.iterations
    );

    // Figure 3: the ASAP reference computed by symbolic execution.
    let asap = symbolic_execution_throughput(&graph, &Budget::benchmark())?;
    println!(
        "=== Figure 3 reference: ASAP (symbolic execution) throughput = {}",
        asap.throughput()
            .map_or_else(|| "budget exhausted".to_string(), |t| t.to_string())
    );

    // Figure 4: the optimal K-periodic schedule.
    if let Some(schedule) =
        KPeriodicSchedule::compute(&graph, &result.periodicity, &AnalysisOptions::default())?
    {
        println!(
            "\n=== Figure 4: K-periodic schedule with K = {} (µ_A = {}, Ω = {})",
            schedule.periodicity(),
            schedule.task_period(tasks.a),
            schedule.period()
        );
        println!("{}", schedule.ascii_gantt(&graph, 80));
        assert!(schedule.validate(&graph, 3));
    }
    Ok(())
}
