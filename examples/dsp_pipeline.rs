//! Evaluate the five "`ActualDSP`" applications with the three exact methods.
//!
//! This reproduces, on a small scale, the comparison of the paper's Table 1:
//! K-Iter against HSDF expansion and symbolic execution on real DSP graph
//! shapes.
//!
//! Run with `cargo run --example dsp_pipeline --release`.

use std::time::Instant;

use kiter::generators::dsp::actual_dsp_suite;
use kiter::{expansion_throughput, optimal_throughput, symbolic_execution_throughput, Budget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::default();
    println!(
        "{:<14} {:>6} {:>8} {:>10} | {:>12} {:>12} {:>12}",
        "graph", "tasks", "buffers", "sum(q)", "kiter", "expansion", "symbolic"
    );
    for graph in actual_dsp_suite()? {
        let q = graph.repetition_vector()?;

        let start = Instant::now();
        let kiter = optimal_throughput(&graph)?;
        let kiter_time = start.elapsed();

        let expansion = expansion_throughput(&graph, &budget)?;
        let symbolic = symbolic_execution_throughput(&graph, &budget)?;

        // All exact methods must agree whenever they finish.
        if let (Some(a), Some(b)) = (expansion.throughput(), symbolic.throughput()) {
            assert_eq!(
                a,
                kiter.throughput,
                "expansion disagrees on {}",
                graph.name()
            );
            assert_eq!(
                b,
                kiter.throughput,
                "symbolic disagrees on {}",
                graph.name()
            );
        }

        println!(
            "{:<14} {:>6} {:>8} {:>10} | {:>12} {:>12} {:>12}",
            graph.name(),
            graph.task_count(),
            graph.buffer_count(),
            q.sum(),
            format!("{:?}", kiter_time),
            format!("{:?}", expansion.wall_time),
            format!("{:?}", symbolic.wall_time),
        );
        println!("{:<40}   Th* = {}", "", kiter.throughput);
    }
    Ok(())
}
