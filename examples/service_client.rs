//! A round trip through the analysis daemon over its Unix socket.
//!
//! Starts the daemon in-process on a temporary socket (exactly what
//! `csdf_service --socket PATH` runs), connects as a client, and drives an
//! `evaluate` and a `sweep` request for the paper's running example —
//! shipping the graph over the wire as SDF3 XML, the format `sdf3-kiter`
//! tooling exchanges.
//!
//! Run with `cargo run --example service_client`.

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    use kiter::service::{Daemon, Json, ServiceConfig};

    let (graph, _) = kiter::paper_example();
    let xml = kiter::model::text::write_sdf3_xml(&graph);
    let spec = Json::Object(vec![
        ("format".to_string(), Json::Str("sdf3".to_string())),
        ("source".to_string(), Json::Str(xml)),
    ]);

    let daemon = Daemon::new(ServiceConfig::default());
    let path = std::env::temp_dir().join(format!("kiter-service-{}.sock", std::process::id()));
    let socket = path.clone();
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        // One connection, then the daemon returns and the scope joins.
        let server = scope.spawn(|| daemon.serve_unix(&socket, Some(1)));

        let stream = loop {
            match UnixStream::connect(&path) {
                Ok(stream) => break stream,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut send = |request: String| -> Result<Json, Box<dyn std::error::Error>> {
            writeln!(&stream, "{request}")?;
            let mut line = String::new();
            reader.read_line(&mut line)?;
            Ok(Json::parse(line.trim_end()).map_err(std::io::Error::other)?)
        };

        let evaluated = send(format!(r#"{{"id":1,"type":"evaluate","graph":{spec}}}"#))?;
        println!(
            "evaluate: throughput {} after {} K-Iter iterations",
            evaluated
                .get("throughput")
                .and_then(Json::as_str)
                .unwrap_or("?"),
            evaluated
                .get("iterations")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        );

        let swept = send(format!(
            r#"{{"id":2,"type":"sweep","graph":{spec},"slacks":[1,2,4,8]}}"#
        ))?;
        for point in swept.get("points").and_then(Json::as_array).unwrap_or(&[]) {
            println!(
                "sweep: slack {} -> storage {}, throughput {}",
                point.get("slack").and_then(Json::as_u64).unwrap_or(0),
                point
                    .get("total_storage")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                point
                    .get("throughput")
                    .and_then(Json::as_str)
                    .unwrap_or("?"),
            );
        }
        println!(
            "pareto frontier (slacks): {}",
            swept
                .get("frontier")
                .and_then(Json::as_array)
                .map(|labels| Json::Array(labels.to_vec()).to_string())
                .unwrap_or_default()
        );

        drop(stream);
        drop(reader);
        server.join().expect("server thread")?;
        Ok(())
    })?;
    let _ = std::fs::remove_file(&path);

    let stats = daemon.pool_stats();
    println!(
        "daemon served {} checkouts ({} warm)",
        stats.checkouts, stats.warm
    );
    Ok(())
}

#[cfg(not(unix))]
fn main() {
    eprintln!("the service socket example needs a Unix platform");
}
