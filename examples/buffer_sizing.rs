//! Throughput under buffer-size constraints (the bottom half of Table 2).
//!
//! Buffer capacities are modelled as reverse buffers; the example sweeps the
//! capacity slack of a DSP pipeline and shows the throughput/storage
//! trade-off, evaluated exactly with K-Iter and compared with the 1-periodic
//! approximation.
//!
//! Run with `cargo run --example buffer_sizing --release`.

use kiter::generators::{buffer_sized, dsp};
use kiter::{optimal_throughput, periodic_throughput, Throughput};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = dsp::modem()?;
    println!(
        "application: {} ({} tasks, {} buffers)",
        graph.name(),
        graph.task_count(),
        graph.buffer_count()
    );

    let unbounded = optimal_throughput(&graph)?;
    println!(
        "unbounded buffers: Th* = {} (K = {})\n",
        unbounded.throughput, unbounded.periodicity
    );

    println!(
        "{:>6} | {:>14} | {:>14} | {:>10}",
        "slack", "K-Iter Th*", "periodic Th", "optimality"
    );
    println!("{:->6}-+-{:->14}-+-{:->14}-+-{:->10}", "", "", "", "");
    for slack in [1u64, 2, 3, 4, 8] {
        let bounded = buffer_sized(&graph, slack)?;
        let optimal = optimal_throughput(&bounded)?;
        let periodic = periodic_throughput(&bounded)?;
        let optimality = match (periodic.throughput(), optimal.throughput) {
            (Some(Throughput::Finite(bound)), Throughput::Finite(exact)) => {
                format!(
                    "{:.1}%",
                    100.0 * bound.to_f64() / exact.to_f64().max(f64::MIN_POSITIVE)
                )
            }
            (None, _) => "N/S".to_string(),
            _ => "-".to_string(),
        };
        println!(
            "{:>6} | {:>14} | {:>14} | {:>10}",
            slack,
            optimal.throughput.to_string(),
            periodic
                .throughput()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "N/S".to_string()),
            optimality
        );
    }
    println!("\nA slack of k bounds every buffer to k·(i_b + o_b) tokens.");
    Ok(())
}
