//! Throughput under buffer-size constraints (the bottom half of Table 2),
//! driven as a design-space exploration.
//!
//! Buffer capacities are modelled as reverse buffers; this example sweeps
//! the capacity slack of a DSP pipeline through `explore::ParetoSweep` —
//! every point re-sizes the same `AnalysisSession` graph in place instead of
//! rebuilding anything — prints the throughput/storage trade-off with its
//! Pareto frontier, and then asks `min_storage_for_throughput` for the
//! cheapest design that still reaches the unbounded optimum.
//!
//! Run with `cargo run --example buffer_sizing --release`.

use kiter::explore::{min_storage_for_throughput, ExploreOptions, ParetoSweep};
use kiter::generators::dsp;
use kiter::optimal_throughput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = dsp::sample_rate_converter()?;
    println!(
        "application: {} ({} tasks, {} buffers)",
        graph.name(),
        graph.task_count(),
        graph.buffer_count()
    );

    let unbounded = optimal_throughput(&graph)?;
    println!(
        "unbounded buffers: Th* = {} (K = {})\n",
        unbounded.throughput, unbounded.periodicity
    );

    let slacks = [1u64, 2, 3, 4, 8];
    let sweep = ParetoSweep::uniform_slack(&graph, &slacks)?;
    let options = ExploreOptions::default();
    let outcome = sweep.run(&options)?;
    let frontier: Vec<u64> = outcome
        .pareto_frontier()
        .iter()
        .map(|point| point.label)
        .collect();

    println!(
        "{:>6} | {:>9} | {:>14} | {:>10} | {:>8}",
        "slack", "storage", "K-Iter Th*", "iterations", "frontier"
    );
    println!(
        "{:->6}-+-{:->9}-+-{:->14}-+-{:->10}-+-{:->8}",
        "", "", "", "", ""
    );
    for point in &outcome.points {
        println!(
            "{:>6} | {:>9} | {:>14} | {:>10} | {:>8}",
            point.label,
            point.total_storage,
            point.throughput().to_string(),
            point.result.iterations,
            if frontier.contains(&point.label) {
                "*"
            } else {
                ""
            }
        );
    }

    let stats = outcome.stats;
    println!(
        "\nsweep work: {} evaluations, {} arena build(s) + {} in-place patches, \
         construction {:.2} ms / solve {:.2} ms",
        stats.evaluations,
        stats.full_builds,
        stats.patched,
        stats.total_construction_time().as_secs_f64() * 1e3,
        stats.total_solve_time().as_secs_f64() * 1e3,
    );

    if let Some(minimal) = min_storage_for_throughput(&graph, unbounded.throughput, 64, &options)? {
        println!(
            "cheapest design at the unbounded optimum: slack {} ({} tokens of storage, \
             found in {} probes)",
            minimal.slack, minimal.total_storage, minimal.evaluations
        );
    }
    println!("\nA slack of k bounds every buffer to k·(i_b + o_b) tokens.");
    Ok(())
}
