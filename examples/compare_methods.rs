//! Cross-validate every throughput evaluation method on random graphs.
//!
//! Generates a batch of random consistent CSDF graphs and checks that K-Iter,
//! symbolic execution and (on SDF graphs) the expansion method agree exactly,
//! while the 1-periodic approximation never exceeds the optimum. Prints a
//! summary of how often the periodic bound is strict — the effect that
//! motivates the paper.
//!
//! Run with `cargo run --example compare_methods --release [count]`.

use kiter::generators::{random_graph, RandomGraphConfig};
use kiter::{
    optimal_throughput, periodic_throughput, symbolic_execution_throughput, Budget, Throughput,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|value| value.parse().ok())
        .unwrap_or(30);
    let config = RandomGraphConfig::small_csdf();
    let budget = Budget::default();

    let mut agreements = 0u64;
    let mut timeouts = 0u64;
    let mut strict_periodic_gap = 0u64;
    let mut deadlocks = 0u64;

    for seed in 0..count {
        let graph = random_graph(&config, seed)?;
        let kiter = optimal_throughput(&graph)?;
        let symbolic = symbolic_execution_throughput(&graph, &budget)?;
        let periodic = periodic_throughput(&graph)?;

        match symbolic.throughput() {
            Some(reference) => {
                assert_eq!(
                    kiter.throughput, reference,
                    "K-Iter disagrees with symbolic execution on seed {seed}:\n{graph}"
                );
                agreements += 1;
                if reference == Throughput::Deadlocked {
                    deadlocks += 1;
                }
                if let (Some(bound), Throughput::Finite(_)) =
                    (periodic.throughput(), kiter.throughput)
                {
                    assert!(bound <= kiter.throughput, "periodic bound exceeds optimum");
                    if bound < kiter.throughput {
                        strict_periodic_gap += 1;
                    }
                }
            }
            None => timeouts += 1,
        }
    }

    println!("random CSDF graphs checked : {count}");
    println!("exact agreements           : {agreements}");
    println!("symbolic-execution timeouts: {timeouts}");
    println!("deadlocked instances       : {deadlocks}");
    println!("graphs where the 1-periodic bound is strictly pessimistic: {strict_periodic_gap}");
    Ok(())
}
