//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal, dependency-free implementation of the exact `rand 0.8` API
//! surface the generators use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over integer ranges.
//!
//! The stream differs numerically from upstream `rand` (it is a SplitMix64
//! generator), which is fine: the workspace only relies on *determinism* —
//! the same seed always produces the same graph — never on specific values.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A random number generator seedable from integers or byte arrays.
///
/// Only the [`seed_from_u64`](SeedableRng::seed_from_u64) constructor is
/// provided; it is the only one the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core randomness source: a stream of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one u64
            // of state, and trivially seedable — ideal for a reproducible
            // benchmark-generator stream.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let half_open = rng.gen_range(3usize..17);
            assert!((3..17).contains(&half_open));
            let inclusive = rng.gen_range(5u64..=5);
            assert_eq!(inclusive, 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(4usize..4);
    }
}
