//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the small `proptest` API subset the workspace's tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! integer-range [`Strategy`]s, and the `prop_assert*` macros. Cases are
//! drawn from a deterministic per-test stream (seeded from the test name), so
//! failures are reproducible; there is no shrinking — a failure reports the
//! case index and the sampled arguments instead.

#![forbid(unsafe_code)]

/// Strategies: how argument values are drawn.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A source of values for one macro argument, mirroring
    /// `proptest::strategy::Strategy` in spirit (no shrinking).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value: core::fmt::Debug;

        /// Draws one value from the deterministic case stream.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u128) - (start as u128) + 1;
                    start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// A fixed list of candidate values, sampled uniformly.
    impl<T: Clone + core::fmt::Debug> Strategy for Vec<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.is_empty(), "cannot sample from an empty vector");
            self[(rng.next_u64() % self.len() as u64) as usize].clone()
        }
    }
}

/// Test execution: configuration, RNG and the case loop.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config`; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property is checked against.
        pub cases: u32,
        /// Accepted for API parity; unused (there is no rejection sampling).
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_global_rejects: 1024,
            }
        }
    }

    /// A failed property case: the message carried by `prop_assert*`.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 stream backing every strategy draw.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream; the runner derives the seed from the test name
        /// and case index so every case is independently reproducible.
        pub fn seed_from_u64(state: u64) -> Self {
            TestRng { state }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runs one property over `config.cases` deterministic cases.
    pub struct TestRunner {
        config: Config,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner for the named property.
        pub fn new(config: Config, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Executes the property once per case, panicking on the first
        /// failure with the case index (re-runs are deterministic, so the
        /// index pinpoints the failing inputs).
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = fnv1a(self.name.as_bytes());
            for index in 0..self.config.cases {
                let mut rng = TestRng::seed_from_u64(
                    base ^ (u64::from(index)).wrapping_mul(0xA24B_AED4_963E_E407),
                );
                if let Err(error) = case(&mut rng) {
                    panic!(
                        "property `{}` failed at case {index}/{}: {error}",
                        self.name, self.config.cases
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Everything the tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = (<$crate::test_runner::Config as Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|__proptest_rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);
                )*
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the process)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left != right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(value in 10u64..20, inclusive in 3usize..=5) {
            prop_assert!((10..20).contains(&value));
            prop_assert!((3..=5).contains(&inclusive));
        }

        #[test]
        fn eq_macros_accept_equal_values(value in 0u32..100) {
            prop_assert_eq!(value, value);
            prop_assert_ne!(value, value + 1);
        }
    }

    #[test]
    fn failing_property_panics_with_case_index() {
        let result = std::panic::catch_unwind(|| {
            let config = crate::test_runner::Config {
                cases: 4,
                ..Default::default()
            };
            let mut runner = crate::test_runner::TestRunner::new(config, "always_fails");
            runner.run(|_| Err(crate::test_runner::TestCaseError::fail("boom")));
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("case 0"), "{message}");
    }
}
