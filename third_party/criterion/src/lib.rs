//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the `criterion 0.5` API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — with a
//! simple wall-clock measurement loop instead of criterion's full statistical
//! machinery. Benches compile, run, and print per-benchmark mean times; they
//! do not produce HTML reports or regression statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns `value` while discouraging the optimiser from removing the
/// computation that produced it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.sample_size == 0 {
                20
            } else {
                self.sample_size
            },
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        };
        run_one(name, sample_size, |bencher| routine(bencher));
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Benchmarks `routine` against a borrowed `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |bencher| routine(bencher, input));
        self
    }

    /// Benchmarks `routine` with no associated input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |bencher| routine(bencher));
        self
    }

    /// Ends the group. (Reporting happens eagerly; this is for API parity.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timer handle passed to benchmark routines.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times repeated executions of `routine` and records the samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up execution, then time `iters_per_sample`
        // executions as a single sample.
        black_box(routine());
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut routine: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        routine(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let (min, max) = (
        bencher.samples.iter().min().copied().unwrap_or_default(),
        bencher.samples.iter().max().copied().unwrap_or_default(),
    );
    println!(
        "{label:<60} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

fn format_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; accept and
            // ignore them the way the real harness does for our purposes.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_routine() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("noop", 1), &41u64, |bencher, input| {
            bencher.iter(|| input + 1);
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
