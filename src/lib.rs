//! # kiter — optimal and fast throughput evaluation of CSDF
//!
//! A Rust reproduction of *Optimal and fast throughput evaluation of CSDF*
//! (Bodin, Munier-Kordon, Dupont de Dinechin — DAC 2016). The workspace is
//! organised in focused crates; this facade re-exports their public APIs so
//! that applications can depend on a single crate:
//!
//! * [`model`] (`csdf`) — the Cyclo-Static Dataflow Graph model, repetition
//!   vectors, transformations and serialisation;
//! * [`ratio`] (`mcr`) — maximum cycle ratio / cycle mean solvers;
//! * [`analysis`] (`kperiodic`) — K-periodic scheduling and the K-Iter
//!   algorithm (the paper's contribution), plus the long-lived
//!   [`AnalysisSession`];
//! * [`explore`] (`csdf-explore`) — design-space exploration over analysis
//!   sessions: Pareto sweeps, storage minimisation, scenario sets;
//! * [`lint`] (`csdf-lint`) — static graph analysis: structural diagnostics
//!   with stable codes and sound pre-solve throughput bounds (see the
//!   `csdf-lint` binary);
//! * [`baselines`] (`csdf-baselines`) — symbolic execution, HSDF expansion
//!   and 1-periodic baselines;
//! * [`generators`] (`csdf-generators`) — benchmark generators for the
//!   paper's Tables 1 and 2;
//! * [`service`] (`csdf-service`) — the throughput-analysis daemon:
//!   line-delimited JSON requests over stdin or a Unix socket, pooled
//!   analysis sessions and a result cache (see the `csdf_service` binary
//!   and `examples/service_client.rs`).
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! # Examples
//!
//! ```
//! use kiter::{CsdfGraphBuilder, optimal_throughput};
//!
//! let mut builder = CsdfGraphBuilder::named("quickstart");
//! let producer = builder.add_task("producer", vec![1, 1]);
//! let consumer = builder.add_sdf_task("consumer", 2);
//! builder.add_buffer(producer, consumer, vec![2, 1], vec![1], 0);
//! builder.add_buffer(consumer, producer, vec![1], vec![2, 1], 6);
//! let graph = builder.build()?;
//!
//! let result = optimal_throughput(&graph)?;
//! println!("throughput = {}", result.throughput);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The CSDF graph model (re-export of the `csdf` crate).
pub use csdf as model;

/// Maximum cycle ratio solvers (re-export of the `mcr` crate).
pub use mcr as ratio;

/// K-periodic scheduling and K-Iter (re-export of the `kperiodic` crate).
pub use kperiodic as analysis;

/// Design-space exploration over analysis sessions (re-export of the
/// `csdf-explore` crate).
pub use csdf_explore as explore;

/// Baseline throughput evaluators (re-export of the `csdf-baselines` crate).
pub use csdf_baselines as baselines;

/// Benchmark generators (re-export of the `csdf-generators` crate).
pub use csdf_generators as generators;

/// Static graph analysis and pre-solve throughput bounds (re-export of the
/// `csdf-lint` crate).
pub use csdf_lint as lint;

/// The throughput-analysis daemon (re-export of the `csdf-service` crate).
pub use csdf_service as service;

pub use csdf::{
    Buffer, BufferId, CsdfError, CsdfGraph, CsdfGraphBuilder, Rational, RepetitionVector, Task,
    TaskId, Throughput,
};
pub use csdf_baselines::{
    expansion_throughput, periodic_throughput, symbolic_execution_throughput, Budget,
    EvaluationStatus, MethodResult,
};
pub use csdf_explore::{
    min_storage_for_throughput, ExploreOptions, ParetoSweep, ScenarioSet, SweepOutcome,
};
pub use kperiodic::{
    evaluate_k_periodic, evaluate_periodic, kiter_with_options, kiter_with_pipeline,
    optimal_throughput, paper_example, AnalysisError, AnalysisOptions, AnalysisSession,
    EvaluationPipeline, EventGraphArena, KIterOptions, KIterResult, KPeriodicSchedule,
    KUpdatePolicy, PeriodicityVector, PipelineStats,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_usable() {
        let (graph, tasks) = crate::paper_example();
        assert_eq!(graph.task_count(), 4);
        assert_eq!(tasks.a.index(), 0);
    }
}
