//! Periodicity vectors `K` of K-periodic schedules.

use std::fmt;

use csdf::{lcm_u64, CsdfError, CsdfGraph, RepetitionVector, TaskId};

/// A periodicity vector `K = [K_1, …, K_{|T|}]` assigning to every task the
/// number of executions whose starting times are fixed explicitly; the
/// remaining executions repeat with the task period `µ_t` (Section 2.4 of the
/// paper).
///
/// A unitary vector (`K_t = 1` everywhere) describes an ordinary periodic
/// (1-periodic) schedule.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use kperiodic::PeriodicityVector;
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 2, 3, 0);
/// let graph = builder.build()?;
///
/// let mut k = PeriodicityVector::unitary(&graph);
/// assert!(k.is_unitary());
/// k.set(a, 2)?;
/// assert_eq!(k.get(a), 2);
/// assert_eq!(k.lcm()?, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PeriodicityVector {
    entries: Vec<u64>,
}

impl PeriodicityVector {
    /// The unitary vector `K_t = 1` for every task of `graph`.
    pub fn unitary(graph: &CsdfGraph) -> Self {
        PeriodicityVector {
            entries: vec![1; graph.task_count()],
        }
    }

    /// The vector `K_t = q_t`, the largest vector K-Iter can ever need; with
    /// it the K-periodic schedule describes one full graph iteration
    /// explicitly.
    pub fn full(repetition: &RepetitionVector) -> Self {
        PeriodicityVector {
            entries: repetition.as_slice().to_vec(),
        }
    }

    /// Builds a vector from explicit entries.
    ///
    /// # Errors
    ///
    /// Returns [`CsdfError::InvalidPeriodicityVector`] when the length does
    /// not match the task count of `graph` and [`CsdfError::ZeroPeriodicity`]
    /// when an entry is zero.
    pub fn from_entries(graph: &CsdfGraph, entries: Vec<u64>) -> Result<Self, CsdfError> {
        if entries.len() != graph.task_count() {
            return Err(CsdfError::InvalidPeriodicityVector {
                expected: graph.task_count(),
                actual: entries.len(),
            });
        }
        if let Some(index) = entries.iter().position(|&k| k == 0) {
            return Err(CsdfError::ZeroPeriodicity {
                task: index,
                name: Some(graph.task(TaskId::new(index)).name().to_string()),
            });
        }
        Ok(PeriodicityVector { entries })
    }

    /// The periodicity `K_t` of a task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range for the graph this vector belongs to.
    pub fn get(&self, task: TaskId) -> u64 {
        self.entries[task.index()]
    }

    /// Sets the periodicity of a task.
    ///
    /// # Errors
    ///
    /// Returns [`CsdfError::ZeroPeriodicity`] when `value` is zero and
    /// [`CsdfError::TaskIndexOutOfRange`] when the task is unknown.
    pub fn set(&mut self, task: TaskId, value: u64) -> Result<(), CsdfError> {
        if value == 0 {
            return Err(CsdfError::ZeroPeriodicity {
                task: task.index(),
                name: None,
            });
        }
        let entry = self
            .entries
            .get_mut(task.index())
            .ok_or(CsdfError::TaskIndexOutOfRange(task.index()))?;
        *entry = value;
        Ok(())
    }

    /// Raises the periodicity of a task to `value` if that is larger,
    /// reporting whether the entry changed — this is how the K-Iter update
    /// rule builds the *dirty set* handed to the event-graph arena (only
    /// tasks for which `raise` returned `true` need their node blocks and
    /// incident buffer arcs re-derived).
    ///
    /// # Errors
    ///
    /// Returns [`CsdfError::ZeroPeriodicity`] when `value` is zero and
    /// [`CsdfError::TaskIndexOutOfRange`] when the task is unknown.
    pub fn raise(&mut self, task: TaskId, value: u64) -> Result<bool, CsdfError> {
        if value == 0 {
            return Err(CsdfError::ZeroPeriodicity {
                task: task.index(),
                name: None,
            });
        }
        let entry = self
            .entries
            .get_mut(task.index())
            .ok_or(CsdfError::TaskIndexOutOfRange(task.index()))?;
        if value > *entry {
            *entry = value;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in task order.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }

    /// Returns `true` when every entry equals one (ordinary periodic
    /// schedule).
    pub fn is_unitary(&self) -> bool {
        self.entries.iter().all(|&k| k == 1)
    }

    /// Least common multiple `lcm(K)` of all entries.
    ///
    /// # Errors
    ///
    /// Returns [`CsdfError::Overflow`] when the lcm exceeds `u64`.
    pub fn lcm(&self) -> Result<u64, CsdfError> {
        let mut result = 1u64;
        for &entry in &self.entries {
            result = lcm_u64(result, entry).map_err(|_| CsdfError::Overflow)?;
        }
        Ok(result)
    }

    /// Sum of all entries — a proxy for the size of the event graph K-Iter
    /// has to solve.
    pub fn sum(&self) -> u128 {
        self.entries.iter().map(|&k| k as u128).sum()
    }

    /// Component-wise comparison: `true` when `self ≤ other` everywhere.
    pub fn dominated_by(&self, other: &PeriodicityVector) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }
}

impl fmt::Display for PeriodicityVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (index, entry) in self.entries.iter().enumerate() {
            if index > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{entry}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn graph() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 3, 0);
        b.build().unwrap()
    }

    #[test]
    fn unitary_vector() {
        let g = graph();
        let k = PeriodicityVector::unitary(&g);
        assert!(k.is_unitary());
        assert_eq!(k.lcm().unwrap(), 1);
        assert_eq!(k.sum(), 2);
        assert_eq!(k.to_string(), "[1, 1]");
    }

    #[test]
    fn full_vector_copies_the_repetition_vector() {
        let g = graph();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::full(&q);
        assert_eq!(k.as_slice(), q.as_slice());
        assert!(!k.is_unitary());
    }

    #[test]
    fn from_entries_validates() {
        let g = graph();
        assert!(matches!(
            PeriodicityVector::from_entries(&g, vec![1]),
            Err(CsdfError::InvalidPeriodicityVector {
                expected: 2,
                actual: 1
            })
        ));
        assert!(matches!(
            PeriodicityVector::from_entries(&g, vec![1, 0]),
            Err(CsdfError::ZeroPeriodicity {
                task: 1,
                name: Some(_)
            })
        ));
        let k = PeriodicityVector::from_entries(&g, vec![2, 3]).unwrap();
        assert_eq!(k.lcm().unwrap(), 6);
    }

    #[test]
    fn raise_reports_dirty_entries() {
        let g = graph();
        let mut k = PeriodicityVector::unitary(&g);
        assert!(k.raise(TaskId::new(0), 3).unwrap());
        assert!(!k.raise(TaskId::new(0), 2).unwrap());
        assert!(!k.raise(TaskId::new(0), 3).unwrap());
        assert_eq!(k.get(TaskId::new(0)), 3);
        assert!(k.raise(TaskId::new(0), 0).is_err());
        assert!(k.raise(TaskId::new(9), 1).is_err());
    }

    #[test]
    fn set_and_dominance() {
        let g = graph();
        let mut k = PeriodicityVector::unitary(&g);
        let q = g.repetition_vector().unwrap();
        let full = PeriodicityVector::full(&q);
        assert!(k.dominated_by(&full));
        k.set(TaskId::new(0), 5).unwrap();
        assert!(!k.dominated_by(&full));
        assert!(k.set(TaskId::new(0), 0).is_err());
        assert!(k.set(TaskId::new(9), 1).is_err());
        assert_eq!(k.get(TaskId::new(0)), 5);
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
    }
}
