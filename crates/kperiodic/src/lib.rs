//! # kperiodic — K-periodic scheduling and the K-Iter algorithm
//!
//! This crate is the core contribution of the workspace: a Rust
//! implementation of *Optimal and fast throughput evaluation of CSDF*
//! (Bodin, Munier-Kordon, Dupont de Dinechin — DAC 2016).
//!
//! * [`PeriodicityVector`] — the vector `K` of a K-periodic schedule
//!   (Section 2.4);
//! * [`duplicate_phases`] / [`transformed_repetition_vector`] — the `G → G̃`
//!   transformation of Section 3.2 (Theorem 3);
//! * [`EventGraph`] / [`EventGraphArena`] — the bi-valued graph whose maximum
//!   cost-to-time ratio is the minimum period (Section 3.3), as a one-shot
//!   build and as a long-lived arena patched across iterations;
//! * [`evaluate_k_periodic`] / [`evaluate_periodic`] — fixed-K evaluation;
//! * [`EvaluationPipeline`] — the reusable fixed-K pipeline K-Iter drives;
//! * [`AnalysisSession`] — a long-lived session whose graph mutates in
//!   place (buffer capacities / initial tokens) between evaluations, the
//!   unit of work of the `explore` design-space crate;
//! * [`optimal_throughput`] / [`kiter_with_options`] — the K-Iter algorithm
//!   with its Theorem-4 optimality test (Sections 3.4–3.5);
//! * [`KPeriodicSchedule`] — explicit starting times, validation and ASCII
//!   Gantt rendering;
//! * [`paper_example`] — the reconstructed running example of the paper.
//!
//! # The incremental evaluation pipeline
//!
//! K-Iter (Algorithm 1) evaluates a sequence of periodicity vectors that
//! differ only on the tasks of the latest critical circuit. The crate
//! therefore runs each iteration through a four-stage pipeline instead of
//! rebuilding the event graph from scratch:
//!
//! 1. **periodicity update** — the update rule raises `K_t` for the critical
//!    tasks ([`PeriodicityVector::raise`]) and reports which entries actually
//!    changed;
//! 2. **dirty set** — those tasks form the dirty set; everything else is
//!    untouched by construction;
//! 3. **arena patch** — [`EventGraphArena::apply_update`] re-derives only the
//!    dirty tasks' node blocks and the constraint arcs of their incident
//!    buffers, then re-assembles the ratio graph in place (allocations kept,
//!    arc order identical to a from-scratch build);
//! 4. **MCR solve** — the shared [`mcr::Solver`] resolves the patched graph,
//!    resizing (never recreating) its scratch buffers.
//!
//! The patched graph is bit-identical to a from-scratch [`EventGraph::build`]
//! at the same vector, so all outcomes are exact and path-independent; the
//! arena stores lcm-free arc times (see [`EventGraphArena`]) so that cached
//! arcs stay valid when `lcm(K)` changes.
//!
//! # Examples
//!
//! ```
//! use csdf::CsdfGraphBuilder;
//! use kperiodic::optimal_throughput;
//!
//! // A producer/consumer pair with a feedback buffer of 3 tokens.
//! let mut builder = CsdfGraphBuilder::new();
//! let producer = builder.add_task("producer", vec![1, 2]);
//! let consumer = builder.add_sdf_task("consumer", 1);
//! builder.add_buffer(producer, consumer, vec![1, 2], vec![1], 0);
//! builder.add_buffer(consumer, producer, vec![1], vec![1, 2], 3);
//! let graph = builder.build()?;
//!
//! let result = optimal_throughput(&graph)?;
//! println!("maximum throughput: {}", result.throughput);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod arena;
mod block;
mod constraints;
mod duplication;
mod error;
mod event_graph;
mod kiter;
mod paper_example;
mod periodicity;
mod pool;
mod schedule;
mod session;

pub use analysis::{
    evaluate_k_periodic, evaluate_periodic, evaluate_with_repetition, evaluate_with_solver,
    AnalysisOptions, EvaluationOutcome, EvaluationPipeline, KPeriodicEvaluation,
    PipelineEvaluation, PipelineStats,
};
pub use arena::{ArenaUpdate, AssembleMode, EventGraphArena};
pub use constraints::{
    ceil_to_multiple, duplicate_rates, floor_to_multiple, phase_constraints, PhaseConstraint,
};
pub use duplication::{duplicate_phases, transformed_repetition_vector};
pub use error::AnalysisError;
pub use event_graph::{EventGraph, EventGraphLimits, EventNode};
pub use kiter::{
    kiter_with_options, kiter_with_pipeline, optimal_throughput, KIterIteration, KIterOptions,
    KIterResult, KUpdatePolicy,
};
pub use mcr::CancelToken;
pub use paper_example::{paper_example, PaperExampleTasks};
pub use periodicity::PeriodicityVector;
pub use pool::{PoolStats, SessionPool};
pub use schedule::KPeriodicSchedule;
pub use session::AnalysisSession;

/// The structure fingerprint of a graph: an FNV-1a hash over its tasks,
/// durations, buffer endpoints and rates — everything the event-graph arena
/// caches depend on, with the initial markings deliberately excluded
/// (markings are a patchable input, re-derived buffer by buffer). Two graphs
/// with equal fingerprints can share a warm [`AnalysisSession`] via
/// [`AnalysisSession::adopt_markings`]; a [`SessionPool`] routes checkout
/// requests by this value. Collisions are astronomically unlikely and
/// treated as advisory hardening, exactly like
/// [`EventGraphArena::matches_structure`].
pub fn structure_fingerprint(graph: &csdf::CsdfGraph) -> u64 {
    arena::graph_fingerprint(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PeriodicityVector>();
        assert_send_sync::<KIterResult>();
        assert_send_sync::<KPeriodicEvaluation>();
        assert_send_sync::<KPeriodicSchedule>();
        assert_send_sync::<AnalysisError>();
        assert_send_sync::<EventGraph>();
    }
}
