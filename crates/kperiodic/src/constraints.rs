//! Theorem-2 constraint generation.
//!
//! For a buffer `b = (t, t')` and a pair of phases `(p, p')`, the paper's
//! Theorem 2 (recalled from the authors' `ESTIMedia`'13 work) states that a
//! periodic schedule is feasible if and only if, whenever
//! `α_a(p,p') ≤ β_a(p,p')`,
//!
//! ```text
//! S⟨t'_p', 1⟩ − S⟨t_p, 1⟩ ≥ d(t_p) + Ω · β_a(p,p') / (q_t · i_b)
//! ```
//!
//! with
//!
//! ```text
//! Q_a(p,p') = Oa⟨t'_p',1⟩ − Ia⟨t_p,1⟩ − M0(b) + in_b(p)
//! α_a(p,p') = ⌈Q_a(p,p') − min(in_b(p), out_b(p'))⌉^{gcd_a}
//! β_a(p,p') = ⌊Q_a(p,p') − 1⌋^{gcd_a}
//! ```
//!
//! where `⌈x⌉^γ` (resp. `⌊x⌋^γ`) rounds up (resp. down) to a multiple of `γ`.
//! This module computes these quantities on *expanded* rate vectors, so the
//! same code serves the 1-periodic case and the K-periodic case (where every
//! vector is duplicated `K_t` times, Section 3.2).
//!
//! Constraints are emitted **per buffer**: [`phase_constraints`] returns the
//! raw `(α, β)` pairs of one buffer, and [`emit_buffer_arcs`] turns them
//! directly into the bi-valued event-graph arcs of that buffer (block-local
//! endpoints plus `L`/`H` values). The event-graph arena caches the result of
//! `emit_buffer_arcs` per buffer and only re-derives it for buffers whose
//! producer or consumer changed periodicity.

use csdf::{CsdfError, Rational};

/// One useful (non-redundant) precedence constraint between a producer phase
/// and a consumer phase of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseConstraint {
    /// 0-based producer phase index (into the expanded production vector).
    pub producer_phase: usize,
    /// 0-based consumer phase index (into the expanded consumption vector).
    pub consumer_phase: usize,
    /// The `α_a(p,p')` bound (a multiple of `gcd_a`).
    pub alpha: i128,
    /// The `β_a(p,p')` bound (a multiple of `gcd_a`); this is the value that
    /// enters the schedule constraint and the event-graph arc weight.
    pub beta: i128,
}

/// Computes every useful phase-pair constraint of a buffer described by its
/// (possibly duplicated) production / consumption vectors and initial marking.
///
/// The returned constraints are exactly the pairs `(p, p')` of the paper's set
/// `Y(a)` for which `α ≤ β`, in row-major order (producer phase outermost).
///
/// # Panics
///
/// Panics if either rate vector is empty or sums to zero (the
/// [`csdf::CsdfGraphBuilder`] never produces such buffers).
pub fn phase_constraints(
    production: &[u64],
    consumption: &[u64],
    initial_tokens: u64,
) -> Vec<PhaseConstraint> {
    let mut constraints = Vec::new();
    let emitted: Result<(), CsdfError> =
        for_each_constraint(production, consumption, initial_tokens, |constraint| {
            constraints.push(constraint);
            Ok(())
        });
    emitted.expect("collecting constraints is infallible");
    constraints
}

/// Visits every useful phase-pair constraint of one buffer in row-major order
/// (producer phase outermost), without allocating the constraint list.
///
/// # Panics
///
/// Panics if either rate vector is empty or sums to zero (the
/// [`csdf::CsdfGraphBuilder`] never produces such buffers).
///
/// # Errors
///
/// Propagates the first error returned by `visit`.
pub(crate) fn for_each_constraint(
    production: &[u64],
    consumption: &[u64],
    initial_tokens: u64,
    mut visit: impl FnMut(PhaseConstraint) -> Result<(), CsdfError>,
) -> Result<(), CsdfError> {
    assert!(!production.is_empty() && !consumption.is_empty());
    let total_production: u64 = production.iter().sum();
    let total_consumption: u64 = consumption.iter().sum();
    assert!(total_production > 0 && total_consumption > 0);
    let gcd = csdf::gcd_u64(total_production, total_consumption) as i128;

    // 1-based cumulative consumption (the inner loop reuses it per producer
    // phase; the cumulative production is carried by the outer loop).
    let mut cumulative_consumption = Vec::with_capacity(consumption.len());
    let mut running = 0i128;
    for &rate in consumption {
        running += rate as i128;
        cumulative_consumption.push(running);
    }

    let marking = initial_tokens as i128;
    let mut produced_before = 0i128;
    for (p, &produced_here) in production.iter().enumerate() {
        produced_before += produced_here as i128;
        for (p_prime, &consumed_here) in consumption.iter().enumerate() {
            let consumed_before = cumulative_consumption[p_prime];
            let q_value = consumed_before - produced_before - marking + produced_here as i128;
            let alpha = ceil_to_multiple(q_value - (produced_here.min(consumed_here)) as i128, gcd);
            let beta = floor_to_multiple(q_value - 1, gcd);
            if alpha <= beta {
                visit(PhaseConstraint {
                    producer_phase: p,
                    consumer_phase: p_prime,
                    alpha,
                    beta,
                })?;
            }
        }
    }
    Ok(())
}

/// One cached bi-valued arc of a buffer's constraint set. Endpoints are
/// *block-local* phase indices; the arena re-bases them on the producer's and
/// consumer's node-block offsets when assembling the ratio graph, so a cached
/// arc stays valid when other tasks' blocks move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BufferArc {
    /// Producer phase in `0 .. K_t·ϕ(t)` of the source task.
    pub producer_phase: u32,
    /// Consumer phase in `0 .. K_{t'}·ϕ(t')` of the target task.
    pub consumer_phase: u32,
    /// `L(e)`: the duration of the producer phase.
    pub cost: Rational,
    /// `H(e)`: `−β_a(p, p') / (i_b · q_t)` — see the arena docs for why the
    /// `lcm(K)` factor of the paper's formula is deliberately left out.
    pub time: Rational,
}

/// Derives the bi-valued arcs of one buffer under the current periodicity:
/// Theorem-2 constraints over the expanded rate vectors, bi-valued with the
/// producer-phase duration as cost and `−β / denominator` as time.
///
/// `producer_durations` is the producer's expanded duration slice and
/// `denominator` the K-invariant `i_b · q_t` of the buffer. The result is
/// written into `out` (cleared first) so the arena reuses its allocation.
///
/// # Errors
///
/// Returns [`CsdfError::Rational`] when a time value overflows `i128`.
// Outside tests the arena only drives the tiled fast path; the naive
// emission is retained as the executable reference semantics and the oracle
// of `tiled_emission_matches_the_naive_oracle`.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn emit_buffer_arcs(
    production: &[u64],
    consumption: &[u64],
    initial_tokens: u64,
    producer_durations: &[u64],
    denominator: i128,
    out: &mut Vec<BufferArc>,
) -> Result<(), CsdfError> {
    out.clear();
    for_each_constraint(production, consumption, initial_tokens, |constraint| {
        out.push(BufferArc {
            producer_phase: u32::try_from(constraint.producer_phase)
                .map_err(|_| CsdfError::Overflow)?,
            consumer_phase: u32::try_from(constraint.consumer_phase)
                .map_err(|_| CsdfError::Overflow)?,
            cost: Rational::from_integer(producer_durations[constraint.producer_phase] as i128),
            time: Rational::new(-constraint.beta, denominator).map_err(CsdfError::Rational)?,
        });
        Ok(())
    })
}

/// Derives the bi-valued arcs of one buffer under the current periodicity
/// **without materialising the expanded rate vectors or probing every phase
/// pair**: the output-sensitive fast path of the event-graph arena.
///
/// The expanded production/consumption vectors are `K`-tilings of the base
/// rates, so along the consumer tiles the constraint test
/// `α ≤ β ⟺ (q − 1) mod g̃ < min(in, out)` walks an arithmetic progression
/// `q_j = q_0 + j·o_b (mod g̃)`: the tile indices `j` that satisfy it form a
/// union of congruence classes modulo `g̃ / gcd(o_b, g̃)` that can be solved
/// directly (one modular inverse per class) instead of probed one by one.
/// The naive [`emit_buffer_arcs`] is `O(K_s·ϕ_s · K_t·ϕ_t)` per buffer —
/// ~50M probes per buffer for the paper's buffer-sized JPEG2000 instance at
/// full `K`, which dominated the whole analysis — while this path is
/// `O(K_s·ϕ_s · (ϕ_c + arcs log arcs))` with a per-phase fallback that never
/// exceeds the naive inner loop. The emitted arcs are **bit-identical, in
/// identical row-major order** (property-tested against the naive oracle in
/// this module).
///
/// `producer_durations` is the producer's expanded duration slice and
/// `denominator` the K-invariant `i_b · q_t`. `phase_scratch` is a reusable
/// buffer for the per-producer-phase consumer matches.
///
/// # Errors
///
/// Returns [`CsdfError::Overflow`] when expanded totals or phase counts
/// leave the supported range, [`CsdfError::Rational`] when a time value
/// overflows `i128`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emit_buffer_arcs_tiled(
    base_production: &[u64],
    k_source: u64,
    base_consumption: &[u64],
    k_target: u64,
    initial_tokens: u64,
    producer_durations: &[u64],
    denominator: i128,
    phase_scratch: &mut Vec<u32>,
    out: &mut Vec<BufferArc>,
) -> Result<(), CsdfError> {
    out.clear();
    assert!(!base_production.is_empty() && !base_consumption.is_empty());
    let phi_s = base_production.len();
    let phi_c = base_consumption.len();
    let i_b: u64 = base_production.iter().sum();
    let o_b: u64 = base_consumption.iter().sum();
    assert!(i_b > 0 && o_b > 0);
    let expanded_producers = (phi_s as u64)
        .checked_mul(k_source)
        .ok_or(CsdfError::Overflow)?;
    let expanded_consumers = (phi_c as u64)
        .checked_mul(k_target)
        .ok_or(CsdfError::Overflow)?;
    if u32::try_from(expanded_producers).is_err() || u32::try_from(expanded_consumers).is_err() {
        return Err(CsdfError::Overflow);
    }
    let total_production = (i_b as i128)
        .checked_mul(k_source as i128)
        .ok_or(CsdfError::Overflow)?;
    let total_consumption = (o_b as i128)
        .checked_mul(k_target as i128)
        .ok_or(CsdfError::Overflow)?;
    let g = csdf::gcd_i128(total_production, total_consumption);
    let ob = o_b as i128;
    let ob_mod = ob % g;
    // Solutions of `j·o_b ≡ Δ (mod g̃)` repeat with period `s = g̃ / e`.
    let (e, s, inverse) = if ob_mod == 0 {
        (0, 0, 0)
    } else {
        let e = csdf::gcd_i128(ob_mod, g);
        let s = g / e;
        (e, s, mod_inverse(ob_mod / e, s))
    };

    // 1-based cumulative base consumption.
    let mut cumulative_consumption = Vec::with_capacity(phi_c);
    let mut running = 0i128;
    for &rate in base_consumption {
        running += rate as i128;
        cumulative_consumption.push(running);
    }

    let marking = initial_tokens as i128;
    let mut produced_before = 0i128;
    for p in 0..expanded_producers {
        let pb = (p % phi_s as u64) as usize;
        let v = base_production[pb] as i128;
        produced_before += v;
        phase_scratch.clear();
        for (cb, &consumed_here) in base_consumption.iter().enumerate() {
            let m = v.min(consumed_here as i128);
            if m == 0 {
                continue;
            }
            // q for consumer tile j = 0, then q_j = q_0 + j·o_b.
            let q_zero = cumulative_consumption[cb] - produced_before - marking + v;
            let r_zero = (q_zero - 1).rem_euclid(g);
            if ob_mod == 0 {
                // The residue never moves: all tiles match, or none do.
                if r_zero < m {
                    for j in 0..k_target {
                        phase_scratch.push(j as u32 * phi_c as u32 + cb as u32);
                    }
                }
                continue;
            }
            let m_eff = m.min(g);
            // Valid residues `t ∈ [0, m_eff)` must satisfy `t ≡ r_0 (mod e)`.
            let t_first = r_zero % e;
            if t_first >= m_eff {
                continue;
            }
            let classes = (m_eff - 1 - t_first) / e + 1;
            if classes >= k_target as i128 {
                // Dense case: probing every tile is cheaper than solving
                // more congruence classes than there are tiles. Never worse
                // than the naive inner loop.
                let mut residue = r_zero;
                for j in 0..k_target {
                    if residue < m {
                        phase_scratch.push(j as u32 * phi_c as u32 + cb as u32);
                    }
                    residue += ob_mod;
                    if residue >= g {
                        residue -= g;
                    }
                }
                continue;
            }
            let mut t = t_first;
            while t < m_eff {
                // j ≡ (Δ/e)·(o_b/e)⁻¹ (mod s) with Δ = (t − r_0) mod g̃.
                let delta = (t - r_zero).rem_euclid(g);
                let j_first = ((delta / e) % s)
                    .checked_mul(inverse)
                    .ok_or(CsdfError::Overflow)?
                    % s;
                let mut j = j_first as u64;
                while j < k_target {
                    phase_scratch.push(j as u32 * phi_c as u32 + cb as u32);
                    j += s as u64;
                }
                t += e;
            }
        }
        // Congruence classes interleave across consumer phases; restore the
        // naive row-major (consumer-phase-ascending) order exactly.
        phase_scratch.sort_unstable();
        for &consumer_phase in phase_scratch.iter() {
            let j = (consumer_phase / phi_c as u32) as i128;
            let cb = (consumer_phase % phi_c as u32) as usize;
            let q = cumulative_consumption[cb] + j * ob - produced_before - marking + v;
            let beta = floor_to_multiple(q - 1, g);
            debug_assert!(
                ceil_to_multiple(q - v.min(base_consumption[cb] as i128), g) <= beta,
                "tiled emission produced a useless constraint"
            );
            out.push(BufferArc {
                producer_phase: p as u32,
                consumer_phase,
                cost: Rational::from_integer(producer_durations[p as usize] as i128),
                time: Rational::new(-beta, denominator).map_err(CsdfError::Rational)?,
            });
        }
    }
    Ok(())
}

/// Modular inverse of `a` modulo `m` (`m ≥ 1`, `gcd(a, m) = 1`) by the
/// extended Euclidean algorithm, in `[0, m)`.
fn mod_inverse(a: i128, m: i128) -> i128 {
    if m == 1 {
        return 0;
    }
    let (mut r_prev, mut r) = (a.rem_euclid(m), m);
    let (mut x_prev, mut x) = (1i128, 0i128);
    while r != 0 {
        let q = r_prev / r;
        (r_prev, r) = (r, r_prev - q * r);
        (x_prev, x) = (x, x_prev - q * x);
    }
    debug_assert_eq!(r_prev, 1, "inverse requires coprime operands");
    x_prev.rem_euclid(m)
}

/// Duplicates a rate vector `factor` times (the `[v]^P` notation of the
/// paper's Section 3.2).
pub fn duplicate_rates(rates: &[u64], factor: u64) -> Vec<u64> {
    let mut duplicated = Vec::new();
    duplicate_rates_into(&mut duplicated, rates, factor);
    duplicated
}

/// [`duplicate_rates`] into a reused buffer (cleared first): the single
/// implementation of the `[v]^P` tiling behind the task blocks and the
/// arena's rate-expansion scratch.
pub(crate) fn duplicate_rates_into(out: &mut Vec<u64>, rates: &[u64], factor: u64) {
    out.clear();
    out.reserve(
        rates
            .len()
            .saturating_mul(usize::try_from(factor).unwrap_or(usize::MAX)),
    );
    for _ in 0..factor {
        out.extend_from_slice(rates);
    }
}

/// Rounds `value` down to a multiple of `step` (`⌊value⌋^step`).
pub fn floor_to_multiple(value: i128, step: i128) -> i128 {
    debug_assert!(step > 0);
    value.div_euclid(step) * step
}

/// Rounds `value` up to a multiple of `step` (`⌈value⌉^step`).
pub fn ceil_to_multiple(value: i128, step: i128) -> i128 {
    debug_assert!(step > 0);
    -((-value).div_euclid(step)) * step
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle check for the arena's fast path: the congruence-solving tiled
    /// emission must produce **bit-identical arcs in identical order** to
    /// the naive expanded double loop, across rate shapes (incl. zero
    /// rates), markings and periodicities, hitting the all-tiles, dense and
    /// congruence-class branches.
    #[test]
    fn tiled_emission_matches_the_naive_oracle() {
        let mut state = 0x9e37_79b9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut checked_arcs = 0usize;
        for case in 0..400u64 {
            let phi_s = 1 + (next() % 4) as usize;
            let phi_c = 1 + (next() % 4) as usize;
            let mut production: Vec<u64> = (0..phi_s).map(|_| next() % 6).collect();
            let mut consumption: Vec<u64> = (0..phi_c).map(|_| next() % 6).collect();
            // Builders never produce zero-total buffers.
            production[0] = production[0].max(1);
            consumption[0] = consumption[0].max(1);
            let k_source = 1 + next() % if case % 5 == 0 { 40 } else { 6 };
            let k_target = 1 + next() % if case % 7 == 0 { 40 } else { 6 };
            let tokens = next() % 25;
            let denominator = (production.iter().sum::<u64>() * (1 + next() % 4)) as i128;

            let expanded_production = duplicate_rates(&production, k_source);
            let expanded_consumption = duplicate_rates(&consumption, k_target);
            let durations: Vec<u64> = (0..expanded_production.len()).map(|_| next() % 9).collect();

            let mut naive = Vec::new();
            emit_buffer_arcs(
                &expanded_production,
                &expanded_consumption,
                tokens,
                &durations,
                denominator,
                &mut naive,
            )
            .expect("naive emission succeeds");
            let mut tiled = Vec::new();
            let mut scratch = Vec::new();
            emit_buffer_arcs_tiled(
                &production,
                k_source,
                &consumption,
                k_target,
                tokens,
                &durations,
                denominator,
                &mut scratch,
                &mut tiled,
            )
            .expect("tiled emission succeeds");
            assert_eq!(
                naive, tiled,
                "case {case}: prod {production:?} x{k_source}, cons {consumption:?} x{k_target}, tokens {tokens}"
            );
            checked_arcs += naive.len();
        }
        assert!(checked_arcs > 1_000, "the cases must exercise real arcs");
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(floor_to_multiple(7, 3), 6);
        assert_eq!(floor_to_multiple(-1, 3), -3);
        assert_eq!(floor_to_multiple(6, 3), 6);
        assert_eq!(ceil_to_multiple(7, 3), 9);
        assert_eq!(ceil_to_multiple(-1, 3), 0);
        assert_eq!(ceil_to_multiple(6, 3), 6);
        assert_eq!(ceil_to_multiple(0, 5), 0);
        assert_eq!(floor_to_multiple(0, 5), 0);
    }

    #[test]
    fn duplicate_rates_repeats_in_order() {
        assert_eq!(duplicate_rates(&[2, 3], 3), vec![2, 3, 2, 3, 2, 3]);
        assert_eq!(duplicate_rates(&[1], 1), vec![1]);
    }

    #[test]
    fn homogeneous_buffer_without_tokens() {
        // Unit rates, no marking: a single constraint with β = 0 forcing the
        // consumer to start after the producer.
        let constraints = phase_constraints(&[1], &[1], 0);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, 0);
        assert_eq!(constraints[0].alpha, 0);
    }

    #[test]
    fn homogeneous_buffer_with_one_token() {
        // One initial token: β = −1, the classic "one iteration of slack".
        let constraints = phase_constraints(&[1], &[1], 1);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, -1);
    }

    #[test]
    fn saturated_buffer_produces_no_constraint() {
        // With two tokens and unit rates, gcd = 1: Q = 1 - 1 - 2 + 1 = -1,
        // α = ⌈-2⌉ = -2 ≤ β = ⌊-2⌋ = -2: the constraint exists but is weak
        // (β = -2). Larger markings keep weakening it, never removing it for
        // gcd = 1, which matches the theorem.
        let constraints = phase_constraints(&[1], &[1], 2);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, -2);
    }

    #[test]
    fn serializing_self_loop_constraints() {
        // A 3-phase task's one-token self-loop: phases chain in order and the
        // last phase of one execution precedes the first of the next.
        let constraints = phase_constraints(&[1, 1, 1], &[1, 1, 1], 1);
        // Expected pairs: (p, p+1) with β = 0 and (last, first) with β = -3.
        assert!(constraints.contains(&PhaseConstraint {
            producer_phase: 0,
            consumer_phase: 1,
            alpha: 0,
            beta: 0,
        }));
        assert!(constraints.contains(&PhaseConstraint {
            producer_phase: 1,
            consumer_phase: 2,
            alpha: 0,
            beta: 0,
        }));
        assert!(constraints.contains(&PhaseConstraint {
            producer_phase: 2,
            consumer_phase: 0,
            alpha: -3,
            beta: -3,
        }));
        assert_eq!(constraints.len(), 3);
    }

    #[test]
    fn figure1_buffer_constraints_are_plausible() {
        // Paper Figure 1: in = [2,3,1], out = [2,5], M0 = 0, gcd = 1.
        let constraints = phase_constraints(&[2, 3, 1], &[2, 5], 0);
        // Every constraint must relate a valid phase pair and respect α ≤ β.
        assert!(!constraints.is_empty());
        for c in &constraints {
            assert!(c.producer_phase < 3);
            assert!(c.consumer_phase < 2);
            assert!(c.alpha <= c.beta);
        }
        // The first consumer phase needs the first producer phase: for
        // (p=1, p'=1): Q = 2 - 2 - 0 + 2 = 2, β = ⌊1⌋ = 1, α = ⌈0⌉ = 0.
        let first = constraints
            .iter()
            .find(|c| c.producer_phase == 0 && c.consumer_phase == 0)
            .expect("constraint (1,1) must exist");
        assert_eq!(first.beta, 1);
        assert_eq!(first.alpha, 0);
    }

    #[test]
    fn gcd_strengthening_removes_redundant_pairs() {
        // Rates 2 -> 2 with zero marking: gcd = 2. Q(1,1) = 2 - 2 - 0 + 2 = 2,
        // α = ⌈0⌉^2 = 0, β = ⌊1⌋^2 = 0 → constraint kept with β = 0.
        let constraints = phase_constraints(&[2], &[2], 0);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, 0);
        // With one token the constraint weakens: Q = 1, α = ⌈-1⌉^2 = 0,
        // β = ⌊0⌋^2 = 0 → still kept, β = 0 (a single token cannot decouple
        // rate-2 transfers).
        let constraints = phase_constraints(&[2], &[2], 1);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, 0);
        // With two tokens (one full transfer ahead) the dependency relaxes by
        // a full period: β = -2.
        let constraints = phase_constraints(&[2], &[2], 2);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, -2);
    }

    #[test]
    fn duplicated_vectors_grow_the_constraint_set() {
        let base = phase_constraints(&[1], &[1], 0);
        let duplicated = phase_constraints(&duplicate_rates(&[1], 2), &duplicate_rates(&[1], 2), 0);
        assert_eq!(base.len(), 1);
        assert!(duplicated.len() > base.len());
        for c in &duplicated {
            assert!(c.alpha <= c.beta);
        }
    }
}
