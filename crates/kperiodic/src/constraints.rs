//! Theorem-2 constraint generation.
//!
//! For a buffer `b = (t, t')` and a pair of phases `(p, p')`, the paper's
//! Theorem 2 (recalled from the authors' ESTIMedia'13 work) states that a
//! periodic schedule is feasible if and only if, whenever
//! `α_a(p,p') ≤ β_a(p,p')`,
//!
//! ```text
//! S⟨t'_p', 1⟩ − S⟨t_p, 1⟩ ≥ d(t_p) + Ω · β_a(p,p') / (q_t · i_b)
//! ```
//!
//! with
//!
//! ```text
//! Q_a(p,p') = Oa⟨t'_p',1⟩ − Ia⟨t_p,1⟩ − M0(b) + in_b(p)
//! α_a(p,p') = ⌈Q_a(p,p') − min(in_b(p), out_b(p'))⌉^{gcd_a}
//! β_a(p,p') = ⌊Q_a(p,p') − 1⌋^{gcd_a}
//! ```
//!
//! where `⌈x⌉^γ` (resp. `⌊x⌋^γ`) rounds up (resp. down) to a multiple of `γ`.
//! This module computes these quantities on *expanded* rate vectors, so the
//! same code serves the 1-periodic case and the K-periodic case (where every
//! vector is duplicated `K_t` times, Section 3.2).
//!
//! Constraints are emitted **per buffer**: [`phase_constraints`] returns the
//! raw `(α, β)` pairs of one buffer, and [`emit_buffer_arcs`] turns them
//! directly into the bi-valued event-graph arcs of that buffer (block-local
//! endpoints plus `L`/`H` values). The event-graph arena caches the result of
//! `emit_buffer_arcs` per buffer and only re-derives it for buffers whose
//! producer or consumer changed periodicity.

use csdf::{CsdfError, Rational};

/// One useful (non-redundant) precedence constraint between a producer phase
/// and a consumer phase of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseConstraint {
    /// 0-based producer phase index (into the expanded production vector).
    pub producer_phase: usize,
    /// 0-based consumer phase index (into the expanded consumption vector).
    pub consumer_phase: usize,
    /// The `α_a(p,p')` bound (a multiple of `gcd_a`).
    pub alpha: i128,
    /// The `β_a(p,p')` bound (a multiple of `gcd_a`); this is the value that
    /// enters the schedule constraint and the event-graph arc weight.
    pub beta: i128,
}

/// Computes every useful phase-pair constraint of a buffer described by its
/// (possibly duplicated) production / consumption vectors and initial marking.
///
/// The returned constraints are exactly the pairs `(p, p')` of the paper's set
/// `Y(a)` for which `α ≤ β`, in row-major order (producer phase outermost).
///
/// # Panics
///
/// Panics if either rate vector is empty or sums to zero (the
/// [`csdf::CsdfGraphBuilder`] never produces such buffers).
pub fn phase_constraints(
    production: &[u64],
    consumption: &[u64],
    initial_tokens: u64,
) -> Vec<PhaseConstraint> {
    let mut constraints = Vec::new();
    let emitted: Result<(), CsdfError> =
        for_each_constraint(production, consumption, initial_tokens, |constraint| {
            constraints.push(constraint);
            Ok(())
        });
    emitted.expect("collecting constraints is infallible");
    constraints
}

/// Visits every useful phase-pair constraint of one buffer in row-major order
/// (producer phase outermost), without allocating the constraint list.
///
/// # Panics
///
/// Panics if either rate vector is empty or sums to zero (the
/// [`csdf::CsdfGraphBuilder`] never produces such buffers).
///
/// # Errors
///
/// Propagates the first error returned by `visit`.
pub(crate) fn for_each_constraint(
    production: &[u64],
    consumption: &[u64],
    initial_tokens: u64,
    mut visit: impl FnMut(PhaseConstraint) -> Result<(), CsdfError>,
) -> Result<(), CsdfError> {
    assert!(!production.is_empty() && !consumption.is_empty());
    let total_production: u64 = production.iter().sum();
    let total_consumption: u64 = consumption.iter().sum();
    assert!(total_production > 0 && total_consumption > 0);
    let gcd = csdf::gcd_u64(total_production, total_consumption) as i128;

    // 1-based cumulative consumption (the inner loop reuses it per producer
    // phase; the cumulative production is carried by the outer loop).
    let mut cumulative_consumption = Vec::with_capacity(consumption.len());
    let mut running = 0i128;
    for &rate in consumption {
        running += rate as i128;
        cumulative_consumption.push(running);
    }

    let marking = initial_tokens as i128;
    let mut produced_before = 0i128;
    for (p, &produced_here) in production.iter().enumerate() {
        produced_before += produced_here as i128;
        for (p_prime, &consumed_here) in consumption.iter().enumerate() {
            let consumed_before = cumulative_consumption[p_prime];
            let q_value = consumed_before - produced_before - marking + produced_here as i128;
            let alpha = ceil_to_multiple(q_value - (produced_here.min(consumed_here)) as i128, gcd);
            let beta = floor_to_multiple(q_value - 1, gcd);
            if alpha <= beta {
                visit(PhaseConstraint {
                    producer_phase: p,
                    consumer_phase: p_prime,
                    alpha,
                    beta,
                })?;
            }
        }
    }
    Ok(())
}

/// One cached bi-valued arc of a buffer's constraint set. Endpoints are
/// *block-local* phase indices; the arena re-bases them on the producer's and
/// consumer's node-block offsets when assembling the ratio graph, so a cached
/// arc stays valid when other tasks' blocks move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BufferArc {
    /// Producer phase in `0 .. K_t·ϕ(t)` of the source task.
    pub producer_phase: u32,
    /// Consumer phase in `0 .. K_{t'}·ϕ(t')` of the target task.
    pub consumer_phase: u32,
    /// `L(e)`: the duration of the producer phase.
    pub cost: Rational,
    /// `H(e)`: `−β_a(p, p') / (i_b · q_t)` — see the arena docs for why the
    /// `lcm(K)` factor of the paper's formula is deliberately left out.
    pub time: Rational,
}

/// Derives the bi-valued arcs of one buffer under the current periodicity:
/// Theorem-2 constraints over the expanded rate vectors, bi-valued with the
/// producer-phase duration as cost and `−β / denominator` as time.
///
/// `producer_durations` is the producer's expanded duration slice and
/// `denominator` the K-invariant `i_b · q_t` of the buffer. The result is
/// written into `out` (cleared first) so the arena reuses its allocation.
///
/// # Errors
///
/// Returns [`CsdfError::Rational`] when a time value overflows `i128`.
pub(crate) fn emit_buffer_arcs(
    production: &[u64],
    consumption: &[u64],
    initial_tokens: u64,
    producer_durations: &[u64],
    denominator: i128,
    out: &mut Vec<BufferArc>,
) -> Result<(), CsdfError> {
    out.clear();
    for_each_constraint(production, consumption, initial_tokens, |constraint| {
        out.push(BufferArc {
            producer_phase: u32::try_from(constraint.producer_phase)
                .map_err(|_| CsdfError::Overflow)?,
            consumer_phase: u32::try_from(constraint.consumer_phase)
                .map_err(|_| CsdfError::Overflow)?,
            cost: Rational::from_integer(producer_durations[constraint.producer_phase] as i128),
            time: Rational::new(-constraint.beta, denominator).map_err(CsdfError::Rational)?,
        });
        Ok(())
    })
}

/// Duplicates a rate vector `factor` times (the `[v]^P` notation of the
/// paper's Section 3.2).
pub fn duplicate_rates(rates: &[u64], factor: u64) -> Vec<u64> {
    let mut duplicated = Vec::new();
    duplicate_rates_into(&mut duplicated, rates, factor);
    duplicated
}

/// [`duplicate_rates`] into a reused buffer (cleared first): the single
/// implementation of the `[v]^P` tiling behind the task blocks and the
/// arena's rate-expansion scratch.
pub(crate) fn duplicate_rates_into(out: &mut Vec<u64>, rates: &[u64], factor: u64) {
    out.clear();
    out.reserve(
        rates
            .len()
            .saturating_mul(usize::try_from(factor).unwrap_or(usize::MAX)),
    );
    for _ in 0..factor {
        out.extend_from_slice(rates);
    }
}

/// Rounds `value` down to a multiple of `step` (`⌊value⌋^step`).
pub fn floor_to_multiple(value: i128, step: i128) -> i128 {
    debug_assert!(step > 0);
    value.div_euclid(step) * step
}

/// Rounds `value` up to a multiple of `step` (`⌈value⌉^step`).
pub fn ceil_to_multiple(value: i128, step: i128) -> i128 {
    debug_assert!(step > 0);
    -((-value).div_euclid(step)) * step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_helpers() {
        assert_eq!(floor_to_multiple(7, 3), 6);
        assert_eq!(floor_to_multiple(-1, 3), -3);
        assert_eq!(floor_to_multiple(6, 3), 6);
        assert_eq!(ceil_to_multiple(7, 3), 9);
        assert_eq!(ceil_to_multiple(-1, 3), 0);
        assert_eq!(ceil_to_multiple(6, 3), 6);
        assert_eq!(ceil_to_multiple(0, 5), 0);
        assert_eq!(floor_to_multiple(0, 5), 0);
    }

    #[test]
    fn duplicate_rates_repeats_in_order() {
        assert_eq!(duplicate_rates(&[2, 3], 3), vec![2, 3, 2, 3, 2, 3]);
        assert_eq!(duplicate_rates(&[1], 1), vec![1]);
    }

    #[test]
    fn homogeneous_buffer_without_tokens() {
        // Unit rates, no marking: a single constraint with β = 0 forcing the
        // consumer to start after the producer.
        let constraints = phase_constraints(&[1], &[1], 0);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, 0);
        assert_eq!(constraints[0].alpha, 0);
    }

    #[test]
    fn homogeneous_buffer_with_one_token() {
        // One initial token: β = −1, the classic "one iteration of slack".
        let constraints = phase_constraints(&[1], &[1], 1);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, -1);
    }

    #[test]
    fn saturated_buffer_produces_no_constraint() {
        // With two tokens and unit rates, gcd = 1: Q = 1 - 1 - 2 + 1 = -1,
        // α = ⌈-2⌉ = -2 ≤ β = ⌊-2⌋ = -2: the constraint exists but is weak
        // (β = -2). Larger markings keep weakening it, never removing it for
        // gcd = 1, which matches the theorem.
        let constraints = phase_constraints(&[1], &[1], 2);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, -2);
    }

    #[test]
    fn serializing_self_loop_constraints() {
        // A 3-phase task's one-token self-loop: phases chain in order and the
        // last phase of one execution precedes the first of the next.
        let constraints = phase_constraints(&[1, 1, 1], &[1, 1, 1], 1);
        // Expected pairs: (p, p+1) with β = 0 and (last, first) with β = -3.
        assert!(constraints.contains(&PhaseConstraint {
            producer_phase: 0,
            consumer_phase: 1,
            alpha: 0,
            beta: 0,
        }));
        assert!(constraints.contains(&PhaseConstraint {
            producer_phase: 1,
            consumer_phase: 2,
            alpha: 0,
            beta: 0,
        }));
        assert!(constraints.contains(&PhaseConstraint {
            producer_phase: 2,
            consumer_phase: 0,
            alpha: -3,
            beta: -3,
        }));
        assert_eq!(constraints.len(), 3);
    }

    #[test]
    fn figure1_buffer_constraints_are_plausible() {
        // Paper Figure 1: in = [2,3,1], out = [2,5], M0 = 0, gcd = 1.
        let constraints = phase_constraints(&[2, 3, 1], &[2, 5], 0);
        // Every constraint must relate a valid phase pair and respect α ≤ β.
        assert!(!constraints.is_empty());
        for c in &constraints {
            assert!(c.producer_phase < 3);
            assert!(c.consumer_phase < 2);
            assert!(c.alpha <= c.beta);
        }
        // The first consumer phase needs the first producer phase: for
        // (p=1, p'=1): Q = 2 - 2 - 0 + 2 = 2, β = ⌊1⌋ = 1, α = ⌈0⌉ = 0.
        let first = constraints
            .iter()
            .find(|c| c.producer_phase == 0 && c.consumer_phase == 0)
            .expect("constraint (1,1) must exist");
        assert_eq!(first.beta, 1);
        assert_eq!(first.alpha, 0);
    }

    #[test]
    fn gcd_strengthening_removes_redundant_pairs() {
        // Rates 2 -> 2 with zero marking: gcd = 2. Q(1,1) = 2 - 2 - 0 + 2 = 2,
        // α = ⌈0⌉^2 = 0, β = ⌊1⌋^2 = 0 → constraint kept with β = 0.
        let constraints = phase_constraints(&[2], &[2], 0);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, 0);
        // With one token the constraint weakens: Q = 1, α = ⌈-1⌉^2 = 0,
        // β = ⌊0⌋^2 = 0 → still kept, β = 0 (a single token cannot decouple
        // rate-2 transfers).
        let constraints = phase_constraints(&[2], &[2], 1);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, 0);
        // With two tokens (one full transfer ahead) the dependency relaxes by
        // a full period: β = -2.
        let constraints = phase_constraints(&[2], &[2], 2);
        assert_eq!(constraints.len(), 1);
        assert_eq!(constraints[0].beta, -2);
    }

    #[test]
    fn duplicated_vectors_grow_the_constraint_set() {
        let base = phase_constraints(&[1], &[1], 0);
        let duplicated = phase_constraints(&duplicate_rates(&[1], 2), &duplicate_rates(&[1], 2), 0);
        assert_eq!(base.len(), 1);
        assert!(duplicated.len() > base.len());
        for c in &duplicated {
            assert!(c.alpha <= c.beta);
        }
    }
}
