//! The Section-3.2 graph transformation `G → G̃`.
//!
//! Given a periodicity vector `K`, the adjacent vectors of every task `t`
//! (durations, production rates, consumption rates) are duplicated `K_t`
//! times. A 1-periodic schedule of the transformed graph `G̃` is exactly a
//! K-periodic schedule of `G`, with periods related by
//! `Ω_G = Ω_G̃ / lcm(K)` (Theorem 3).

use csdf::{CsdfError, CsdfGraph, CsdfGraphBuilder, RepetitionVector};

use crate::constraints::duplicate_rates;
use crate::periodicity::PeriodicityVector;

/// Builds the transformed graph `G̃` in which the phase vectors of every task
/// `t` are duplicated `K_t` times.
///
/// The transformed graph has the same tasks and buffers as `G`; only the
/// vectors grow: `ϕ̃(t) = K_t · ϕ(t)`, `ĩ_b = K_t · i_b`, `õ_b = K_{t'} · o_b`
/// and the marking is unchanged.
///
/// # Errors
///
/// Returns [`CsdfError::InvalidPeriodicityVector`] when `K` does not match the
/// graph, plus any builder validation error (which cannot occur for a graph
/// built through [`CsdfGraphBuilder`]).
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use kperiodic::{duplicate_phases, PeriodicityVector};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_task("a", vec![1, 2]);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_buffer(a, b, vec![1, 1], vec![2], 0);
/// let graph = builder.build()?;
///
/// let mut k = PeriodicityVector::unitary(&graph);
/// k.set(a, 2)?;
/// let transformed = duplicate_phases(&graph, &k)?;
/// assert_eq!(transformed.task(a).phase_count(), 4);
/// assert_eq!(transformed.buffer(csdf::BufferId::new(0)).production(), &[1, 1, 1, 1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn duplicate_phases(
    graph: &CsdfGraph,
    periodicity: &PeriodicityVector,
) -> Result<CsdfGraph, CsdfError> {
    if periodicity.len() != graph.task_count() {
        return Err(CsdfError::InvalidPeriodicityVector {
            expected: graph.task_count(),
            actual: periodicity.len(),
        });
    }
    let mut builder = CsdfGraphBuilder::named(format!("{}_k", graph.name()));
    for (task_id, task) in graph.tasks() {
        let factor = periodicity.get(task_id);
        builder.add_task(
            task.name().to_string(),
            duplicate_rates(task.durations(), factor),
        );
    }
    for (_, buffer) in graph.buffers() {
        builder.add_buffer(
            buffer.source(),
            buffer.target(),
            duplicate_rates(buffer.production(), periodicity.get(buffer.source())),
            duplicate_rates(buffer.consumption(), periodicity.get(buffer.target())),
            buffer.initial_tokens(),
        );
    }
    builder.build()
}

/// The repetition vector `q̃` of the transformed graph as defined by the
/// paper: `q̃_t = q_t · lcm(K) / K_t`.
///
/// Note that this vector is deliberately **not** reduced to the smallest
/// integer solution of `G̃`'s balance equations — the paper's Theorem 3 period
/// normalisation `Ω_G = Ω_G̃ / lcm(K)` relies on exactly this scaling.
///
/// # Errors
///
/// Returns [`CsdfError::Overflow`] when an entry exceeds `u64` and
/// [`CsdfError::InvalidPeriodicityVector`] on a length mismatch.
pub fn transformed_repetition_vector(
    repetition: &RepetitionVector,
    periodicity: &PeriodicityVector,
) -> Result<RepetitionVector, CsdfError> {
    if repetition.len() != periodicity.len() {
        return Err(CsdfError::InvalidPeriodicityVector {
            expected: repetition.len(),
            actual: periodicity.len(),
        });
    }
    let lcm = periodicity.lcm()?;
    let mut entries = Vec::with_capacity(repetition.len());
    for (index, &q) in repetition.as_slice().iter().enumerate() {
        let k = periodicity.as_slice()[index];
        debug_assert!(lcm % k == 0);
        let value = (q as u128)
            .checked_mul((lcm / k) as u128)
            .ok_or(CsdfError::Overflow)?;
        entries.push(u64::try_from(value).map_err(|_| CsdfError::Overflow)?);
    }
    Ok(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::{CsdfGraphBuilder, TaskId};

    fn sample() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_task("y", vec![2, 1, 1]);
        b.add_buffer(x, y, vec![2, 1], vec![1, 1, 2], 0);
        b.add_buffer(y, x, vec![1, 2, 1], vec![2, 1], 5);
        b.build().unwrap()
    }

    #[test]
    fn duplication_scales_vectors() {
        let g = sample();
        let k = PeriodicityVector::from_entries(&g, vec![3, 2]).unwrap();
        let t = duplicate_phases(&g, &k).unwrap();
        assert_eq!(t.task(TaskId::new(0)).phase_count(), 6);
        assert_eq!(t.task(TaskId::new(1)).phase_count(), 6);
        let forward = t.buffer(csdf::BufferId::new(0));
        assert_eq!(forward.total_production(), 3 * 3);
        assert_eq!(forward.total_consumption(), 2 * 4);
        assert_eq!(forward.initial_tokens(), 0);
        let backward = t.buffer(csdf::BufferId::new(1));
        assert_eq!(backward.initial_tokens(), 5);
    }

    #[test]
    fn transformed_graph_is_consistent() {
        let g = sample();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::from_entries(&g, vec![2, 3]).unwrap();
        let t = duplicate_phases(&g, &k).unwrap();
        assert!(t.is_consistent());
        // The paper's q̃ must satisfy G̃'s balance equations even though it is
        // not necessarily the minimal vector.
        let q_tilde = transformed_repetition_vector(&q, &k).unwrap();
        assert!(q_tilde.validates(&t));
    }

    #[test]
    fn unitary_duplication_is_identity_on_structure() {
        let g = sample();
        let k = PeriodicityVector::unitary(&g);
        let t = duplicate_phases(&g, &k).unwrap();
        assert_eq!(t.task_count(), g.task_count());
        assert_eq!(t.buffer_count(), g.buffer_count());
        assert_eq!(
            t.task(TaskId::new(0)).durations(),
            g.task(TaskId::new(0)).durations()
        );
        let q = g.repetition_vector().unwrap();
        let q_tilde = transformed_repetition_vector(&q, &k).unwrap();
        assert_eq!(q_tilde.as_slice(), q.as_slice());
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let g = sample();
        let mut other_builder = CsdfGraphBuilder::new();
        other_builder.add_sdf_task("only", 1);
        let other = other_builder.build().unwrap();
        let k = PeriodicityVector::unitary(&other);
        assert!(matches!(
            duplicate_phases(&g, &k),
            Err(CsdfError::InvalidPeriodicityVector { .. })
        ));
        let q = g.repetition_vector().unwrap();
        assert!(transformed_repetition_vector(&q, &k).is_err());
    }
}
