//! Long-lived analysis sessions: K-Iter over a graph that mutates in place.
//!
//! Design-space exploration — buffer sizing, marking sweeps, scenario
//! studies — evaluates the *same* graph structure over and over with
//! different token counts. A one-shot [`optimal_throughput`] rebuilds the
//! event-graph arena, the MCR solver scratch and the repetition vector for
//! every point, throwing the incremental machinery away between calls. An
//! [`AnalysisSession`] instead owns the graph and a single
//! [`EvaluationPipeline`] for its whole lifetime: capacity and marking
//! mutations are applied *in place* ([`AnalysisSession::set_capacity`] /
//! [`AnalysisSession::set_initial_tokens`]), and the next
//! [`AnalysisSession::evaluate`] re-derives only the mutated buffers'
//! Theorem-2 arcs (token counts enter the arc weights β, never the
//! event-graph structure) while reusing every block, arc cache, allocation
//! and solver scratch buffer.
//!
//! By default each `evaluate` restarts the periodicity vector from unitary,
//! so its result — throughput, K, iteration count, critical tasks — is
//! **bit-identical** to a cold [`optimal_throughput`] on a copy of the
//! mutated graph (property-tested in `tests/session.rs`); only the work to
//! get there shrinks. [`AnalysisSession::with_warm_start`] opts into seeding
//! K-Iter from the previous solution when every mutation since the last
//! evaluation was a relaxation (capacity/marking increase — the direction in
//! which the previous K remains a sound, useful seed); the throughput is
//! still exact and identical, but K and the iteration count may differ, so
//! it is off by default. Any tightening mutation falls back to the
//! bit-identical cold start automatically.
//!
//! [`optimal_throughput`]: crate::optimal_throughput

use csdf::{BufferId, CsdfGraph, RepetitionVector};

use crate::analysis::{EvaluationPipeline, PipelineStats};
use crate::error::AnalysisError;
use crate::kiter::{kiter_seeded, KIterOptions, KIterResult};
use crate::periodicity::PeriodicityVector;

/// A long-lived throughput-analysis session over one mutable CSDF graph.
///
/// See the [module docs](self) for the contract. The session is the unit of
/// work the `explore` crate's sweep runners hand to each worker thread.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use kperiodic::{AnalysisSession, KIterOptions};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let ping = builder.add_sdf_task("ping", 1);
/// let pong = builder.add_sdf_task("pong", 1);
/// builder.add_sdf_buffer(ping, pong, 1, 1, 0);
/// let feedback = builder.add_sdf_buffer(pong, ping, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let mut session = AnalysisSession::new(graph, KIterOptions::default())?;
/// let one_token = session.evaluate()?.throughput;
/// session.set_initial_tokens(feedback, 2)?;
/// let two_tokens = session.evaluate()?.throughput;
/// assert!(two_tokens > one_token);
/// assert_eq!(session.stats().full_builds, 1); // the second run patched
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct AnalysisSession {
    graph: CsdfGraph,
    repetition: RepetitionVector,
    options: KIterOptions,
    pipeline: EvaluationPipeline,
    warm_start: bool,
    /// Final periodicity vector of the last successful evaluation (the
    /// warm-start seed).
    last_periodicity: Option<PeriodicityVector>,
    /// Whether every mutation since the last evaluation only *relaxed* the
    /// graph (token counts increased) — the direction in which warm-starting
    /// from the previous K is sound.
    relaxed_only: bool,
    solves: usize,
}

impl AnalysisSession {
    /// Creates a session owning `graph`. The repetition vector is computed
    /// once here — marking mutations can never change it, since it depends
    /// only on the rates.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Model`] when the graph is inconsistent or its
    /// repetition vector overflows.
    pub fn new(graph: CsdfGraph, options: KIterOptions) -> Result<Self, AnalysisError> {
        let repetition = graph.repetition_vector()?;
        Ok(AnalysisSession {
            repetition,
            pipeline: EvaluationPipeline::new(options.analysis),
            graph,
            options,
            warm_start: false,
            last_periodicity: None,
            relaxed_only: true,
            solves: 0,
        })
    }

    /// Enables (or disables) warm-starting K-Iter from the previous
    /// solution after relaxation-only mutation batches. Off by default: with
    /// it on, throughput stays exact and equal to a cold run's, but the
    /// converged K and iteration count may differ.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// The graph in its current (possibly mutated) state.
    pub fn graph(&self) -> &CsdfGraph {
        &self.graph
    }

    /// The repetition vector (computed once at session creation).
    pub fn repetition(&self) -> &RepetitionVector {
        &self.repetition
    }

    /// The structure fingerprint of the session's graph (see
    /// [`structure_fingerprint`](crate::structure_fingerprint)). Marking
    /// mutations never change it, so it is stable for the whole session
    /// lifetime — the key a [`SessionPool`](crate::SessionPool) files this
    /// session under.
    pub fn structure_fingerprint(&self) -> u64 {
        crate::arena::graph_fingerprint(&self.graph)
    }

    /// Re-targets the session at `graph`'s initial markings: every buffer
    /// whose marking differs is mutated in place, so the next evaluation
    /// re-derives exactly those buffers' constraint arcs and reuses
    /// everything else. Returns the number of buffers re-marked.
    ///
    /// `graph` must be *structurally* identical to the session's graph (same
    /// tasks, durations, buffer endpoints and rates — the
    /// [`AnalysisSession::structure_fingerprint`] contract); this is how a
    /// [`SessionPool`](crate::SessionPool) lands a client's graph on a warm
    /// arena.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::ArenaGraphMismatch`] when `graph` differs
    /// structurally from the session's graph (the session is unchanged).
    pub fn adopt_markings(&mut self, graph: &CsdfGraph) -> Result<usize, AnalysisError> {
        if self.graph.task_count() != graph.task_count()
            || self.graph.buffer_count() != graph.buffer_count()
            || self.structure_fingerprint() != crate::arena::graph_fingerprint(graph)
        {
            return Err(AnalysisError::ArenaGraphMismatch);
        }
        let mut adopted = 0usize;
        for (buffer, target) in graph.buffers() {
            if self.graph.buffer(buffer).initial_tokens() != target.initial_tokens() {
                self.set_initial_tokens(buffer, target.initial_tokens())?;
                adopted += 1;
            }
        }
        Ok(adopted)
    }

    /// The options every evaluation runs with.
    pub fn options(&self) -> &KIterOptions {
        &self.options
    }

    /// Cumulative pipeline statistics over all evaluations of this session —
    /// the construction/solve split sweeps report.
    pub fn stats(&self) -> &PipelineStats {
        self.pipeline.stats()
    }

    /// Number of completed [`AnalysisSession::evaluate`] calls.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Installs a cancellation token on the session's pipeline (see
    /// [`EvaluationPipeline::set_cancel_token`]): subsequent evaluations bail
    /// out with
    /// [`AnalysisError::DeadlineExceeded`](crate::AnalysisError::DeadlineExceeded)
    /// once the token cancels or its deadline passes. The session stays
    /// usable afterwards; pass [`mcr::CancelToken::default`] to detach.
    pub fn set_cancel_token(&mut self, token: mcr::CancelToken) {
        self.pipeline.set_cancel_token(token);
    }

    /// Replaces the initial marking of one buffer in place, returning the
    /// previous value. The next evaluation re-derives only this buffer's
    /// constraint arcs.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Model`] for an unknown buffer id.
    pub fn set_initial_tokens(
        &mut self,
        buffer: BufferId,
        tokens: u64,
    ) -> Result<u64, AnalysisError> {
        let previous = self.graph.set_initial_tokens(buffer, tokens)?;
        if tokens < previous {
            self.relaxed_only = false;
        }
        Ok(previous)
    }

    /// Re-sizes a bounded buffer in place, returning the previous capacity.
    /// `reverse` must be the back-pressure buffer modelling `forward`'s
    /// capacity (the pairing recorded by
    /// [`csdf::transform::bound_buffers_tracked`]); the mutation reduces to
    /// a marking change on the reverse buffer, so the next evaluation
    /// re-derives only that buffer's constraint arcs.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Model`] for unknown ids, a non-mirroring pair, or a
    /// capacity below the forward buffer's marking.
    pub fn set_capacity(
        &mut self,
        forward: BufferId,
        reverse: BufferId,
        capacity: u64,
    ) -> Result<u64, AnalysisError> {
        let previous = self.graph.set_capacity(forward, reverse, capacity)?;
        if capacity < previous {
            self.relaxed_only = false;
        }
        Ok(previous)
    }

    /// Evaluates the maximum throughput of the graph in its current state.
    ///
    /// Cold-start semantics by default: the result is bit-identical — same
    /// throughput, periodicity vector, iteration count and critical tasks —
    /// to [`optimal_throughput`](crate::optimal_throughput) on a copy of the
    /// current graph, while the event-graph arena and solver scratch carry
    /// over from previous evaluations. With
    /// [`AnalysisSession::with_warm_start`] and a relaxation-only mutation
    /// batch, K-Iter is seeded from the previous solution instead.
    ///
    /// # Errors
    ///
    /// Same as [`optimal_throughput`](crate::optimal_throughput). After an
    /// error the session stays usable; the next evaluation rebuilds the
    /// arena from scratch.
    pub fn evaluate(&mut self) -> Result<KIterResult, AnalysisError> {
        let initial = match &self.last_periodicity {
            Some(previous) if self.warm_start && self.relaxed_only => previous.clone(),
            _ => PeriodicityVector::unitary(&self.graph),
        };
        let result = kiter_seeded(
            &self.graph,
            &self.repetition,
            &self.options,
            &mut self.pipeline,
            initial,
        )?;
        self.last_periodicity = Some(result.periodicity.clone());
        self.relaxed_only = true;
        self.solves += 1;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisOptions;
    use crate::kiter::{kiter_with_options, optimal_throughput};
    use csdf::transform::bound_all_buffers_tracked;
    use csdf::{CsdfGraphBuilder, Throughput};

    /// A multirate ring whose optimality test fails at K = 1 when the
    /// feedback marking is 3 (the critical circuit mixes both tasks), so
    /// K-Iter genuinely iterates.
    fn multirate_ring(tokens: u64) -> (CsdfGraph, BufferId) {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        let feedback = b.add_sdf_buffer(y, x, 1, 2, tokens);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        (b.build().unwrap(), feedback)
    }

    #[test]
    fn session_matches_cold_evaluations_across_mutations() {
        let (graph, feedback) = multirate_ring(3);
        let mut session = AnalysisSession::new(graph.clone(), KIterOptions::default()).unwrap();
        // Both directions, including a deadlocking marking.
        for tokens in [4u64, 8, 1, 0, 3] {
            session.set_initial_tokens(feedback, tokens).unwrap();
            let from_session = session.evaluate().unwrap();
            let mut cold_graph = graph.clone();
            cold_graph.set_initial_tokens(feedback, tokens).unwrap();
            let cold = kiter_with_options(&cold_graph, &KIterOptions::default()).unwrap();
            assert_eq!(from_session, cold, "tokens = {tokens}");
        }
        assert_eq!(
            session.stats().full_builds,
            1,
            "only the first evaluation builds"
        );
        assert_eq!(session.solves(), 5);
    }

    #[test]
    fn warm_start_keeps_the_throughput_and_falls_back_on_tightening() {
        let (graph, feedback) = multirate_ring(3);
        let mut session = AnalysisSession::new(graph.clone(), KIterOptions::default())
            .unwrap()
            .with_warm_start(true);
        let first = session.evaluate().unwrap();
        assert!(first.iterations > 1, "ring needs K growth, else no warm-up");

        // Relaxation: warm start may shortcut iterations, throughput exact.
        session.set_initial_tokens(feedback, 8).unwrap();
        let warm = session.evaluate().unwrap();
        let mut relaxed = graph.clone();
        relaxed.set_initial_tokens(feedback, 8).unwrap();
        let cold = optimal_throughput(&relaxed).unwrap();
        assert_eq!(warm.throughput, cold.throughput);

        // Tightening: the session must fall back to a cold start and be
        // bit-identical again.
        session.set_initial_tokens(feedback, 2).unwrap();
        let fallback = session.evaluate().unwrap();
        let mut tightened = graph.clone();
        tightened.set_initial_tokens(feedback, 2).unwrap();
        assert_eq!(fallback, optimal_throughput(&tightened).unwrap());
    }

    #[test]
    fn capacity_mutations_drive_a_bounded_design() {
        let (graph, _) = multirate_ring(4);
        let bounded = bound_all_buffers_tracked(&graph, |_, b| {
            2 * (b.total_production() + b.total_consumption())
        })
        .unwrap();
        let pairs: Vec<_> = bounded.bounded_pairs().collect();
        assert!(!pairs.is_empty());
        let mut session =
            AnalysisSession::new(bounded.graph().clone(), KIterOptions::default()).unwrap();

        let mut previous = Throughput::Deadlocked;
        for slack in [1u64, 2, 4] {
            for &(forward, reverse) in &pairs {
                let buffer = session.graph().buffer(forward);
                let capacity = slack * (buffer.total_production() + buffer.total_consumption());
                session
                    .set_capacity(forward, reverse, capacity.max(buffer.initial_tokens()))
                    .unwrap();
            }
            let result = session.evaluate().unwrap();
            assert!(
                result.throughput >= previous,
                "throughput must be monotone in capacity"
            );
            previous = result.throughput;
        }
        // Everything after the first build was an in-place patch.
        assert_eq!(session.stats().full_builds, 1);
        assert_eq!(session.stats().patched + 1, session.stats().evaluations);
    }

    #[test]
    fn sessions_survive_evaluation_errors() {
        let (graph, feedback) = multirate_ring(3);
        let options = KIterOptions {
            analysis: AnalysisOptions {
                max_iterations: 1,
                ..AnalysisOptions::default()
            },
            ..KIterOptions::default()
        };
        let mut session = AnalysisSession::new(graph.clone(), options).unwrap();
        // One iteration is not enough for the multirate ring.
        assert!(matches!(
            session.evaluate(),
            Err(AnalysisError::IterationLimitReached { .. })
        ));
        // Relax the marking and the session keeps working.
        session.set_initial_tokens(feedback, 64).unwrap();
        let mut relaxed = graph.clone();
        relaxed.set_initial_tokens(feedback, 64).unwrap();
        match session.evaluate() {
            Ok(result) => {
                assert_eq!(
                    result,
                    kiter_with_options(&relaxed, session.options()).unwrap()
                );
            }
            Err(AnalysisError::IterationLimitReached { .. }) => {}
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
}
