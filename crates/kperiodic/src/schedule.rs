//! Extraction and validation of explicit K-periodic schedules.
//!
//! Once the minimum period `Ω*_{G̃}` is known, explicit starting times for the
//! first `K_t` executions of every task are obtained by a longest-path
//! computation over the event graph with arc weights `L(e) − Ω·H(e)` (all
//! circuits have non-positive weight at the optimum, so the longest walks are
//! finite). The remaining executions repeat with the per-task period
//! `µ_t = Ω_G · K_t / q_t`.

use csdf::{CsdfGraph, Rational, RepetitionVector, TaskId};

use crate::analysis::{AnalysisOptions, EvaluationOutcome};
use crate::error::AnalysisError;
use crate::event_graph::EventGraph;
use crate::periodicity::PeriodicityVector;

/// An explicit K-periodic schedule: starting times for the first `K_t`
/// executions of every phase of every task, plus the per-task periods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KPeriodicSchedule {
    periodicity: PeriodicityVector,
    period: Rational,
    task_periods: Vec<Rational>,
    phase_counts: Vec<usize>,
    starts: Vec<Vec<Rational>>,
    durations: Vec<Vec<u64>>,
}

impl KPeriodicSchedule {
    /// Computes a minimum-period K-periodic schedule of `graph` for the given
    /// periodicity vector.
    ///
    /// Returns `None` when no K-periodic schedule exists for this vector
    /// (infeasible) or when nothing constrains the period (unbounded
    /// throughput; there is no well-defined minimum period to schedule at).
    ///
    /// # Errors
    ///
    /// Propagates the errors of the fixed-K evaluation.
    pub fn compute(
        graph: &CsdfGraph,
        periodicity: &PeriodicityVector,
        options: &AnalysisOptions,
    ) -> Result<Option<Self>, AnalysisError> {
        let repetition = graph.repetition_vector()?;
        let evaluation =
            crate::analysis::evaluate_with_repetition(graph, &repetition, periodicity, options)?;
        let EvaluationOutcome::Feasible { period, .. } = evaluation.outcome else {
            return Ok(None);
        };

        let event_graph = EventGraph::build(graph, &repetition, periodicity, &options.limits)?;
        // The event graph stores lcm-free times, so the matching period for
        // the longest-path weights is the *normalised* one (Ω·H is invariant
        // under the common rescaling).
        let starts_flat = longest_path_starts(&event_graph, period)?;

        let mut starts = Vec::with_capacity(graph.task_count());
        let mut durations = Vec::with_capacity(graph.task_count());
        let mut task_periods = Vec::with_capacity(graph.task_count());
        let mut phase_counts = Vec::with_capacity(graph.task_count());
        for (task_id, task) in graph.tasks() {
            let count = event_graph.phase_count_of(task_id);
            let mut task_starts = Vec::with_capacity(count);
            let mut task_durations = Vec::with_capacity(count);
            for phase in 0..count {
                let node = event_graph.node_of(task_id, phase);
                task_starts.push(starts_flat[node.index()]);
                task_durations.push(event_graph.duration_of(task_id, phase));
            }
            // µ_t = Ω_G · K_t / q_t
            let mu = period
                .checked_mul(&Rational::from_integer(periodicity.get(task_id) as i128))?
                .checked_div(&Rational::from_integer(repetition.get(task_id) as i128))?;
            task_periods.push(mu);
            phase_counts.push(task.phase_count());
            starts.push(task_starts);
            durations.push(task_durations);
        }

        Ok(Some(KPeriodicSchedule {
            periodicity: periodicity.clone(),
            period,
            task_periods,
            phase_counts,
            starts,
            durations,
        }))
    }

    /// The normalised period `Ω_G` of the schedule.
    pub fn period(&self) -> Rational {
        self.period
    }

    /// The periodicity vector the schedule was built for.
    pub fn periodicity(&self) -> &PeriodicityVector {
        &self.periodicity
    }

    /// The per-task period `µ_t`.
    pub fn task_period(&self, task: TaskId) -> Rational {
        self.task_periods[task.index()]
    }

    /// Starting time of `⟨t_{phase+1}, n⟩`: execution number `n` (1-based) of
    /// the 0-based `phase` of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task`/`phase` is out of range or `n` is zero.
    pub fn start(&self, task: TaskId, phase: usize, n: u64) -> Rational {
        assert!(n >= 1, "executions are numbered from 1");
        assert!(
            phase < self.phase_counts[task.index()],
            "phase index out of range"
        );
        self.start_inner(task, phase, n)
    }

    /// Duration of the 0-based `phase` of `task`.
    pub fn duration(&self, task: TaskId, phase: usize) -> u64 {
        self.durations[task.index()][phase % self.phase_counts[task.index()]]
    }

    /// Verifies that the schedule keeps every buffer of `graph` non-negative
    /// over `iterations` graph iterations by replaying all read and write
    /// events in time order (completions before starts at equal instants, as
    /// in the paper's feasibility definition).
    pub fn validate(&self, graph: &CsdfGraph, iterations: u64) -> bool {
        let Ok(repetition) = graph.repetition_vector() else {
            return false;
        };
        validate_events(self, graph, &repetition, iterations)
    }

    /// Renders a small ASCII Gantt chart of the first `horizon` time units,
    /// mirroring the paper's Figures 3 and 4.
    pub fn ascii_gantt(&self, graph: &CsdfGraph, horizon: u64) -> String {
        let mut out = String::new();
        for (task_id, task) in graph.tasks() {
            let mut line = vec![b'.'; horizon as usize];
            let k = self.periodicity.get(task_id);
            let phases = task.phase_count();
            let mut n = 1u64;
            'outer: loop {
                for phase in 0..phases {
                    let start = self.start_inner(task_id, phase, n);
                    let duration =
                        self.durations[task_id.index()][((n - 1) % k) as usize * phases + phase];
                    let begin = start.to_f64().round() as i64;
                    if begin >= horizon as i64 {
                        if phase == 0 {
                            break 'outer;
                        }
                        continue;
                    }
                    let label = phase_label(phase);
                    for offset in 0..duration.max(1) {
                        let column = begin + offset as i64;
                        if (0..horizon as i64).contains(&column) {
                            line[column as usize] = label;
                        }
                    }
                }
                n += 1;
                if n > 10_000 {
                    break;
                }
            }
            out.push_str(&format!(
                "{:>8} |{}\n",
                task.name(),
                String::from_utf8_lossy(&line)
            ));
        }
        out
    }

    fn start_inner(&self, task: TaskId, phase: usize, n: u64) -> Rational {
        let phases = self.phase_counts[task.index()];
        let k = self.periodicity.get(task);
        let alpha = (n - 1) / k;
        let beta = (n - 1) % k;
        let base = self.starts[task.index()][beta as usize * phases + phase];
        let mu = self.task_periods[task.index()];
        let offset = mu
            .checked_mul(&Rational::from_integer(alpha as i128))
            .expect("schedule offsets stay within i128");
        base.checked_add(&offset)
            .expect("schedule offsets stay within i128")
    }
}

fn phase_label(phase: usize) -> u8 {
    const LABELS: &[u8] = b"123456789abcdefghijklmnopqrstuvwxyz";
    LABELS[phase % LABELS.len()]
}

/// Longest-path starting times over the event graph at period `omega`.
fn longest_path_starts(
    event_graph: &EventGraph,
    omega: Rational,
) -> Result<Vec<Rational>, AnalysisError> {
    let ratio = event_graph.ratio_graph();
    let n = ratio.node_count();
    let mut distance = vec![Rational::ZERO; n];
    // Weights w(e) = L(e) − Ω·H(e); at the minimum period no circuit has
    // positive weight, so n−1 relaxation rounds converge.
    let mut weights = Vec::with_capacity(ratio.arc_count());
    for (_, arc) in ratio.arcs() {
        let weight = arc.cost.checked_sub(&omega.checked_mul(&arc.time)?)?;
        weights.push((arc.from.index(), arc.to.index(), weight));
    }
    for _ in 0..n {
        let mut improved = false;
        for &(from, to, weight) in &weights {
            let candidate = distance[from].checked_add(&weight)?;
            if candidate > distance[to] {
                distance[to] = candidate;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Ok(distance)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    // Completions (writes) are replayed before starts (reads) at equal times.
    Write,
    Read,
}

fn validate_events(
    schedule: &KPeriodicSchedule,
    graph: &CsdfGraph,
    repetition: &RepetitionVector,
    iterations: u64,
) -> bool {
    // (time, kind, buffer, amount)
    let mut events: Vec<(Rational, EventKind, usize, i128)> = Vec::new();
    for (task_id, task) in graph.tasks() {
        let executions = repetition.get(task_id) * iterations;
        for n in 1..=executions {
            for phase in 0..task.phase_count() {
                let start = schedule.start_inner(task_id, phase, n);
                let Ok(end) =
                    start.checked_add(&Rational::from_integer(task.duration(phase) as i128))
                else {
                    return false;
                };
                for &buffer_id in graph.incoming(task_id) {
                    let buffer = graph.buffer(buffer_id);
                    let amount = buffer.consumption_at(phase) as i128;
                    if amount > 0 {
                        events.push((start, EventKind::Read, buffer_id.index(), amount));
                    }
                }
                for &buffer_id in graph.outgoing(task_id) {
                    let buffer = graph.buffer(buffer_id);
                    let amount = buffer.production_at(phase) as i128;
                    if amount > 0 {
                        events.push((end, EventKind::Write, buffer_id.index(), amount));
                    }
                }
            }
        }
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut levels: Vec<i128> = graph
        .buffers()
        .map(|(_, b)| b.initial_tokens() as i128)
        .collect();
    for (_, kind, buffer, amount) in events {
        match kind {
            EventKind::Write => levels[buffer] += amount,
            EventKind::Read => {
                levels[buffer] -= amount;
                if levels[buffer] < 0 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kiter::optimal_throughput;
    use csdf::CsdfGraphBuilder;

    fn ring() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 2);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn schedule_matches_the_evaluated_period() {
        let g = ring();
        let k = PeriodicityVector::unitary(&g);
        let schedule = KPeriodicSchedule::compute(&g, &k, &AnalysisOptions::default())
            .unwrap()
            .expect("feasible");
        assert_eq!(schedule.period(), Rational::from_integer(3));
        assert_eq!(
            schedule.task_period(TaskId::new(0)),
            Rational::from_integer(3)
        );
        assert!(schedule.periodicity().is_unitary());
    }

    #[test]
    fn starts_respect_precedence() {
        let g = ring();
        let k = PeriodicityVector::unitary(&g);
        let schedule = KPeriodicSchedule::compute(&g, &k, &AnalysisOptions::default())
            .unwrap()
            .unwrap();
        let x = TaskId::new(0);
        let y = TaskId::new(1);
        // y's n-th execution reads the token produced by x's n-th execution.
        for n in 1..=5 {
            let x_end = schedule
                .start_inner(x, 0, n)
                .checked_add(&Rational::from_integer(1))
                .unwrap();
            assert!(schedule.start_inner(y, 0, n) >= x_end);
        }
        assert_eq!(schedule.duration(y, 0), 2);
    }

    #[test]
    fn schedule_validates_against_buffer_levels() {
        let g = ring();
        let k = PeriodicityVector::unitary(&g);
        let schedule = KPeriodicSchedule::compute(&g, &k, &AnalysisOptions::default())
            .unwrap()
            .unwrap();
        assert!(schedule.validate(&g, 8));
    }

    #[test]
    fn optimal_periodicity_schedules_validate_too() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 2, 4);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let result = optimal_throughput(&g).unwrap();
        let schedule =
            KPeriodicSchedule::compute(&g, &result.periodicity, &AnalysisOptions::default())
                .unwrap()
                .unwrap();
        assert_eq!(Some(schedule.period()), result.period());
        assert!(schedule.validate(&g, 6));
    }

    #[test]
    fn infeasible_vectors_produce_no_schedule() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        let k = PeriodicityVector::unitary(&g);
        assert_eq!(
            KPeriodicSchedule::compute(&g, &k, &AnalysisOptions::default()).unwrap(),
            None
        );
    }

    #[test]
    fn gantt_contains_task_names() {
        let g = ring();
        let k = PeriodicityVector::unitary(&g);
        let schedule = KPeriodicSchedule::compute(&g, &k, &AnalysisOptions::default())
            .unwrap()
            .unwrap();
        let gantt = schedule.ascii_gantt(&g, 12);
        assert!(gantt.contains('x'));
        assert!(gantt.contains('y'));
        assert!(gantt.lines().count() >= 2);
    }
}
