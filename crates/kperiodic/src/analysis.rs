//! Fixed-K throughput evaluation.
//!
//! Given a periodicity vector `K`, the minimum period of a K-periodic
//! schedule is the maximum cost-to-time ratio of the event graph (Sections
//! 3.2–3.3 of the paper). This module wraps that pipeline — event-graph
//! construction, MCRP resolution, Theorem-3 normalisation — into
//! [`evaluate_k_periodic`] and the 1-periodic convenience
//! [`evaluate_periodic`].

use csdf::{CsdfGraph, Rational, RepetitionVector, TaskId, Throughput};
use mcr::{CycleRatioOutcome, Solver, SolverChoice};

use crate::error::AnalysisError;
use crate::event_graph::{EventGraph, EventGraphLimits};
use crate::periodicity::PeriodicityVector;

/// Options shared by the fixed-K evaluation and the K-Iter loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Limits on the size of the event graphs that may be built.
    pub limits: EventGraphLimits,
    /// Maximum number of K-Iter iterations (ignored by fixed-K evaluation).
    pub max_iterations: usize,
    /// Which maximum cycle ratio algorithm solves the event graphs
    /// ([`SolverChoice::Auto`] picks Howard's policy iteration for large
    /// components, which is what makes buffer-sized instances tractable).
    pub solver: SolverChoice,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            limits: EventGraphLimits::default(),
            max_iterations: 256,
            solver: SolverChoice::Auto,
        }
    }
}

/// What the fixed-K evaluation concluded for the given periodicity vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluationOutcome {
    /// A K-periodic schedule exists; the fields give its minimum period.
    Feasible {
        /// Minimum period of the transformed graph `G̃` (the raw maximum
        /// cost-to-time ratio `Ω*_{G̃}`).
        transformed_period: Rational,
        /// Normalised period `Ω_G = Ω*_{G̃} / lcm(K)` of the original graph.
        period: Rational,
        /// The throughput `1 / Ω_G` this schedule guarantees (a lower bound
        /// of the maximum throughput, tight when the optimality test passes).
        throughput: Throughput,
        /// Tasks appearing on the critical circuit.
        critical_tasks: Vec<TaskId>,
    },
    /// No K-periodic schedule exists for this periodicity vector (a circuit
    /// of the event graph has non-positive total time). Larger periodicity
    /// values may still admit a schedule.
    Infeasible {
        /// Tasks appearing on the offending circuit.
        critical_tasks: Vec<TaskId>,
    },
    /// The event graph has no circuit with positive ratio: nothing bounds the
    /// period and the throughput is unbounded (this happens for graphs
    /// without feedback when tasks are not serialised).
    Unconstrained,
}

/// Result of a fixed-K evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KPeriodicEvaluation {
    /// The periodicity vector that was evaluated.
    pub periodicity: PeriodicityVector,
    /// Size of the event graph that was solved (nodes, arcs).
    pub event_graph_size: (usize, usize),
    /// The conclusion.
    pub outcome: EvaluationOutcome,
}

impl KPeriodicEvaluation {
    /// The throughput guaranteed by this evaluation: finite for feasible
    /// outcomes, [`Throughput::Deadlocked`] for infeasible ones (pessimistic:
    /// a larger K may still be feasible), [`Throughput::Unbounded`] when the
    /// period is unconstrained.
    pub fn throughput(&self) -> Throughput {
        match &self.outcome {
            EvaluationOutcome::Feasible { throughput, .. } => *throughput,
            EvaluationOutcome::Infeasible { .. } => Throughput::Deadlocked,
            EvaluationOutcome::Unconstrained => Throughput::Unbounded,
        }
    }

    /// The normalised period, when the outcome is feasible.
    pub fn period(&self) -> Option<Rational> {
        match &self.outcome {
            EvaluationOutcome::Feasible { period, .. } => Some(*period),
            _ => None,
        }
    }
}

/// Evaluates the minimum period of a K-periodic schedule for a fixed `K`.
///
/// # Errors
///
/// Propagates model errors (inconsistency, overflow, invalid `K`), solver
/// errors and event-graph size violations.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use kperiodic::{evaluate_k_periodic, AnalysisOptions, PeriodicityVector, EvaluationOutcome};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let ping = builder.add_sdf_task("ping", 1);
/// let pong = builder.add_sdf_task("pong", 1);
/// builder.add_sdf_buffer(ping, pong, 1, 1, 0);
/// builder.add_sdf_buffer(pong, ping, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let k = PeriodicityVector::unitary(&graph);
/// let evaluation = evaluate_k_periodic(&graph, &k, &AnalysisOptions::default())?;
/// match evaluation.outcome {
///     EvaluationOutcome::Feasible { period, .. } => {
///         assert_eq!(period, csdf::Rational::from_integer(2));
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate_k_periodic(
    graph: &CsdfGraph,
    periodicity: &PeriodicityVector,
    options: &AnalysisOptions,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    let repetition = graph.repetition_vector()?;
    evaluate_with_repetition(graph, &repetition, periodicity, options)
}

/// Same as [`evaluate_k_periodic`] but reuses an already computed repetition
/// vector (the K-Iter loop calls this on every iteration).
pub fn evaluate_with_repetition(
    graph: &CsdfGraph,
    repetition: &RepetitionVector,
    periodicity: &PeriodicityVector,
    options: &AnalysisOptions,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    let mut solver = Solver::new(options.solver);
    evaluate_with_solver(graph, repetition, periodicity, options, &mut solver)
}

/// Same as [`evaluate_with_repetition`] but reuses a caller-provided
/// [`Solver`], so its scratch buffers survive across evaluations — the K-Iter
/// loop keeps a single solver for its whole run.
pub fn evaluate_with_solver(
    graph: &CsdfGraph,
    repetition: &RepetitionVector,
    periodicity: &PeriodicityVector,
    options: &AnalysisOptions,
    solver: &mut Solver,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    let event_graph = EventGraph::build(graph, repetition, periodicity, &options.limits)?;
    let outcome = match solver.solve(event_graph.ratio_graph())? {
        CycleRatioOutcome::Acyclic | CycleRatioOutcome::NonPositive => {
            EvaluationOutcome::Unconstrained
        }
        CycleRatioOutcome::Infinite { cycle } => EvaluationOutcome::Infeasible {
            critical_tasks: event_graph.tasks_on_cycle(&cycle).into_iter().collect(),
        },
        CycleRatioOutcome::Finite { ratio, cycle } => {
            let lcm = Rational::from_integer(event_graph.lcm_k() as i128);
            let period = ratio.checked_div(&lcm)?;
            EvaluationOutcome::Feasible {
                transformed_period: ratio,
                period,
                throughput: Throughput::from_period(period)?,
                critical_tasks: event_graph.tasks_on_cycle(&cycle).into_iter().collect(),
            }
        }
    };
    Ok(KPeriodicEvaluation {
        periodicity: periodicity.clone(),
        event_graph_size: (event_graph.node_count(), event_graph.arc_count()),
        outcome,
    })
}

/// Evaluates the minimum period of an ordinary (1-)periodic schedule — the
/// approximate method the paper compares against (reference [4]).
///
/// # Errors
///
/// Same as [`evaluate_k_periodic`].
pub fn evaluate_periodic(
    graph: &CsdfGraph,
    options: &AnalysisOptions,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    evaluate_k_periodic(graph, &PeriodicityVector::unitary(graph), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn ring_with_tokens(tokens: u64) -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 3);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, tokens);
        b.build().unwrap()
    }

    #[test]
    fn hsdf_ring_periods() {
        // One token: executions strictly alternate, period 5.
        let one = evaluate_periodic(&ring_with_tokens(1), &AnalysisOptions::default()).unwrap();
        assert_eq!(one.period(), Some(Rational::from_integer(5)));
        // Two tokens: period 5/2 per iteration... the cycle ratio is (2+3)/2.
        let two = evaluate_periodic(&ring_with_tokens(2), &AnalysisOptions::default()).unwrap();
        assert_eq!(two.period(), Some(Rational::new(5, 2).unwrap()));
        assert!(two.throughput() > one.throughput());
        assert_eq!(one.event_graph_size.0, 2);
    }

    #[test]
    fn deadlocked_ring_is_infeasible() {
        // Zero tokens on a cycle: no schedule whatsoever.
        let evaluation =
            evaluate_periodic(&ring_with_tokens(0), &AnalysisOptions::default()).unwrap();
        match evaluation.outcome {
            EvaluationOutcome::Infeasible { ref critical_tasks } => {
                assert_eq!(critical_tasks.len(), 2);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evaluation.throughput(), Throughput::Deadlocked);
        assert_eq!(evaluation.period(), None);
    }

    #[test]
    fn acyclic_graph_is_unconstrained() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        let g = b.build().unwrap();
        let evaluation = evaluate_periodic(&g, &AnalysisOptions::default()).unwrap();
        assert_eq!(evaluation.outcome, EvaluationOutcome::Unconstrained);
        assert_eq!(evaluation.throughput(), Throughput::Unbounded);
    }

    #[test]
    fn larger_k_never_hurts() {
        // For a multirate ring, K-periodic schedules are at least as good as
        // periodic ones.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 2, 4);
        let g = b.build().unwrap();
        let options = AnalysisOptions::default();
        let unitary = evaluate_periodic(&g, &options).unwrap();
        let q = g.repetition_vector().unwrap();
        let full = evaluate_k_periodic(&g, &PeriodicityVector::full(&q), &options).unwrap();
        assert!(full.throughput() >= unitary.throughput());
    }

    #[test]
    fn cyclo_static_phases_spread_the_work() {
        // A CSDF producer that alternates between bursts of 2 and 0 tokens.
        // Without self-loops nothing orders the phases of `x`, so no circuit
        // bounds the period; once the tasks are serialised the evaluation
        // produces a finite period.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![2, 0], vec![1], 0);
        b.add_buffer(y, x, vec![1], vec![0, 2], 2);
        let unserialized = b.build().unwrap();
        let evaluation = evaluate_periodic(&unserialized, &AnalysisOptions::default()).unwrap();
        assert_eq!(evaluation.outcome, EvaluationOutcome::Unconstrained);

        let serialized = csdf::transform::serialize_tasks(&unserialized).unwrap();
        let evaluation = evaluate_periodic(&serialized, &AnalysisOptions::default()).unwrap();
        assert!(matches!(
            evaluation.outcome,
            EvaluationOutcome::Feasible { .. }
        ));
    }
}
