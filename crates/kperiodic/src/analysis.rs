//! Fixed-K throughput evaluation.
//!
//! Given a periodicity vector `K`, the minimum period of a K-periodic
//! schedule is the maximum cost-to-time ratio of the event graph (Sections
//! 3.2–3.3 of the paper). Two paths are provided:
//!
//! * the stable one-shot functions [`evaluate_k_periodic`] /
//!   [`evaluate_periodic`] / [`evaluate_with_solver`], which build a fresh
//!   event graph per call;
//! * [`EvaluationPipeline`], the mutable pipeline the K-Iter loop threads
//!   through its iterations: it owns the [`EventGraphArena`] and the MCR
//!   [`Solver`], builds the event graph once, and patches it in place for
//!   every subsequent periodicity vector (only the dirty tasks' blocks and
//!   their incident buffers' arcs are re-derived).
//!
//! Both paths produce bit-identical ratio graphs and identical outcomes.

use std::time::{Duration, Instant};

use csdf::{CsdfGraph, Rational, RepetitionVector, TaskId, Throughput};
use mcr::{CancelToken, CycleRatioOutcome, Solver, SolverChoice};

use crate::arena::EventGraphArena;
use crate::error::AnalysisError;
use crate::event_graph::{EventGraph, EventGraphLimits};
use crate::periodicity::PeriodicityVector;

/// Options shared by the fixed-K evaluation and the K-Iter loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Limits on the size of the event graphs that may be built.
    pub limits: EventGraphLimits,
    /// Maximum number of K-Iter iterations (ignored by fixed-K evaluation).
    pub max_iterations: usize,
    /// Which maximum cycle ratio algorithm solves the event graphs
    /// ([`SolverChoice::Auto`] picks Howard's policy iteration for large
    /// components, which is what makes buffer-sized instances tractable).
    pub solver: SolverChoice,
    /// Number of worker threads the MCR solver may use (`std::thread::scope`
    /// workers; `0` is treated as `1`), at two levels: independent cyclic
    /// strongly connected components are solved in parallel, and at `>= 2`
    /// the Howard/certifier sweeps *inside* each component run on the
    /// chunked kernels (`mcr::chunked`) — which is what helps on the
    /// one-giant-SCC event graphs large strongly connected apps produce.
    /// Results are byte-identical for every value: per-component outcomes
    /// merge deterministically and the chunked kernels reproduce the serial
    /// sweep order exactly. `1` is byte-for-byte the serial solver.
    pub threads: usize,
    /// Run the `csdf-lint` static analyzer before building an event graph
    /// and fail fast with [`AnalysisError::RejectedByLint`] on any
    /// error-severity diagnostic (inconsistency, certain deadlock, capacity
    /// contradiction, ...). The gate runs when the pipeline (re)builds its
    /// arena — once per graph structure, not per K-Iter iteration. Off by
    /// default: deadlocked graphs are a legitimate solver answer
    /// ([`csdf::Throughput::Deadlocked`]) unless the caller opts into
    /// rejecting them early.
    pub pre_lint: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            limits: EventGraphLimits::default(),
            max_iterations: 256,
            solver: SolverChoice::Auto,
            threads: 1,
            pre_lint: false,
        }
    }
}

/// What the fixed-K evaluation concluded for the given periodicity vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvaluationOutcome {
    /// A K-periodic schedule exists; the fields give its minimum period.
    Feasible {
        /// Minimum period of the transformed graph `G̃` (the paper's raw
        /// maximum cost-to-time ratio `Ω*_{G̃} = Ω_G · lcm(K)`).
        transformed_period: Rational,
        /// Normalised period `Ω_G` of the original graph.
        period: Rational,
        /// The throughput `1 / Ω_G` this schedule guarantees (a lower bound
        /// of the maximum throughput, tight when the optimality test passes).
        throughput: Throughput,
        /// Tasks appearing on the critical circuit.
        critical_tasks: Vec<TaskId>,
    },
    /// No K-periodic schedule exists for this periodicity vector (a circuit
    /// of the event graph has non-positive total time). Larger periodicity
    /// values may still admit a schedule.
    Infeasible {
        /// Tasks appearing on the offending circuit.
        critical_tasks: Vec<TaskId>,
    },
    /// The event graph has no circuit with positive ratio: nothing bounds the
    /// period and the throughput is unbounded (this happens for graphs
    /// without feedback when tasks are not serialised).
    Unconstrained,
}

/// Result of a fixed-K evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KPeriodicEvaluation {
    /// The periodicity vector that was evaluated.
    pub periodicity: PeriodicityVector,
    /// Size of the event graph that was solved (nodes, arcs).
    pub event_graph_size: (usize, usize),
    /// The conclusion.
    pub outcome: EvaluationOutcome,
}

impl KPeriodicEvaluation {
    /// The throughput guaranteed by this evaluation: finite for feasible
    /// outcomes, [`Throughput::Deadlocked`] for infeasible ones (pessimistic:
    /// a larger K may still be feasible), [`Throughput::Unbounded`] when the
    /// period is unconstrained.
    pub fn throughput(&self) -> Throughput {
        match &self.outcome {
            EvaluationOutcome::Feasible { throughput, .. } => *throughput,
            EvaluationOutcome::Infeasible { .. } => Throughput::Deadlocked,
            EvaluationOutcome::Unconstrained => Throughput::Unbounded,
        }
    }

    /// The normalised period, when the outcome is feasible.
    pub fn period(&self) -> Option<Rational> {
        match &self.outcome {
            EvaluationOutcome::Feasible { period, .. } => Some(*period),
            _ => None,
        }
    }
}

/// One evaluation produced by an [`EvaluationPipeline`]: the outcome plus the
/// size of the event graph that was solved. Unlike [`KPeriodicEvaluation`] it
/// does not clone the periodicity vector — the K-Iter hot loop discards most
/// evaluations immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineEvaluation {
    /// Size of the event graph that was solved (nodes, arcs).
    pub event_graph_size: (usize, usize),
    /// The conclusion.
    pub outcome: EvaluationOutcome,
}

/// Cumulative counters and timings of an [`EvaluationPipeline`], split into
/// event-graph construction work and MCR solve work (the construction/solve
/// split reported by `benches/scalability` and the `scale_smoke` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Total number of evaluations performed.
    pub evaluations: usize,
    /// Evaluations that built the event graph from scratch (the first one,
    /// plus any rebuild after an error).
    pub full_builds: usize,
    /// Evaluations that patched the arena in place.
    pub patched: usize,
    /// Buffers whose constraint arcs were re-derived across all patches.
    pub rebuilt_buffers: usize,
    /// Buffers whose cached arcs were reused across all patches.
    pub reused_buffers: usize,
    /// Wall-clock time spent building event graphs from scratch.
    pub build_time: Duration,
    /// Wall-clock time spent patching the arena in place.
    pub patch_time: Duration,
    /// Wall-clock time spent in the MCR solver.
    pub solve_time: Duration,
    /// Construction time (build or patch) of the most recent evaluation —
    /// together with [`PipelineStats::last_solve_time`] this is the
    /// per-iteration construction/solve split of the K-Iter loop.
    pub last_construction_time: Duration,
    /// MCR solve time of the most recent evaluation.
    pub last_solve_time: Duration,
}

impl PipelineStats {
    /// Cumulative wall-clock time spent constructing event graphs — the sum
    /// of the from-scratch builds ([`PipelineStats::build_time`]) and the
    /// in-place patches ([`PipelineStats::patch_time`]). Together with
    /// [`PipelineStats::total_solve_time`] and
    /// [`PipelineStats::evaluations`] this is the honest construction/solve
    /// split of a whole sweep, not just its last evaluation.
    pub fn total_construction_time(&self) -> Duration {
        self.build_time + self.patch_time
    }

    /// Cumulative wall-clock time spent in the MCR solver across all
    /// evaluations (alias of [`PipelineStats::solve_time`], named for
    /// symmetry with [`PipelineStats::total_construction_time`]).
    pub fn total_solve_time(&self) -> Duration {
        self.solve_time
    }

    /// Folds the counters of another pipeline into these: cumulative
    /// counters and times add up; the `last_*` fields keep the larger of the
    /// two (across parallel workers "the most recent evaluation" is
    /// ill-defined, so the merge is deterministic rather than temporal).
    /// This is how the `explore` sweep runner aggregates the per-worker
    /// session pipelines into one sweep-wide split.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.evaluations += other.evaluations;
        self.full_builds += other.full_builds;
        self.patched += other.patched;
        self.rebuilt_buffers += other.rebuilt_buffers;
        self.reused_buffers += other.reused_buffers;
        self.build_time += other.build_time;
        self.patch_time += other.patch_time;
        self.solve_time += other.solve_time;
        self.last_construction_time = self
            .last_construction_time
            .max(other.last_construction_time);
        self.last_solve_time = self.last_solve_time.max(other.last_solve_time);
    }
}

/// A reusable fixed-K evaluation pipeline: periodicity update → dirty set →
/// arena patch → MCR solve.
///
/// The pipeline owns the [`EventGraphArena`] and the [`Solver`]; the K-Iter
/// loop drives one pipeline for its whole run so that each iteration only
/// re-derives the event-graph pieces its periodicity update dirtied and the
/// solver scratch buffers are resized, never recreated. The arena is reused
/// only while the same graph (by structural fingerprint,
/// [`EventGraphArena::matches_graph`]) is evaluated; switching graphs
/// triggers a from-scratch rebuild, so one pipeline can safely serve a sweep
/// over many graphs.
#[derive(Debug)]
pub struct EvaluationPipeline {
    options: AnalysisOptions,
    solver: Solver,
    arena: Option<EventGraphArena>,
    stats: PipelineStats,
    cancel: CancelToken,
}

impl EvaluationPipeline {
    /// Creates an empty pipeline; the first evaluation builds the arena.
    pub fn new(options: AnalysisOptions) -> Self {
        EvaluationPipeline {
            options,
            solver: Solver::new(options.solver).with_threads(options.threads),
            arena: None,
            stats: PipelineStats::default(),
            cancel: CancelToken::default(),
        }
    }

    /// Installs a cancellation token checked at the start of every
    /// evaluation, once per arena buffer rebuild and once per solver round.
    /// A cancelled evaluation returns [`AnalysisError::DeadlineExceeded`];
    /// the pipeline stays reusable. Pass [`CancelToken::default`] to detach.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.solver.set_cancel_token(token.clone());
        self.cancel = token;
    }

    /// The currently installed cancellation token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The analysis options the pipeline was created with.
    pub fn options(&self) -> &AnalysisOptions {
        &self.options
    }

    /// Cumulative statistics over all evaluations so far.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The current arena, if at least one evaluation succeeded.
    pub fn arena(&self) -> Option<&EventGraphArena> {
        self.arena.as_ref()
    }

    /// Evaluates the minimum period of a K-periodic schedule for `periodicity`,
    /// patching the arena in place when one exists.
    ///
    /// `dirty_hint` may name the tasks whose periodicity changed since the
    /// previous evaluation (as returned by the K-Iter update rule); pass
    /// `None` to let the arena detect changes by comparison.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate_k_periodic`]. After an error the arena is dropped;
    /// the next evaluation rebuilds it from scratch.
    pub fn evaluate(
        &mut self,
        graph: &CsdfGraph,
        repetition: &RepetitionVector,
        periodicity: &PeriodicityVector,
        dirty_hint: Option<&[TaskId]>,
    ) -> Result<PipelineEvaluation, AnalysisError> {
        if self.cancel.is_cancelled() {
            return Err(AnalysisError::DeadlineExceeded);
        }
        self.stats.evaluations += 1;
        // Take the arena out so an error cannot leave a half-patched arena
        // installed. If the caller switched graph *structures* — detected by
        // fingerprint, so even same-shape different graphs are caught — fall
        // back to a from-scratch build. Marking-only differences (the
        // in-place token/capacity mutations of an analysis session) stay on
        // the patch path: `apply_update` re-derives exactly the mutated
        // buffers' arcs.
        let reusable = self
            .arena
            .take()
            .filter(|arena| arena.matches_structure(graph));
        let arena = match reusable {
            Some(mut arena) => {
                let started = Instant::now();
                let update =
                    arena.apply_update_with_cancel(graph, periodicity, dirty_hint, &self.cancel)?;
                self.stats.last_construction_time = started.elapsed();
                self.stats.patch_time += self.stats.last_construction_time;
                self.stats.patched += 1;
                self.stats.rebuilt_buffers += update.rebuilt_buffers;
                self.stats.reused_buffers += update.reused_buffers;
                arena
            }
            None => {
                if self.options.pre_lint {
                    pre_lint_gate(graph)?;
                }
                let started = Instant::now();
                let arena = EventGraphArena::build_with_cancel(
                    graph,
                    repetition,
                    periodicity,
                    &self.options.limits,
                    &self.cancel,
                )?;
                self.stats.last_construction_time = started.elapsed();
                self.stats.build_time += self.stats.last_construction_time;
                self.stats.full_builds += 1;
                arena
            }
        };

        let started = Instant::now();
        let solved = self.solver.solve(arena.ratio_graph())?;
        self.stats.last_solve_time = started.elapsed();
        self.stats.solve_time += self.stats.last_solve_time;

        let evaluation = PipelineEvaluation {
            event_graph_size: (arena.node_count(), arena.arc_count()),
            outcome: classify(solved, &arena)?,
        };
        self.arena = Some(arena);
        Ok(evaluation)
    }
}

/// Runs the static analyzer and turns its first error-severity diagnostic
/// into [`AnalysisError::RejectedByLint`].
fn pre_lint_gate(graph: &CsdfGraph) -> Result<(), AnalysisError> {
    let report = csdf_lint::analyze(graph);
    match report
        .diagnostics
        .iter()
        .find(|d| d.severity() == csdf_lint::Severity::Error)
    {
        Some(diagnostic) => Err(AnalysisError::RejectedByLint {
            code: diagnostic.code.as_str().to_string(),
            message: diagnostic.message.clone(),
        }),
        None => Ok(()),
    }
}

/// Maps a solver outcome on the (lcm-free) event graph to an evaluation
/// outcome: the maximum cycle ratio is the normalised period `Ω_G` directly.
fn classify(
    solved: CycleRatioOutcome,
    arena: &EventGraphArena,
) -> Result<EvaluationOutcome, AnalysisError> {
    Ok(match solved {
        CycleRatioOutcome::Acyclic | CycleRatioOutcome::NonPositive => {
            EvaluationOutcome::Unconstrained
        }
        CycleRatioOutcome::Infinite { cycle } => EvaluationOutcome::Infeasible {
            critical_tasks: arena.tasks_on_cycle(&cycle).into_iter().collect(),
        },
        CycleRatioOutcome::Finite { ratio, cycle } => {
            let period = ratio;
            let lcm = Rational::from_integer(arena.lcm_k() as i128);
            EvaluationOutcome::Feasible {
                transformed_period: period.checked_mul(&lcm)?,
                period,
                throughput: Throughput::from_period(period)?,
                critical_tasks: arena.tasks_on_cycle(&cycle).into_iter().collect(),
            }
        }
    })
}

/// Evaluates the minimum period of a K-periodic schedule for a fixed `K`.
///
/// # Errors
///
/// Propagates model errors (inconsistency, overflow, invalid `K`), solver
/// errors and event-graph size violations.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use kperiodic::{evaluate_k_periodic, AnalysisOptions, PeriodicityVector, EvaluationOutcome};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let ping = builder.add_sdf_task("ping", 1);
/// let pong = builder.add_sdf_task("pong", 1);
/// builder.add_sdf_buffer(ping, pong, 1, 1, 0);
/// builder.add_sdf_buffer(pong, ping, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let k = PeriodicityVector::unitary(&graph);
/// let evaluation = evaluate_k_periodic(&graph, &k, &AnalysisOptions::default())?;
/// match evaluation.outcome {
///     EvaluationOutcome::Feasible { period, .. } => {
///         assert_eq!(period, csdf::Rational::from_integer(2));
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate_k_periodic(
    graph: &CsdfGraph,
    periodicity: &PeriodicityVector,
    options: &AnalysisOptions,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    let repetition = graph.repetition_vector()?;
    evaluate_with_repetition(graph, &repetition, periodicity, options)
}

/// Same as [`evaluate_k_periodic`] but reuses an already computed repetition
/// vector.
pub fn evaluate_with_repetition(
    graph: &CsdfGraph,
    repetition: &RepetitionVector,
    periodicity: &PeriodicityVector,
    options: &AnalysisOptions,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    let mut solver = Solver::new(options.solver).with_threads(options.threads);
    evaluate_with_solver(graph, repetition, periodicity, options, &mut solver)
}

/// Same as [`evaluate_with_repetition`] but reuses a caller-provided
/// [`Solver`], so its scratch buffers survive across evaluations.
pub fn evaluate_with_solver(
    graph: &CsdfGraph,
    repetition: &RepetitionVector,
    periodicity: &PeriodicityVector,
    options: &AnalysisOptions,
    solver: &mut Solver,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    if options.pre_lint {
        pre_lint_gate(graph)?;
    }
    let event_graph = EventGraph::build(graph, repetition, periodicity, &options.limits)?;
    let solved = solver.solve(event_graph.ratio_graph())?;
    Ok(KPeriodicEvaluation {
        periodicity: periodicity.clone(),
        event_graph_size: (event_graph.node_count(), event_graph.arc_count()),
        outcome: classify(solved, event_graph.arena())?,
    })
}

/// Evaluates the minimum period of an ordinary (1-)periodic schedule — the
/// approximate method the paper compares against (reference [4]).
///
/// # Errors
///
/// Same as [`evaluate_k_periodic`].
pub fn evaluate_periodic(
    graph: &CsdfGraph,
    options: &AnalysisOptions,
) -> Result<KPeriodicEvaluation, AnalysisError> {
    evaluate_k_periodic(graph, &PeriodicityVector::unitary(graph), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn ring_with_tokens(tokens: u64) -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 3);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, tokens);
        b.build().unwrap()
    }

    #[test]
    fn pre_lint_gate_rejects_deadlocked_graphs_fast() {
        let options = AnalysisOptions {
            pre_lint: true,
            ..AnalysisOptions::default()
        };
        // Live ring: the gate passes and evaluation proceeds normally.
        let live = evaluate_periodic(&ring_with_tokens(1), &options).unwrap();
        assert_eq!(live.period(), Some(Rational::from_integer(5)));
        // Tokenless ring: rejected with the lint certificate, without
        // building an event graph.
        let err = evaluate_periodic(&ring_with_tokens(0), &options).unwrap_err();
        match err {
            AnalysisError::RejectedByLint { code, message } => {
                // The tokenless unit-rate ring is caught by the capacity
                // pass (the two buffers mirror each other and hold 0 tokens
                // combined) before the liveness simulation even runs.
                assert_eq!(code, "L003");
                assert!(message.contains("deadlock"));
            }
            other => panic!("expected RejectedByLint, got {other:?}"),
        }
        // Default options still solve the deadlocked graph exactly.
        let solved = evaluate_periodic(&ring_with_tokens(0), &AnalysisOptions::default()).unwrap();
        assert_eq!(solved.throughput(), Throughput::Deadlocked);
    }

    #[test]
    fn hsdf_ring_periods() {
        // One token: executions strictly alternate, period 5.
        let one = evaluate_periodic(&ring_with_tokens(1), &AnalysisOptions::default()).unwrap();
        assert_eq!(one.period(), Some(Rational::from_integer(5)));
        // Two tokens: period 5/2 per iteration... the cycle ratio is (2+3)/2.
        let two = evaluate_periodic(&ring_with_tokens(2), &AnalysisOptions::default()).unwrap();
        assert_eq!(two.period(), Some(Rational::new(5, 2).unwrap()));
        assert!(two.throughput() > one.throughput());
        assert_eq!(one.event_graph_size.0, 2);
    }

    #[test]
    fn deadlocked_ring_is_infeasible() {
        // Zero tokens on a cycle: no schedule whatsoever.
        let evaluation =
            evaluate_periodic(&ring_with_tokens(0), &AnalysisOptions::default()).unwrap();
        match evaluation.outcome {
            EvaluationOutcome::Infeasible { ref critical_tasks } => {
                assert_eq!(critical_tasks.len(), 2);
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(evaluation.throughput(), Throughput::Deadlocked);
        assert_eq!(evaluation.period(), None);
    }

    #[test]
    fn acyclic_graph_is_unconstrained() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        let g = b.build().unwrap();
        let evaluation = evaluate_periodic(&g, &AnalysisOptions::default()).unwrap();
        assert_eq!(evaluation.outcome, EvaluationOutcome::Unconstrained);
        assert_eq!(evaluation.throughput(), Throughput::Unbounded);
    }

    #[test]
    fn larger_k_never_hurts() {
        // For a multirate ring, K-periodic schedules are at least as good as
        // periodic ones.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 2, 4);
        let g = b.build().unwrap();
        let options = AnalysisOptions::default();
        let unitary = evaluate_periodic(&g, &options).unwrap();
        let q = g.repetition_vector().unwrap();
        let full = evaluate_k_periodic(&g, &PeriodicityVector::full(&q), &options).unwrap();
        assert!(full.throughput() >= unitary.throughput());
    }

    #[test]
    fn transformed_period_is_the_scaled_normalised_period() {
        let g = ring_with_tokens(1);
        let k = PeriodicityVector::from_entries(&g, vec![1, 2]).unwrap();
        let evaluation = evaluate_k_periodic(&g, &k, &AnalysisOptions::default()).unwrap();
        match evaluation.outcome {
            EvaluationOutcome::Feasible {
                transformed_period,
                period,
                ..
            } => {
                assert_eq!(
                    transformed_period,
                    period.checked_mul(&Rational::from_integer(2)).unwrap()
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipeline_matches_the_one_shot_evaluation() {
        // Three-task ring so some buffers are untouched by each update.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 3);
        let z = b.add_sdf_task("z", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, z, 1, 1, 0);
        b.add_sdf_buffer(z, x, 1, 1, 2);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        let options = AnalysisOptions::default();
        let mut pipeline = EvaluationPipeline::new(options);
        for entries in [vec![1, 1, 1], vec![2, 1, 1], vec![2, 3, 1]] {
            let k = PeriodicityVector::from_entries(&g, entries).unwrap();
            let piped = pipeline.evaluate(&g, &q, &k, None).unwrap();
            let fresh = evaluate_with_repetition(&g, &q, &k, &options).unwrap();
            assert_eq!(piped.outcome, fresh.outcome);
            assert_eq!(piped.event_graph_size, fresh.event_graph_size);
        }
        let stats = pipeline.stats();
        assert_eq!(stats.evaluations, 3);
        assert_eq!(stats.full_builds, 1);
        assert_eq!(stats.patched, 2);
        assert!(stats.reused_buffers > 0);
    }

    #[test]
    fn pipeline_rebuilds_when_the_graph_shape_changes() {
        let small = ring_with_tokens(1);
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let z = b.add_sdf_task("z", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, z, 1, 1, 0);
        b.add_sdf_buffer(z, x, 1, 1, 1);
        let large = b.build().unwrap();

        // `same_structure` has the small ring's structure but a different
        // marking: that is a *patchable* difference, not a graph switch —
        // the pipeline keeps the arena and re-derives one buffer's arcs.
        let same_structure = ring_with_tokens(2);

        let mut pipeline = EvaluationPipeline::new(AnalysisOptions::default());
        for graph in [&small, &large, &small, &same_structure] {
            let q = graph.repetition_vector().unwrap();
            let k = PeriodicityVector::unitary(graph);
            let piped = pipeline.evaluate(graph, &q, &k, None).unwrap();
            let fresh =
                evaluate_with_repetition(graph, &q, &k, &AnalysisOptions::default()).unwrap();
            assert_eq!(piped.outcome, fresh.outcome);
        }
        // Structure switches discard the arena and rebuild from scratch; the
        // final marking-only switch patches in place.
        assert_eq!(pipeline.stats().full_builds, 3);
        assert_eq!(pipeline.stats().patched, 1);
        assert_eq!(pipeline.stats().rebuilt_buffers, 1);
    }

    #[test]
    fn pipeline_recovers_after_an_error() {
        let g = ring_with_tokens(1);
        let q = g.repetition_vector().unwrap();
        let options = AnalysisOptions {
            limits: EventGraphLimits {
                max_nodes: 4,
                max_arcs: 100,
            },
            ..AnalysisOptions::default()
        };
        let mut pipeline = EvaluationPipeline::new(options);
        let unitary = PeriodicityVector::unitary(&g);
        pipeline.evaluate(&g, &q, &unitary, None).unwrap();
        let too_big = PeriodicityVector::from_entries(&g, vec![8, 8]).unwrap();
        assert!(pipeline.evaluate(&g, &q, &too_big, None).is_err());
        assert!(pipeline.arena().is_none());
        // The next evaluation rebuilds from scratch and succeeds again.
        let evaluation = pipeline.evaluate(&g, &q, &unitary, None).unwrap();
        assert!(matches!(
            evaluation.outcome,
            EvaluationOutcome::Feasible { .. }
        ));
        assert_eq!(pipeline.stats().full_builds, 2);
    }

    #[test]
    fn cyclo_static_phases_spread_the_work() {
        // A CSDF producer that alternates between bursts of 2 and 0 tokens.
        // Without self-loops nothing orders the phases of `x`, so no circuit
        // bounds the period; once the tasks are serialised the evaluation
        // produces a finite period.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![2, 0], vec![1], 0);
        b.add_buffer(y, x, vec![1], vec![0, 2], 2);
        let unserialized = b.build().unwrap();
        let evaluation = evaluate_periodic(&unserialized, &AnalysisOptions::default()).unwrap();
        assert_eq!(evaluation.outcome, EvaluationOutcome::Unconstrained);

        let serialized = csdf::transform::serialize_tasks(&unserialized).unwrap();
        let evaluation = evaluate_periodic(&serialized, &AnalysisOptions::default()).unwrap();
        assert!(matches!(
            evaluation.outcome,
            EvaluationOutcome::Feasible { .. }
        ));
    }
}
