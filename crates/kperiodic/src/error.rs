//! Error type of the K-periodic analysis crate.

use std::fmt;

use csdf::{CsdfError, RationalError};
use mcr::McrError;

/// Errors raised by K-periodic throughput evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The underlying CSDF model reported an error (inconsistency, overflow,
    /// invalid periodicity vector, ...).
    Model(CsdfError),
    /// The cycle-ratio solver reported an error.
    Solver(McrError),
    /// The K-Iter loop exceeded its configured iteration budget before the
    /// optimality test succeeded.
    IterationLimitReached {
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The event graph grew beyond the configured node budget.
    EventGraphTooLarge {
        /// Number of nodes the event graph would need.
        nodes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// An [`EventGraphArena`](crate::EventGraphArena) was asked to update
    /// against a graph it was not built from (its cached blocks and arcs
    /// would silently be wrong); build a fresh arena instead.
    ArenaGraphMismatch,
    /// The pre-solve lint gate ([`AnalysisOptions::pre_lint`]
    /// (`crate::AnalysisOptions::pre_lint`)) found a structural error, so no
    /// event graph was built. `code` is the stable `csdf-lint` code
    /// (`"L001"`, `"L002"`, ...) of the first error diagnostic.
    RejectedByLint {
        /// Stable lint code of the first error-severity diagnostic.
        code: String,
        /// The diagnostic's message.
        message: String,
    },
    /// The evaluation observed a cancelled [`CancelToken`](mcr::CancelToken)
    /// — an explicit cancellation or an elapsed deadline — and bailed out
    /// cooperatively. The session, pipeline and arena all stay reusable.
    DeadlineExceeded,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Model(err) => write!(f, "{err}"),
            AnalysisError::Solver(err) => write!(f, "{err}"),
            AnalysisError::IterationLimitReached { iterations } => {
                write!(f, "k-iter did not converge within {iterations} iterations")
            }
            AnalysisError::EventGraphTooLarge { nodes, limit } => {
                write!(f, "event graph needs {nodes} nodes, limit is {limit}")
            }
            AnalysisError::ArenaGraphMismatch => {
                write!(
                    f,
                    "event-graph arena updated against a graph it was not built from"
                )
            }
            AnalysisError::RejectedByLint { code, message } => {
                write!(f, "rejected by pre-solve lint [{code}]: {message}")
            }
            AnalysisError::DeadlineExceeded => {
                write!(f, "evaluation exceeded its deadline and was cancelled")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Model(err) => Some(err),
            AnalysisError::Solver(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CsdfError> for AnalysisError {
    fn from(err: CsdfError) -> Self {
        AnalysisError::Model(err)
    }
}

impl From<McrError> for AnalysisError {
    fn from(err: McrError) -> Self {
        match err {
            // A cancelled solve is a deadline event of the whole evaluation,
            // not a solver failure.
            McrError::Cancelled => AnalysisError::DeadlineExceeded,
            other => AnalysisError::Solver(other),
        }
    }
}

impl From<RationalError> for AnalysisError {
    fn from(err: RationalError) -> Self {
        AnalysisError::Model(CsdfError::Rational(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let model: AnalysisError = CsdfError::EmptyGraph.into();
        assert!(model.to_string().contains("no tasks"));
        let solver: AnalysisError = McrError::IterationLimit.into();
        assert!(solver.to_string().contains("progress"));
        let rational: AnalysisError = RationalError::Overflow.into();
        assert!(matches!(rational, AnalysisError::Model(_)));
        let limit = AnalysisError::IterationLimitReached { iterations: 3 };
        assert!(limit.to_string().contains('3'));
        let size = AnalysisError::EventGraphTooLarge {
            nodes: 10,
            limit: 5,
        };
        assert!(size.to_string().contains("10"));
        assert!(std::error::Error::source(&model).is_some());
        assert!(std::error::Error::source(&limit).is_none());
    }

    #[test]
    fn cancelled_solves_become_deadline_exceeded() {
        let cancelled: AnalysisError = McrError::Cancelled.into();
        assert_eq!(cancelled, AnalysisError::DeadlineExceeded);
        assert!(cancelled.to_string().contains("deadline"));
        assert!(std::error::Error::source(&cancelled).is_none());
    }
}
