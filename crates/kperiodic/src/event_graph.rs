//! Construction of the bi-valued event graph (Section 3.3).
//!
//! For a CSDF graph `G`, a repetition vector `q` and a periodicity vector `K`,
//! the event graph has one node per execution `⟨t_p̃, 1⟩` of the transformed
//! graph `G̃` (`K_t · ϕ(t)` nodes per task) and one arc per useful Theorem-2
//! constraint, bi-valued by
//!
//! ```text
//! L(e) = d̃(t_p̃)           H(e) = −β̃_a(p̃, p̃') / (ĩ_a · q̃_t)
//! ```
//!
//! The maximum cost-to-time ratio of this graph is the minimum period
//! `Ω*_{G̃}` of a 1-periodic schedule of `G̃`, i.e. of a K-periodic schedule of
//! `G` (up to the `lcm(K)` normalisation of Theorem 3).

use std::collections::BTreeSet;

use csdf::{CsdfGraph, Rational, RepetitionVector, TaskId};
use mcr::{CriticalCycle, NodeId, RatioGraph};

use crate::constraints::{duplicate_rates, phase_constraints};
use crate::error::AnalysisError;
use crate::periodicity::PeriodicityVector;

/// Identity of an event-graph node: an execution `⟨t_p̃, 1⟩` of the
/// transformed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventNode {
    /// The task this execution belongs to.
    pub task: TaskId,
    /// 0-based phase index in the *transformed* graph, i.e. in
    /// `0 .. K_t · ϕ(t)`.
    pub phase: usize,
}

/// The bi-valued event graph of a CSDF graph under a periodicity vector.
#[derive(Debug, Clone)]
pub struct EventGraph {
    ratio: RatioGraph,
    nodes: Vec<EventNode>,
    node_offset: Vec<usize>,
    durations: Vec<Vec<u64>>,
    lcm_k: u64,
}

/// Limits applied while building event graphs (guards against accidental
/// blow-ups when K grows towards the repetition vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventGraphLimits {
    /// Maximum number of nodes (executions) the event graph may contain.
    pub max_nodes: usize,
    /// Maximum number of arcs (constraints) the event graph may contain.
    pub max_arcs: usize,
}

impl Default for EventGraphLimits {
    fn default() -> Self {
        EventGraphLimits {
            max_nodes: 2_000_000,
            max_arcs: 20_000_000,
        }
    }
}

impl EventGraph {
    /// Builds the event graph of `graph` for the periodicity vector `k`.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Model`] for inconsistent graphs, invalid `K`, or
    ///   arithmetic overflow;
    /// * [`AnalysisError::EventGraphTooLarge`] when the limits are exceeded.
    pub fn build(
        graph: &CsdfGraph,
        repetition: &RepetitionVector,
        k: &PeriodicityVector,
        limits: &EventGraphLimits,
    ) -> Result<Self, AnalysisError> {
        if k.len() != graph.task_count() {
            return Err(AnalysisError::Model(
                csdf::CsdfError::InvalidPeriodicityVector {
                    expected: graph.task_count(),
                    actual: k.len(),
                },
            ));
        }
        let lcm_k = k.lcm()?;

        // Node numbering: contiguous blocks per task.
        let mut node_offset = Vec::with_capacity(graph.task_count());
        let mut nodes = Vec::new();
        let mut durations = Vec::with_capacity(graph.task_count());
        for (task_id, task) in graph.tasks() {
            node_offset.push(nodes.len());
            let expanded = duplicate_rates(task.durations(), k.get(task_id));
            for phase in 0..expanded.len() {
                nodes.push(EventNode {
                    task: task_id,
                    phase,
                });
            }
            durations.push(expanded);
            if nodes.len() > limits.max_nodes {
                return Err(AnalysisError::EventGraphTooLarge {
                    nodes: nodes.len(),
                    limit: limits.max_nodes,
                });
            }
        }

        let mut ratio = RatioGraph::new(nodes.len());
        for (_, buffer) in graph.buffers() {
            let producer = buffer.source();
            let consumer = buffer.target();
            let k_producer = k.get(producer);
            let k_consumer = k.get(consumer);
            let production = duplicate_rates(buffer.production(), k_producer);
            let consumption = duplicate_rates(buffer.consumption(), k_consumer);

            // ĩ_a · q̃_t = K_t·i_b · q_t·lcm(K)/K_t = i_b · q_t · lcm(K).
            let denominator = (buffer.total_production() as i128)
                .checked_mul(repetition.get(producer) as i128)
                .and_then(|v| v.checked_mul(lcm_k as i128))
                .ok_or(AnalysisError::Model(csdf::CsdfError::Overflow))?;

            for constraint in phase_constraints(&production, &consumption, buffer.initial_tokens())
            {
                let from = node_offset[producer.index()] + constraint.producer_phase;
                let to = node_offset[consumer.index()] + constraint.consumer_phase;
                let cost = Rational::from_integer(
                    durations[producer.index()][constraint.producer_phase] as i128,
                );
                let time = Rational::new(-constraint.beta, denominator)
                    .map_err(csdf::CsdfError::Rational)?;
                ratio.add_arc(NodeId::new(from), NodeId::new(to), cost, time);
                if ratio.arc_count() > limits.max_arcs {
                    return Err(AnalysisError::EventGraphTooLarge {
                        nodes: ratio.arc_count(),
                        limit: limits.max_arcs,
                    });
                }
            }
        }

        Ok(EventGraph {
            ratio,
            nodes,
            node_offset,
            durations,
            lcm_k,
        })
    }

    /// The underlying bi-valued ratio graph.
    pub fn ratio_graph(&self) -> &RatioGraph {
        &self.ratio
    }

    /// Number of execution nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of constraint arcs.
    pub fn arc_count(&self) -> usize {
        self.ratio.arc_count()
    }

    /// `lcm(K)` of the periodicity vector used to build this event graph.
    pub fn lcm_k(&self) -> u64 {
        self.lcm_k
    }

    /// The execution represented by an event-graph node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this event graph.
    pub fn event(&self, node: NodeId) -> EventNode {
        self.nodes[node.index()]
    }

    /// Event-graph node of the `phase`-th transformed execution of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` or `phase` is out of range.
    pub fn node_of(&self, task: TaskId, phase: usize) -> NodeId {
        assert!(phase < self.durations[task.index()].len());
        NodeId::new(self.node_offset[task.index()] + phase)
    }

    /// Duration of the `phase`-th transformed execution of `task`.
    pub fn duration_of(&self, task: TaskId, phase: usize) -> u64 {
        self.durations[task.index()][phase]
    }

    /// Number of transformed phases (`K_t · ϕ(t)`) of `task`.
    pub fn phase_count_of(&self, task: TaskId) -> usize {
        self.durations[task.index()].len()
    }

    /// The set of tasks whose executions appear on a critical circuit.
    pub fn tasks_on_cycle(&self, cycle: &CriticalCycle) -> BTreeSet<TaskId> {
        cycle
            .nodes
            .iter()
            .map(|&node| self.event(node).task)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;
    use mcr::{maximum_cycle_ratio, CycleRatioOutcome};

    /// Two unit-rate tasks in a loop with one token: the classic period-2
    /// marked graph.
    fn ring() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn ring_event_graph_has_period_two() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let eg = EventGraph::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        assert_eq!(eg.node_count(), 2);
        assert_eq!(eg.arc_count(), 2);
        assert_eq!(eg.lcm_k(), 1);
        match maximum_cycle_ratio(eg.ratio_graph()).unwrap() {
            CycleRatioOutcome::Finite { ratio, cycle } => {
                assert_eq!(ratio, Rational::from_integer(2));
                let tasks = eg.tasks_on_cycle(&cycle);
                assert_eq!(tasks.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_lookup_round_trips() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let mut k = PeriodicityVector::unitary(&g);
        k.set(TaskId::new(0), 3).unwrap();
        let eg = EventGraph::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        assert_eq!(eg.node_count(), 4);
        assert_eq!(eg.phase_count_of(TaskId::new(0)), 3);
        assert_eq!(eg.phase_count_of(TaskId::new(1)), 1);
        let node = eg.node_of(TaskId::new(0), 2);
        assert_eq!(
            eg.event(node),
            EventNode {
                task: TaskId::new(0),
                phase: 2
            }
        );
        assert_eq!(eg.duration_of(TaskId::new(0), 2), 1);
    }

    #[test]
    fn serialized_multirate_sdf_matches_hand_computation() {
        // x (duration 1) produces 2 tokens consumed 1 at a time by y
        // (duration 3); both tasks serialised. q = [1, 2].
        // The throughput is limited by y: one graph iteration needs 2
        // executions of y, 6 time units, so the optimal period is 6, and it is
        // already reached by a 1-periodic schedule for y... but the event
        // graph at K = 1 only bounds the period by max(1, 2·3) = 6.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 3);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let eg = EventGraph::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        match maximum_cycle_ratio(eg.ratio_graph()).unwrap() {
            CycleRatioOutcome::Finite { ratio, .. } => {
                assert_eq!(ratio, Rational::from_integer(6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_limit_is_enforced() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let limits = EventGraphLimits {
            max_nodes: 1,
            max_arcs: 1000,
        };
        assert!(matches!(
            EventGraph::build(&g, &q, &k, &limits),
            Err(AnalysisError::EventGraphTooLarge { .. })
        ));
    }

    #[test]
    fn arc_limit_is_enforced() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let limits = EventGraphLimits {
            max_nodes: 1000,
            max_arcs: 1,
        };
        assert!(matches!(
            EventGraph::build(&g, &q, &k, &limits),
            Err(AnalysisError::EventGraphTooLarge { .. })
        ));
    }

    #[test]
    fn wrong_periodicity_length_is_rejected() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let mut other = CsdfGraphBuilder::new();
        other.add_sdf_task("z", 1);
        let other = other.build().unwrap();
        let k = PeriodicityVector::unitary(&other);
        assert!(matches!(
            EventGraph::build(&g, &q, &k, &EventGraphLimits::default()),
            Err(AnalysisError::Model(_))
        ));
    }
}
