//! Construction of the bi-valued event graph (Section 3.3).
//!
//! For a CSDF graph `G`, a repetition vector `q` and a periodicity vector `K`,
//! the event graph has one node per execution `⟨t_p̃, 1⟩` of the transformed
//! graph `G̃` (`K_t · ϕ(t)` nodes per task) and one arc per useful Theorem-2
//! constraint, bi-valued by
//!
//! ```text
//! L(e) = d̃(t_p̃)           H(e) = −β̃_a(p̃, p̃') / (i_b · q_t)
//! ```
//!
//! Compared to the paper's formula the stored `H(e)` omits the uniform
//! `lcm(K)` factor (see [`EventGraphArena`](crate::EventGraphArena) for the
//! argument): the maximum cost-to-time ratio of this graph is therefore
//! directly the normalised minimum period `Ω_G` of a K-periodic schedule of
//! `G` (Theorem 3), and the transformed period is `Ω*_{G̃} = Ω_G · lcm(K)`.
//!
//! [`EventGraph`] is the one-shot, from-scratch construction; the incremental
//! path that K-Iter drives lives in [`crate::arena`]. Both produce
//! bit-identical ratio graphs — [`EventGraph::build`] is a thin wrapper over
//! [`EventGraphArena::build`](crate::EventGraphArena::build).

use std::collections::BTreeSet;

use csdf::{CsdfGraph, RepetitionVector, TaskId};
use mcr::{CriticalCycle, NodeId, RatioGraph};

use crate::arena::EventGraphArena;
use crate::error::AnalysisError;
use crate::periodicity::PeriodicityVector;

/// Identity of an event-graph node: an execution `⟨t_p̃, 1⟩` of the
/// transformed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventNode {
    /// The task this execution belongs to.
    pub task: TaskId,
    /// 0-based phase index in the *transformed* graph, i.e. in
    /// `0 .. K_t · ϕ(t)`.
    pub phase: usize,
}

/// The bi-valued event graph of a CSDF graph under a periodicity vector.
#[derive(Debug, Clone)]
pub struct EventGraph {
    arena: EventGraphArena,
}

/// Limits applied while building event graphs (guards against accidental
/// blow-ups when K grows towards the repetition vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventGraphLimits {
    /// Maximum number of nodes (executions) the event graph may contain.
    pub max_nodes: usize,
    /// Maximum number of arcs (constraints) the event graph may contain.
    pub max_arcs: usize,
}

impl Default for EventGraphLimits {
    fn default() -> Self {
        EventGraphLimits {
            max_nodes: 2_000_000,
            max_arcs: 20_000_000,
        }
    }
}

impl EventGraph {
    /// Builds the event graph of `graph` for the periodicity vector `k`.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Model`] for inconsistent graphs, invalid `K`, or
    ///   arithmetic overflow;
    /// * [`AnalysisError::EventGraphTooLarge`] when the limits are exceeded.
    pub fn build(
        graph: &CsdfGraph,
        repetition: &RepetitionVector,
        k: &PeriodicityVector,
        limits: &EventGraphLimits,
    ) -> Result<Self, AnalysisError> {
        Ok(EventGraph {
            arena: EventGraphArena::build(graph, repetition, k, limits)?,
        })
    }

    /// The arena backing this event graph.
    pub fn arena(&self) -> &EventGraphArena {
        &self.arena
    }

    /// Converts into the backing arena, e.g. to continue with in-place
    /// updates via [`EventGraphArena::apply_update`].
    pub fn into_arena(self) -> EventGraphArena {
        self.arena
    }

    /// The underlying bi-valued ratio graph (lcm-free time scaling: its
    /// maximum cycle ratio is the normalised period `Ω_G`).
    pub fn ratio_graph(&self) -> &RatioGraph {
        self.arena.ratio_graph()
    }

    /// Number of execution nodes.
    pub fn node_count(&self) -> usize {
        self.arena.node_count()
    }

    /// Number of constraint arcs.
    pub fn arc_count(&self) -> usize {
        self.arena.arc_count()
    }

    /// `lcm(K)` of the periodicity vector used to build this event graph.
    pub fn lcm_k(&self) -> u64 {
        self.arena.lcm_k()
    }

    /// The execution represented by an event-graph node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this event graph.
    pub fn event(&self, node: NodeId) -> EventNode {
        self.arena.event(node)
    }

    /// Event-graph node of the `phase`-th transformed execution of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` or `phase` is out of range.
    pub fn node_of(&self, task: TaskId, phase: usize) -> NodeId {
        self.arena.node_of(task, phase)
    }

    /// Duration of the `phase`-th transformed execution of `task`.
    pub fn duration_of(&self, task: TaskId, phase: usize) -> u64 {
        self.arena.duration_of(task, phase)
    }

    /// Number of transformed phases (`K_t · ϕ(t)`) of `task`.
    pub fn phase_count_of(&self, task: TaskId) -> usize {
        self.arena.phase_count_of(task)
    }

    /// The set of tasks whose executions appear on a critical circuit.
    pub fn tasks_on_cycle(&self, cycle: &CriticalCycle) -> BTreeSet<TaskId> {
        self.arena.tasks_on_cycle(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::{CsdfGraphBuilder, Rational};
    use mcr::{maximum_cycle_ratio, CycleRatioOutcome};

    /// Two unit-rate tasks in a loop with one token: the classic period-2
    /// marked graph.
    fn ring() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn ring_event_graph_has_period_two() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let eg = EventGraph::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        assert_eq!(eg.node_count(), 2);
        assert_eq!(eg.arc_count(), 2);
        assert_eq!(eg.lcm_k(), 1);
        match maximum_cycle_ratio(eg.ratio_graph()).unwrap() {
            CycleRatioOutcome::Finite { ratio, cycle } => {
                assert_eq!(ratio, Rational::from_integer(2));
                let tasks = eg.tasks_on_cycle(&cycle);
                assert_eq!(tasks.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_lookup_round_trips() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let mut k = PeriodicityVector::unitary(&g);
        k.set(TaskId::new(0), 3).unwrap();
        let eg = EventGraph::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        assert_eq!(eg.node_count(), 4);
        assert_eq!(eg.phase_count_of(TaskId::new(0)), 3);
        assert_eq!(eg.phase_count_of(TaskId::new(1)), 1);
        let node = eg.node_of(TaskId::new(0), 2);
        assert_eq!(
            eg.event(node),
            EventNode {
                task: TaskId::new(0),
                phase: 2
            }
        );
        assert_eq!(eg.duration_of(TaskId::new(0), 2), 1);
        assert_eq!(eg.arena().periodicity_of(TaskId::new(0)), 3);
    }

    #[test]
    fn serialized_multirate_sdf_matches_hand_computation() {
        // x (duration 1) produces 2 tokens consumed 1 at a time by y
        // (duration 3); both tasks serialised. q = [1, 2].
        // The throughput is limited by y: one graph iteration needs 2
        // executions of y, 6 time units, so the optimal period is 6, and it is
        // already reached by a 1-periodic schedule for y... but the event
        // graph at K = 1 only bounds the period by max(1, 2·3) = 6.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 3);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let eg = EventGraph::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        match maximum_cycle_ratio(eg.ratio_graph()).unwrap() {
            CycleRatioOutcome::Finite { ratio, .. } => {
                assert_eq!(ratio, Rational::from_integer(6));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// At `K ≠ 1` the stored ratio graph is scaled by `lcm(K)` relative to
    /// the paper's formula: the maximum cycle ratio *is* the normalised
    /// period, not the transformed one.
    #[test]
    fn scaled_times_make_the_ratio_the_normalised_period() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::from_entries(&g, vec![2, 2]).unwrap();
        let eg = EventGraph::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        assert_eq!(eg.lcm_k(), 2);
        match maximum_cycle_ratio(eg.ratio_graph()).unwrap() {
            // The ring's normalised period stays 2 whatever K is.
            CycleRatioOutcome::Finite { ratio, .. } => {
                assert_eq!(ratio, Rational::from_integer(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn node_limit_is_enforced() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let limits = EventGraphLimits {
            max_nodes: 1,
            max_arcs: 1000,
        };
        assert!(matches!(
            EventGraph::build(&g, &q, &k, &limits),
            Err(AnalysisError::EventGraphTooLarge { .. })
        ));
    }

    #[test]
    fn arc_limit_is_enforced() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let limits = EventGraphLimits {
            max_nodes: 1000,
            max_arcs: 1,
        };
        assert!(matches!(
            EventGraph::build(&g, &q, &k, &limits),
            Err(AnalysisError::EventGraphTooLarge { .. })
        ));
    }

    #[test]
    fn wrong_periodicity_length_is_rejected() {
        let g = ring();
        let q = g.repetition_vector().unwrap();
        let mut other = CsdfGraphBuilder::new();
        other.add_sdf_task("z", 1);
        let other = other.build().unwrap();
        let k = PeriodicityVector::unitary(&other);
        assert!(matches!(
            EventGraph::build(&g, &q, &k, &EventGraphLimits::default()),
            Err(AnalysisError::Model(_))
        ));
    }
}
