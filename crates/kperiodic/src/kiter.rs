//! The K-Iter algorithm (Algorithm 1 of the paper) and its Theorem-4
//! optimality test.

use csdf::{
    gcd_u64, lcm_u64, CsdfError, CsdfGraph, Rational, RepetitionVector, TaskId, Throughput,
};

use crate::analysis::{AnalysisOptions, EvaluationOutcome, EvaluationPipeline};
use crate::error::AnalysisError;
use crate::periodicity::PeriodicityVector;

/// How the periodicity vector is enlarged when the optimality test fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KUpdatePolicy {
    /// The paper's rule: for every task `t` on the critical circuit,
    /// `K_t ← lcm(K_t, q̄_t)` with `q̄_t = q_t / gcd{q_{t'} : t' ∈ c}`.
    #[default]
    CriticalCircuitLcm,
    /// Ablation variant: on the first failed test, jump straight to the
    /// graph-wide vector `K_t = q_t / gcd(q)`, which always passes the test on
    /// the next iteration (the "repetition vector" extreme discussed in the
    /// paper's introduction). Much larger event graphs, fewer iterations.
    FullRepetition,
}

/// Configuration of the K-Iter loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KIterOptions {
    /// Shared evaluation options (event-graph limits, iteration budget).
    pub analysis: AnalysisOptions,
    /// Periodicity update policy.
    pub update_policy: KUpdatePolicy,
    /// When `true`, the per-iteration history is recorded in the result.
    pub record_history: bool,
}

/// One iteration of the K-Iter loop, as recorded in [`KIterResult::history`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KIterIteration {
    /// The periodicity vector evaluated at this iteration.
    pub periodicity: PeriodicityVector,
    /// Size of the event graph (nodes, arcs).
    pub event_graph_size: (usize, usize),
    /// Normalised period obtained (`None` when the vector was infeasible).
    pub period: Option<Rational>,
    /// Tasks on the critical circuit.
    pub critical_tasks: Vec<TaskId>,
    /// Whether the Theorem-4 optimality test passed.
    pub optimal: bool,
}

/// Result of the K-Iter algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KIterResult {
    /// The maximum reachable throughput `Th*_G` of the graph.
    pub throughput: Throughput,
    /// The periodicity vector for which optimality was proven.
    pub periodicity: PeriodicityVector,
    /// Number of fixed-K evaluations performed.
    pub iterations: usize,
    /// Tasks of the final critical circuit (empty when the throughput is
    /// unbounded).
    pub critical_tasks: Vec<TaskId>,
    /// Per-iteration details (empty unless [`KIterOptions::record_history`]).
    pub history: Vec<KIterIteration>,
}

impl KIterResult {
    /// The optimal period `Ω*_G = 1 / Th*_G`, when finite.
    pub fn period(&self) -> Option<Rational> {
        self.throughput.period()
    }
}

/// Computes the maximum reachable throughput of `graph` with default options.
///
/// This is the paper's headline contribution: an exact throughput evaluation
/// that iteratively grows a periodicity vector until a critical circuit
/// certifies optimality (Theorem 4), instead of exploring the exponential
/// state space of an as-soon-as-possible execution.
///
/// # Errors
///
/// * [`AnalysisError::Model`] if the graph is inconsistent or `i128`/`u64`
///   arithmetic overflows;
/// * [`AnalysisError::EventGraphTooLarge`] / [`AnalysisError::IterationLimitReached`]
///   when the default resource budgets are exceeded (use
///   [`kiter_with_options`] to raise them).
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, Rational, Throughput};
/// use kperiodic::optimal_throughput;
///
/// let mut builder = CsdfGraphBuilder::new();
/// let ping = builder.add_sdf_task("ping", 1);
/// let pong = builder.add_sdf_task("pong", 1);
/// builder.add_sdf_buffer(ping, pong, 1, 1, 0);
/// builder.add_sdf_buffer(pong, ping, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let result = optimal_throughput(&graph)?;
/// assert_eq!(result.throughput, Throughput::Finite(Rational::new(1, 2)?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimal_throughput(graph: &CsdfGraph) -> Result<KIterResult, AnalysisError> {
    kiter_with_options(graph, &KIterOptions::default())
}

/// Computes the maximum reachable throughput of `graph` with explicit options.
///
/// # Errors
///
/// See [`optimal_throughput`].
pub fn kiter_with_options(
    graph: &CsdfGraph,
    options: &KIterOptions,
) -> Result<KIterResult, AnalysisError> {
    let mut pipeline = EvaluationPipeline::new(options.analysis);
    kiter_with_pipeline(graph, options, &mut pipeline)
}

/// Computes the maximum reachable throughput of `graph`, driving a
/// caller-provided [`EvaluationPipeline`].
///
/// The pipeline keeps the event-graph arena and the MCR solver alive across
/// the whole run — each iteration patches the arena in place instead of
/// rebuilding it — and its [`stats`](EvaluationPipeline::stats) expose the
/// construction/solve time split afterwards. The pipeline's own
/// [`AnalysisOptions`] govern limits and solver choice;
/// `options.analysis.max_iterations` is ignored in favour of the pipeline's.
///
/// A cancellation token installed on the pipeline
/// ([`EvaluationPipeline::set_cancel_token`]) is honoured once per K-Iter
/// iteration (at the head of each evaluation) and inside the arena patch and
/// MCR solve loops; a cancelled run returns
/// [`AnalysisError::DeadlineExceeded`](crate::AnalysisError::DeadlineExceeded)
/// and leaves the pipeline reusable.
///
/// # Errors
///
/// See [`optimal_throughput`].
pub fn kiter_with_pipeline(
    graph: &CsdfGraph,
    options: &KIterOptions,
    pipeline: &mut EvaluationPipeline,
) -> Result<KIterResult, AnalysisError> {
    let repetition = graph.repetition_vector()?;
    let initial = PeriodicityVector::unitary(graph);
    kiter_seeded(graph, &repetition, options, pipeline, initial)
}

/// The K-Iter loop started from an explicit initial periodicity vector.
///
/// Algorithm 1 is correct from *any* starting vector: each evaluation is a
/// valid lower bound and the Theorem-4 test certifies optimality regardless
/// of how the vector was reached. Starting above unitary trades iterations
/// for larger event graphs — [`AnalysisSession`](crate::AnalysisSession)
/// uses this to warm-start from the previous solution after a capacity
/// relaxation, where the previous K remains a useful (and sound) seed.
/// The converged `periodicity`/`iterations` generally differ from a cold
/// run's even though the throughput is identical.
pub(crate) fn kiter_seeded(
    graph: &CsdfGraph,
    repetition: &RepetitionVector,
    options: &KIterOptions,
    pipeline: &mut EvaluationPipeline,
    mut periodicity: PeriodicityVector,
) -> Result<KIterResult, AnalysisError> {
    let mut history = Vec::new();
    let max_iterations = pipeline.options().max_iterations.max(1);
    // Tasks raised by the previous `apply_update`: the dirty set the arena
    // patch is told about (empty on the first iteration, which builds).
    let mut dirty: Vec<TaskId> = Vec::new();

    for iteration in 1..=max_iterations {
        let hint = (iteration > 1).then_some(dirty.as_slice());
        let evaluation = pipeline.evaluate(graph, repetition, &periodicity, hint)?;

        let (critical_tasks, period) = match evaluation.outcome {
            EvaluationOutcome::Unconstrained => {
                // No circuit constrains the schedule; enlarging K cannot
                // create new circuits, so the throughput is unbounded.
                if options.record_history {
                    history.push(KIterIteration {
                        periodicity: periodicity.clone(),
                        event_graph_size: evaluation.event_graph_size,
                        period: None,
                        critical_tasks: Vec::new(),
                        optimal: true,
                    });
                }
                return Ok(KIterResult {
                    throughput: Throughput::Unbounded,
                    periodicity,
                    iterations: iteration,
                    critical_tasks: Vec::new(),
                    history,
                });
            }
            EvaluationOutcome::Feasible {
                period,
                critical_tasks,
                ..
            } => (critical_tasks, Some(period)),
            EvaluationOutcome::Infeasible { critical_tasks } => (critical_tasks, None),
        };

        let normalized = normalized_repetition(repetition, &critical_tasks);
        let optimal = optimality_test(&periodicity, &normalized);

        if options.record_history {
            history.push(KIterIteration {
                periodicity: periodicity.clone(),
                event_graph_size: evaluation.event_graph_size,
                period,
                critical_tasks: critical_tasks.clone(),
                optimal,
            });
        }

        if optimal {
            let throughput = match period {
                Some(period) => Throughput::from_period(period)?,
                // The critical circuit is infeasible even at its maximal
                // useful periodicity: the graph deadlocks.
                None => Throughput::Deadlocked,
            };
            return Ok(KIterResult {
                throughput,
                periodicity,
                iterations: iteration,
                critical_tasks,
                history,
            });
        }

        dirty = apply_update(
            options.update_policy,
            &mut periodicity,
            repetition,
            &normalized,
        )?;
    }

    Err(AnalysisError::IterationLimitReached {
        iterations: max_iterations,
    })
}

/// The per-task values `q̄_t = q_t / gcd{q_{t'} : t' on the circuit}` for the
/// tasks of a critical circuit.
fn normalized_repetition(
    repetition: &RepetitionVector,
    critical_tasks: &[TaskId],
) -> Vec<(TaskId, u64)> {
    let gcd = critical_tasks
        .iter()
        .fold(0u64, |acc, &task| gcd_u64(acc, repetition.get(task)));
    let gcd = gcd.max(1);
    critical_tasks
        .iter()
        .map(|&task| (task, repetition.get(task) / gcd))
        .collect()
}

/// Theorem 4: the critical circuit certifies global optimality when every task
/// on it has a periodicity that is a multiple of its normalised repetition
/// count.
fn optimality_test(periodicity: &PeriodicityVector, normalized: &[(TaskId, u64)]) -> bool {
    normalized
        .iter()
        .all(|&(task, q_bar)| periodicity.get(task) % q_bar == 0)
}

/// Enlarges the periodicity vector after a failed optimality test and
/// reports the dirty set: the tasks whose `K_t` actually changed (the arena
/// patch only re-derives their node blocks and incident buffers).
fn apply_update(
    policy: KUpdatePolicy,
    periodicity: &mut PeriodicityVector,
    repetition: &RepetitionVector,
    normalized: &[(TaskId, u64)],
) -> Result<Vec<TaskId>, AnalysisError> {
    let mut dirty = Vec::new();
    match policy {
        KUpdatePolicy::CriticalCircuitLcm => {
            for &(task, q_bar) in normalized {
                let updated =
                    lcm_u64(periodicity.get(task), q_bar).map_err(|_| CsdfError::Overflow)?;
                if periodicity.raise(task, updated)? {
                    dirty.push(task);
                }
            }
        }
        KUpdatePolicy::FullRepetition => {
            let gcd = repetition
                .as_slice()
                .iter()
                .fold(0u64, |acc, &q| gcd_u64(acc, q))
                .max(1);
            for index in 0..periodicity.len() {
                let task = TaskId::new(index);
                if periodicity.raise(task, repetition.get(task) / gcd)? {
                    dirty.push(task);
                }
            }
        }
    }
    Ok(dirty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn multirate_ring(tokens: u64) -> CsdfGraph {
        // x produces 2 per firing, y consumes 1; feedback closes the loop.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 2, tokens);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        b.build().unwrap()
    }

    #[test]
    fn simple_ring_is_optimal_at_k_one() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        let g = b.build().unwrap();
        let result = optimal_throughput(&g).unwrap();
        assert_eq!(result.iterations, 1);
        assert_eq!(
            result.throughput,
            Throughput::Finite(Rational::new(1, 2).unwrap())
        );
        assert!(result.periodicity.is_unitary());
        assert_eq!(result.period(), Some(Rational::from_integer(2)));
    }

    #[test]
    fn multirate_ring_requires_growing_k() {
        // q = [1, 2]: the critical circuit mixes both tasks, so K_y has to
        // grow to 2 before the optimality test passes.
        let g = multirate_ring(4);
        let options = KIterOptions {
            record_history: true,
            ..KIterOptions::default()
        };
        let result = kiter_with_options(&g, &options).unwrap();
        assert!(matches!(result.throughput, Throughput::Finite(_)));
        assert!(!result.history.is_empty());
        // Whatever the path taken, the final vector satisfies Theorem 4.
        assert!(result.history.last().unwrap().optimal);
        // The optimal throughput of this graph is limited by x (duration 2,
        // once per iteration) and y (duration 1, twice per iteration,
        // serialised): period 2 per iteration of x / 2 firings of y.
        assert_eq!(
            result.throughput,
            Throughput::Finite(Rational::new(1, 2).unwrap())
        );
    }

    #[test]
    fn update_policies_agree_on_the_optimum() {
        let g = multirate_ring(3);
        let lcm_result = kiter_with_options(
            &g,
            &KIterOptions {
                update_policy: KUpdatePolicy::CriticalCircuitLcm,
                ..KIterOptions::default()
            },
        )
        .unwrap();
        let full_result = kiter_with_options(
            &g,
            &KIterOptions {
                update_policy: KUpdatePolicy::FullRepetition,
                ..KIterOptions::default()
            },
        )
        .unwrap();
        assert_eq!(lcm_result.throughput, full_result.throughput);
        assert!(full_result.iterations <= 2);
    }

    #[test]
    fn deadlocked_graph_is_detected() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        let result = optimal_throughput(&g).unwrap();
        assert_eq!(result.throughput, Throughput::Deadlocked);
    }

    #[test]
    fn acyclic_graph_is_unbounded() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 3, 2, 0);
        let g = b.build().unwrap();
        let result = optimal_throughput(&g).unwrap();
        assert_eq!(result.throughput, Throughput::Unbounded);
        assert!(result.critical_tasks.is_empty());
    }

    #[test]
    fn kiter_never_reports_less_than_the_periodic_bound() {
        use crate::analysis::evaluate_periodic;
        let g = multirate_ring(5);
        let periodic = evaluate_periodic(&g, &AnalysisOptions::default()).unwrap();
        let optimal = optimal_throughput(&g).unwrap();
        assert!(optimal.throughput >= periodic.throughput());
    }

    #[test]
    fn iteration_limit_is_reported() {
        let g = multirate_ring(4);
        let options = KIterOptions {
            analysis: AnalysisOptions {
                max_iterations: 1,
                ..AnalysisOptions::default()
            },
            ..KIterOptions::default()
        };
        match kiter_with_options(&g, &options) {
            Err(AnalysisError::IterationLimitReached { iterations: 1 }) => {}
            Ok(result) if result.iterations <= 1 => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn normalized_repetition_uses_circuit_gcd() {
        let q: RepetitionVector = vec![6u64, 12, 6, 1].into_iter().collect();
        let tasks = vec![TaskId::new(0), TaskId::new(2)];
        let normalized = normalized_repetition(&q, &tasks);
        assert_eq!(normalized, vec![(TaskId::new(0), 1), (TaskId::new(2), 1)]);
        let tasks = vec![TaskId::new(0), TaskId::new(3)];
        let normalized = normalized_repetition(&q, &tasks);
        assert_eq!(normalized, vec![(TaskId::new(0), 6), (TaskId::new(3), 1)]);
    }
}
