//! The event-graph arena: one long-lived bi-valued event graph that is
//! patched in place as the periodicity vector grows across K-Iter iterations.
//!
//! A K-Iter run evaluates a sequence of periodicity vectors that differ only
//! on the tasks of the latest critical circuit (Algorithm 1 raises `K_t` for
//! those tasks alone). Rebuilding the whole event graph per iteration
//! re-derives every Theorem-2 constraint — the dominant cost on large graphs
//! now that the MCR solve itself is fast. The arena instead keeps:
//!
//! * one [`TaskBlock`](crate::block::TaskBlock) per task (its expanded
//!   duration slice), re-derived only when that task's `K_t` changes;
//! * one cached arc list per buffer (block-local endpoints plus exact `L`/`H`
//!   values), re-derived only when the buffer's producer or consumer changed
//!   periodicity;
//! * the assembled [`RatioGraph`], re-emitted from the caches through the
//!   [`RatioGraph::reset`] grow/patch API so no per-node allocation happens.
//!
//! # Node layout: per-block slack
//!
//! Task blocks are laid out with power-of-two slack: block `t` occupies node
//! ids `[offset_t, offset_t + next_pow2(len_t))`, with only the first `len_t`
//! slots live. The layout is a pure function of the *current* block lengths,
//! so a patched arena and a from-scratch build at the same periodicity vector
//! produce bit-identical [`RatioGraph`]s (same numbering, same arc order,
//! same values) — the `PartialEq` contract below. The padding buys stability:
//! as long as no block crosses its power-of-two capacity, every offset is
//! unchanged and [`EventGraphArena::assemble`] can skip the `O(nodes)`
//! renumbering and, when the dirty buffers' arc counts are unchanged too,
//! patch the dirty arcs in place ([`RatioGraph::patch_arc_weights`] /
//! [`RatioGraph::patch_arc`]) instead of re-emitting all `O(arcs)` of them.
//! Marking-only re-evaluations — the in-place capacity mutations an analysis
//! session applies between solves — hit the cheapest path: weights-only
//! patches that keep the CSR adjacency current without a rebuild. Padding
//! slots are isolated nodes (no arcs), so they form acyclic singleton SCCs
//! the MCR solver skips; [`EventGraphArena::node_count`] keeps reporting the
//! *live* node count.
//!
//! # Time scaling
//!
//! The paper bi-values arcs with `H(e) = −β̃ / (ĩ_a · q̃_t)` where
//! `ĩ_a · q̃_t = i_b · q_t · lcm(K)`. The `lcm(K)` factor is common to every
//! arc, so it scales all circuit ratios uniformly by `1/lcm(K)` — and it
//! changes whenever *any* task's periodicity changes, which would invalidate
//! every cached arc. The arena therefore stores the **lcm-free** time
//! `H(e) = −β̃ / (i_b · q_t)`: the denominator is K-invariant (consistency
//! gives `i_b · q_t = o_b · q_{t'}`), cached arcs of untouched buffers stay
//! bit-identical across updates, and the maximum cycle ratio of the stored
//! graph is directly the *normalised* period `Ω_G` of Theorem 3 (the
//! transformed period is recovered as `Ω*_{G̃} = Ω_G · lcm(K)`). Circuit-time
//! signs, and hence the feasible/infeasible/unconstrained classification, are
//! unchanged by the positive scaling. All arithmetic stays exact.

use std::collections::BTreeSet;

use csdf::{CsdfGraph, RepetitionVector, TaskId};
use mcr::{ArcId, CancelToken, CriticalCycle, NodeId, RatioGraph};

use crate::block::TaskBlock;
use crate::constraints::{emit_buffer_arcs_tiled, BufferArc};
use crate::error::AnalysisError;
use crate::event_graph::{EventGraphLimits, EventNode};
use crate::periodicity::PeriodicityVector;

/// How [`EventGraphArena::assemble`] refreshed the ratio graph during one
/// update (cheapest applicable path wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssembleMode {
    /// The node layout changed (a block crossed its power-of-two capacity):
    /// offsets, the node list and every arc were re-derived.
    #[default]
    Renumbered,
    /// The node layout was kept but a dirty buffer's arc count changed: all
    /// arcs were re-emitted into the existing slots (no node work).
    Reemitted,
    /// Node layout and arc slots both kept: only the dirty buffers' arcs
    /// were patched in place — and when no endpoint moved, the CSR adjacency
    /// stayed current without a rebuild.
    Patched,
}

/// Statistics of one [`EventGraphArena::apply_update`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaUpdate {
    /// Tasks whose periodicity changed and whose node blocks were re-derived.
    pub dirty_tasks: usize,
    /// Buffers whose constraint arcs were re-derived.
    pub rebuilt_buffers: usize,
    /// Buffers whose cached arcs were kept.
    pub reused_buffers: usize,
    /// Buffers re-derived (solely or additionally) because their initial
    /// marking changed since the previous update — the in-place capacity
    /// mutations an analysis session applies between evaluations.
    pub marking_dirty_buffers: usize,
    /// Which assembly path refreshed the ratio graph.
    pub assemble: AssembleMode,
    /// Arcs patched in place (non-zero only on the
    /// [`AssembleMode::Patched`] path).
    pub patched_arcs: usize,
}

/// A bi-valued event graph that lives across periodicity updates.
///
/// Built once with [`EventGraphArena::build`], then patched with
/// [`EventGraphArena::apply_update`] whenever the periodicity vector changes;
/// the patched graph is bit-identical (node numbering, arc order, `L`/`H`
/// values) to a from-scratch build at the same vector.
///
/// An arena is bound to the graph it was built from; driving it with a
/// different [`CsdfGraph`] is a contract violation (task/buffer-count
/// mismatches are detected, other mismatches are not).
///
/// If `build` or `apply_update` returns an error, the arena may be left
/// partially updated and must be discarded (it stays memory-safe, but its
/// accessors no longer describe a consistent event graph).
#[derive(Debug, Clone)]
pub struct EventGraphArena {
    limits: EventGraphLimits,
    /// *Structural* fingerprint of the graph this arena was built from
    /// (tasks, durations, buffer endpoints and rates — everything except the
    /// initial markings), so a caller switching graphs (even to one with the
    /// same task/buffer counts) is detected instead of silently reusing
    /// stale caches. Markings are tracked separately in `initial_tokens`:
    /// they are a *patchable* input (Theorem-2 arc weights β), not part of
    /// the structure.
    fingerprint: u64,
    lcm_k: u64,
    blocks: Vec<TaskBlock>,
    nodes: Vec<EventNode>,
    ratio: RatioGraph,
    /// Per-task padded block sizes (`next_pow2(len)`) of the current node
    /// layout; empty until the first assembly. The layout is current while
    /// every block still satisfies `capacity == next_pow2(len)`.
    capacities: Vec<usize>,
    /// Live (non-padding) node count of the current layout.
    live_nodes: usize,
    /// Start of each buffer's arc segment in the flat arc vector (one extra
    /// trailing entry holds the total), valid for the current emission.
    arc_seg_start: Vec<u32>,
    /// Cached constraint arcs, indexed by buffer id.
    buffer_arcs: Vec<Vec<BufferArc>>,
    /// K-invariant time denominators `i_b · q_t`, indexed by buffer id.
    buffer_denominator: Vec<i128>,
    /// The initial markings the cached arcs were derived at, indexed by
    /// buffer id; `apply_update` diffs the graph against this to find the
    /// buffers dirtied by in-place token/capacity mutations.
    initial_tokens: Vec<u64>,
    // Scratch reused across updates (per-producer-phase consumer matches of
    // the tiled constraint emission).
    phase_scratch: Vec<u32>,
}

impl EventGraphArena {
    /// Builds the event graph of `graph` for the periodicity vector `k`,
    /// from scratch.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Model`] for inconsistent graphs, invalid `K`, or
    ///   arithmetic overflow;
    /// * [`AnalysisError::EventGraphTooLarge`] when the limits are exceeded.
    pub fn build(
        graph: &CsdfGraph,
        repetition: &RepetitionVector,
        k: &PeriodicityVector,
        limits: &EventGraphLimits,
    ) -> Result<Self, AnalysisError> {
        Self::build_with_cancel(graph, repetition, k, limits, &CancelToken::default())
    }

    /// [`EventGraphArena::build`] with a cancellation token polled once per
    /// buffer rebuild; a cancelled build returns
    /// [`AnalysisError::DeadlineExceeded`].
    ///
    /// # Errors
    ///
    /// Same as [`EventGraphArena::build`], plus
    /// [`AnalysisError::DeadlineExceeded`] on cancellation.
    pub fn build_with_cancel(
        graph: &CsdfGraph,
        repetition: &RepetitionVector,
        k: &PeriodicityVector,
        limits: &EventGraphLimits,
        cancel: &CancelToken,
    ) -> Result<Self, AnalysisError> {
        validate_periodicity(graph, k)?;
        let lcm_k = k.lcm()?;

        // Enforce the cumulative node limit *while* expanding, so a graph
        // over the limit errors out before allocating every duration slice.
        let mut blocks = Vec::with_capacity(graph.task_count());
        let mut total_nodes = 0usize;
        for (task_id, task) in graph.tasks() {
            total_nodes =
                check_node_total(total_nodes, task.phase_count(), k.get(task_id), limits)?;
            blocks.push(TaskBlock::build(task.durations(), k.get(task_id)));
        }

        let mut buffer_denominator = Vec::with_capacity(graph.buffer_count());
        for (_, buffer) in graph.buffers() {
            // i_b · q_t (= o_b · q_{t'} by consistency): the K-invariant part
            // of the paper's denominator; see the module docs for the scaling.
            let denominator = (buffer.total_production() as i128)
                .checked_mul(repetition.get(buffer.source()) as i128)
                .ok_or(AnalysisError::Model(csdf::CsdfError::Overflow))?;
            buffer_denominator.push(denominator);
        }

        let mut arena = EventGraphArena {
            limits: *limits,
            fingerprint: graph_fingerprint(graph),
            lcm_k,
            blocks,
            nodes: Vec::new(),
            ratio: RatioGraph::default(),
            capacities: Vec::new(),
            live_nodes: 0,
            arc_seg_start: Vec::new(),
            buffer_arcs: vec![Vec::new(); graph.buffer_count()],
            buffer_denominator,
            initial_tokens: graph.buffers().map(|(_, b)| b.initial_tokens()).collect(),
            phase_scratch: Vec::new(),
        };
        let mut total_arcs = 0usize;
        for (buffer_id, _) in graph.buffers() {
            if cancel.is_cancelled() {
                return Err(AnalysisError::DeadlineExceeded);
            }
            arena.rebuild_buffer(graph, buffer_id.index(), k)?;
            total_arcs += arena.buffer_arcs[buffer_id.index()].len();
            check_arc_total(total_arcs, limits)?;
        }
        arena.assemble(graph, None)?;
        Ok(arena)
    }

    /// Patches the arena for a new periodicity vector and/or mutated initial
    /// markings: only the node blocks of tasks whose `K_t` changed and the
    /// constraint arcs of their incident buffers — plus the arcs of buffers
    /// whose marking was mutated in place ([`CsdfGraph::set_initial_tokens`]
    /// / [`CsdfGraph::set_capacity`]) — are re-derived; every other block,
    /// arc, and duration slice is kept, and the ratio graph is re-assembled
    /// in place from the caches. Marking changes can never dirty a node
    /// block: tokens only enter the Theorem-2 arc weights `β`, never the
    /// event-graph node structure.
    ///
    /// The dirty sets are always detected by comparing the new vector
    /// against the blocks' current periodicities and the graph's markings
    /// against the cached ones — O(tasks + buffers) scans that cannot be
    /// fooled. `dirty_hint` (the tasks the K-Iter update rule reports as
    /// raised) is advisory: it is cross-checked against the detected set in
    /// debug builds and never trusted for correctness.
    ///
    /// # Errors
    ///
    /// Same as [`EventGraphArena::build`], plus
    /// [`AnalysisError::ArenaGraphMismatch`] when `graph` is not
    /// structurally the graph this arena was built from. After an error the
    /// arena must be discarded.
    pub fn apply_update(
        &mut self,
        graph: &CsdfGraph,
        k: &PeriodicityVector,
        dirty_hint: Option<&[TaskId]>,
    ) -> Result<ArenaUpdate, AnalysisError> {
        self.apply_update_with_cancel(graph, k, dirty_hint, &CancelToken::default())
    }

    /// [`EventGraphArena::apply_update`] with a cancellation token polled
    /// once per dirty-buffer rebuild; a cancelled patch returns
    /// [`AnalysisError::DeadlineExceeded`] (and, like any other patch error,
    /// leaves the arena to be discarded by the caller).
    ///
    /// # Errors
    ///
    /// Same as [`EventGraphArena::apply_update`], plus
    /// [`AnalysisError::DeadlineExceeded`] on cancellation.
    pub fn apply_update_with_cancel(
        &mut self,
        graph: &CsdfGraph,
        k: &PeriodicityVector,
        dirty_hint: Option<&[TaskId]>,
        cancel: &CancelToken,
    ) -> Result<ArenaUpdate, AnalysisError> {
        validate_periodicity(graph, k)?;
        if !self.matches_structure(graph) {
            return Err(AnalysisError::ArenaGraphMismatch);
        }
        self.lcm_k = k.lcm()?;

        // Collect the dirty tasks by comparison (sorted and unique by
        // construction).
        let mut dirty_tasks: Vec<TaskId> = Vec::new();
        for task in graph.task_ids() {
            if self.blocks[task.index()].k != k.get(task) {
                dirty_tasks.push(task);
            }
        }
        if let Some(hint) = dirty_hint {
            debug_assert!(
                dirty_tasks.iter().all(|task| hint.contains(task)),
                "dirty hint misses a task whose periodicity changed"
            );
        }

        // Enforce the cumulative node limit on the *prospective* sizes before
        // any block is re-expanded (and before its memory is allocated).
        let kept: usize = self.nodes.len()
            - dirty_tasks
                .iter()
                .map(|task| self.blocks[task.index()].len())
                .sum::<usize>();
        let mut total_nodes = kept;
        for &task in &dirty_tasks {
            total_nodes = check_node_total(
                total_nodes,
                graph.task(task).phase_count(),
                k.get(task),
                &self.limits,
            )?;
        }

        let mut dirty_buffers: BTreeSet<usize> = BTreeSet::new();
        for &task in &dirty_tasks {
            self.blocks[task.index()].rebuild(graph.task(task).durations(), k.get(task));
            for &buffer in graph.outgoing(task) {
                dirty_buffers.insert(buffer.index());
            }
            for &buffer in graph.incoming(task) {
                dirty_buffers.insert(buffer.index());
            }
        }
        // Buffers whose marking was mutated in place since the cached arcs
        // were derived: only their β values (arc weights) change, so they
        // join the rebuild set without dirtying any node block.
        let mut marking_dirty_buffers = 0usize;
        for (buffer_id, buffer) in graph.buffers() {
            if self.initial_tokens[buffer_id.index()] != buffer.initial_tokens() {
                marking_dirty_buffers += 1;
                dirty_buffers.insert(buffer_id.index());
            }
        }

        for &buffer_index in &dirty_buffers {
            if cancel.is_cancelled() {
                return Err(AnalysisError::DeadlineExceeded);
            }
            self.rebuild_buffer(graph, buffer_index, k)?;
        }
        let total_arcs: usize = self.buffer_arcs.iter().map(Vec::len).sum();
        check_arc_total(total_arcs, &self.limits)?;
        let (assemble, patched_arcs) = self.assemble(graph, Some(&dirty_buffers))?;

        Ok(ArenaUpdate {
            dirty_tasks: dirty_tasks.len(),
            rebuilt_buffers: dirty_buffers.len(),
            reused_buffers: self.buffer_arcs.len() - dirty_buffers.len(),
            marking_dirty_buffers,
            assemble,
            patched_arcs,
        })
    }

    /// Re-derives the cached constraint arcs of one buffer at the current
    /// periodicity (Theorem-2 constraints over the K-tiled rate vectors,
    /// bi-values) through the output-sensitive tiled emission — the expanded
    /// vectors are never materialised and only the useful phase pairs are
    /// visited.
    fn rebuild_buffer(
        &mut self,
        graph: &CsdfGraph,
        buffer_index: usize,
        k: &PeriodicityVector,
    ) -> Result<(), AnalysisError> {
        let buffer = graph.buffer(csdf::BufferId::new(buffer_index));
        self.initial_tokens[buffer_index] = buffer.initial_tokens();
        emit_buffer_arcs_tiled(
            buffer.production(),
            k.get(buffer.source()),
            buffer.consumption(),
            k.get(buffer.target()),
            buffer.initial_tokens(),
            &self.blocks[buffer.source().index()].durations,
            self.buffer_denominator[buffer_index],
            &mut self.phase_scratch,
            &mut self.buffer_arcs[buffer_index],
        )
        .map_err(AnalysisError::Model)
    }

    /// Recomputes the ratio graph from the per-task and per-buffer caches,
    /// taking the cheapest applicable path (see [`AssembleMode`]): a full
    /// renumber when a block crossed its power-of-two capacity, a
    /// layout-preserving arc re-emission when a dirty buffer's arc count
    /// changed, and an in-place patch of just the dirty buffers' arcs
    /// otherwise. `dirty` is the set of buffers whose cached arcs were
    /// re-derived since the last assembly (`None` forces the full path).
    /// Every path produces the same graph bit for bit — the layout is a pure
    /// function of the current block lengths.
    fn assemble(
        &mut self,
        graph: &CsdfGraph,
        dirty: Option<&BTreeSet<usize>>,
    ) -> Result<(AssembleMode, usize), AnalysisError> {
        // The node limit applies to *live* nodes, matching the incremental
        // checks of `build`/`apply_update`; padding slots are free.
        let mut live_nodes = 0usize;
        for block in &self.blocks {
            live_nodes += block.len();
            if live_nodes > self.limits.max_nodes {
                return Err(AnalysisError::EventGraphTooLarge {
                    nodes: live_nodes,
                    limit: self.limits.max_nodes,
                });
            }
        }
        self.live_nodes = live_nodes;

        let layout_current = self.capacities.len() == self.blocks.len()
            && self
                .blocks
                .iter()
                .zip(&self.capacities)
                .all(|(block, &capacity)| block.len().next_power_of_two() == capacity);
        let Some(dirty) = dirty.filter(|_| layout_current) else {
            self.renumber();
            self.emit_arcs(graph);
            return Ok((AssembleMode::Renumbered, 0));
        };

        // The in-place patch needs every dirty buffer to keep its arc-slot
        // count; otherwise later segments would shift.
        let slots_stable = dirty.iter().all(|&buffer| {
            let start = self.arc_seg_start[buffer] as usize;
            let end = self.arc_seg_start[buffer + 1] as usize;
            end - start == self.buffer_arcs[buffer].len()
        });
        if !slots_stable {
            self.emit_arcs(graph);
            return Ok((AssembleMode::Reemitted, 0));
        }

        let mut patched = 0usize;
        for &buffer_index in dirty {
            let buffer = graph.buffer(csdf::BufferId::new(buffer_index));
            let from_base = self.blocks[buffer.source().index()].offset;
            let to_base = self.blocks[buffer.target().index()].offset;
            let segment = self.arc_seg_start[buffer_index] as usize;
            for (slot, arc) in self.buffer_arcs[buffer_index].iter().enumerate() {
                let id = ArcId::new(segment + slot);
                let from = NodeId::new(from_base + arc.producer_phase as usize);
                let to = NodeId::new(to_base + arc.consumer_phase as usize);
                let current = self.ratio.arc(id);
                if current.from == from && current.to == to {
                    if current.cost != arc.cost || current.time != arc.time {
                        self.ratio.patch_arc_weights(id, arc.cost, arc.time);
                        patched += 1;
                    }
                } else {
                    self.ratio.patch_arc(id, from, to, arc.cost, arc.time);
                    patched += 1;
                }
            }
        }
        // Weights-only patches keep a current CSR current (no-op rebuild);
        // an endpoint move costs exactly one counting sort.
        self.ratio.rebuild_adjacency();
        Ok((AssembleMode::Patched, patched))
    }

    /// Recomputes the padded node layout — per-block capacities
    /// (`next_pow2(len)`), offsets and the node list — from the current
    /// block lengths. Padding slots carry their in-block slot index as a
    /// phase; they never gain arcs.
    fn renumber(&mut self) {
        self.capacities.clear();
        self.capacities.extend(
            self.blocks
                .iter()
                .map(|block| block.len().next_power_of_two()),
        );
        let mut total = 0usize;
        for (block, &capacity) in self.blocks.iter_mut().zip(&self.capacities) {
            block.offset = total;
            total += capacity;
        }
        self.nodes.clear();
        self.nodes.reserve(total);
        for (index, &capacity) in self.capacities.iter().enumerate() {
            let task = TaskId::new(index);
            for phase in 0..capacity {
                self.nodes.push(EventNode { task, phase });
            }
        }
    }

    /// Re-emits every cached arc into the ratio graph (reset in place,
    /// allocations kept) in buffer order — exactly the order of a
    /// from-scratch build — and refreshes the per-buffer segment index.
    fn emit_arcs(&mut self, graph: &CsdfGraph) {
        let total_nodes: usize = self.capacities.iter().sum();
        let total_arcs: usize = self.buffer_arcs.iter().map(Vec::len).sum();
        self.ratio.reset(total_nodes);
        self.ratio.reserve_arcs(total_arcs);
        self.arc_seg_start.clear();
        self.arc_seg_start.reserve(self.buffer_arcs.len() + 1);
        let mut emitted = 0u32;
        for (buffer_id, buffer) in graph.buffers() {
            self.arc_seg_start.push(emitted);
            let from_base = self.blocks[buffer.source().index()].offset;
            let to_base = self.blocks[buffer.target().index()].offset;
            for arc in &self.buffer_arcs[buffer_id.index()] {
                self.ratio.add_arc(
                    NodeId::new(from_base + arc.producer_phase as usize),
                    NodeId::new(to_base + arc.consumer_phase as usize),
                    arc.cost,
                    arc.time,
                );
                emitted += 1;
            }
        }
        self.arc_seg_start.push(emitted);
        // One counting-sort pass refreshes the CSR adjacency in place (both
        // index arrays keep their allocation across resets), so the MCR
        // solver can borrow it instead of building its own.
        self.ratio.rebuild_adjacency();
    }

    /// The underlying bi-valued ratio graph (lcm-free time scaling: its
    /// maximum cycle ratio is the normalised period `Ω_G`).
    pub fn ratio_graph(&self) -> &RatioGraph {
        &self.ratio
    }

    /// Number of live execution nodes. The backing ratio graph is larger —
    /// `ratio_graph().node_count()` includes the isolated padding slots of
    /// the power-of-two block layout (see the module docs).
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of tasks of the CSDF graph this arena was built from.
    pub fn task_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of buffers of the CSDF graph this arena was built from.
    pub fn buffer_count(&self) -> usize {
        self.buffer_arcs.len()
    }

    /// Whether `graph` is *structurally* the graph this arena was built
    /// from: same tasks, durations, buffer endpoints and rates — initial
    /// markings excluded. This is what [`EventGraphArena::apply_update`]
    /// requires: marking differences are a patchable input (the arena
    /// re-derives exactly the mutated buffers' arcs), so the
    /// [`EvaluationPipeline`](crate::EvaluationPipeline) keeps reusing an
    /// arena across the in-place token/capacity mutations of an analysis
    /// session and only falls back to a from-scratch build when the
    /// structure itself changes.
    pub fn matches_structure(&self, graph: &CsdfGraph) -> bool {
        self.blocks.len() == graph.task_count()
            && self.buffer_arcs.len() == graph.buffer_count()
            && self.fingerprint == graph_fingerprint(graph)
    }

    /// Whether `graph` is identical to the graph the cached arcs were last
    /// derived from: [`EventGraphArena::matches_structure`] *and* the same
    /// initial markings (a patch would be a no-op for the buffers).
    pub fn matches_graph(&self, graph: &CsdfGraph) -> bool {
        self.matches_structure(graph)
            && graph
                .buffers()
                .zip(&self.initial_tokens)
                .all(|((_, buffer), &cached)| buffer.initial_tokens() == cached)
    }

    /// Number of constraint arcs.
    pub fn arc_count(&self) -> usize {
        self.ratio.arc_count()
    }

    /// `lcm(K)` of the periodicity vector of the current event graph.
    pub fn lcm_k(&self) -> u64 {
        self.lcm_k
    }

    /// The execution represented by an event-graph node.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this event graph.
    pub fn event(&self, node: NodeId) -> EventNode {
        self.nodes[node.index()]
    }

    /// Event-graph node of the `phase`-th transformed execution of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` or `phase` is out of range.
    pub fn node_of(&self, task: TaskId, phase: usize) -> NodeId {
        let block = &self.blocks[task.index()];
        assert!(phase < block.len());
        NodeId::new(block.offset + phase)
    }

    /// Duration of the `phase`-th transformed execution of `task`.
    pub fn duration_of(&self, task: TaskId, phase: usize) -> u64 {
        self.blocks[task.index()].durations[phase]
    }

    /// Number of transformed phases (`K_t · ϕ(t)`) of `task`.
    pub fn phase_count_of(&self, task: TaskId) -> usize {
        self.blocks[task.index()].len()
    }

    /// The periodicity `K_t` the current event graph uses for `task`.
    pub fn periodicity_of(&self, task: TaskId) -> u64 {
        self.blocks[task.index()].k
    }

    /// The set of tasks whose executions appear on a critical circuit.
    pub fn tasks_on_cycle(&self, cycle: &CriticalCycle) -> BTreeSet<TaskId> {
        cycle
            .nodes
            .iter()
            .map(|&node| self.event(node).task)
            .collect()
    }
}

/// FNV-1a hash over the *structure* the arena caches depend on: task
/// durations and, per buffer, endpoints and rates. Initial markings are
/// deliberately excluded — they are diffed exactly against the arena's
/// `initial_tokens` cache so in-place token mutations patch instead of
/// invalidating. Collisions are astronomically unlikely and the check is
/// advisory hardening (passing a *different but colliding* graph is outside
/// the API contract anyway). Public as
/// [`structure_fingerprint`](crate::structure_fingerprint): the session
/// pool routes graphs to warm arenas by this value.
pub(crate) fn graph_fingerprint(graph: &CsdfGraph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mix = |hash: &mut u64, value: u64| {
        *hash ^= value;
        *hash = hash.wrapping_mul(PRIME);
    };
    mix(&mut hash, graph.task_count() as u64);
    for (_, task) in graph.tasks() {
        mix(&mut hash, task.phase_count() as u64);
        for &duration in task.durations() {
            mix(&mut hash, duration);
        }
    }
    mix(&mut hash, graph.buffer_count() as u64);
    for (_, buffer) in graph.buffers() {
        mix(&mut hash, buffer.source().index() as u64);
        mix(&mut hash, buffer.target().index() as u64);
        for &rate in buffer.production() {
            mix(&mut hash, rate);
        }
        for &rate in buffer.consumption() {
            mix(&mut hash, rate);
        }
    }
    hash
}

fn validate_periodicity(graph: &CsdfGraph, k: &PeriodicityVector) -> Result<(), AnalysisError> {
    if k.len() != graph.task_count() {
        return Err(AnalysisError::Model(
            csdf::CsdfError::InvalidPeriodicityVector {
                expected: graph.task_count(),
                actual: k.len(),
            },
        ));
    }
    Ok(())
}

/// Adds one task's prospective block size (`K_t · ϕ(t)`) to a running node
/// total, rejecting it against the limit *before* the block's duration slice
/// is allocated. Returns the new total.
fn check_node_total(
    total_nodes: usize,
    phase_count: usize,
    k: u64,
    limits: &EventGraphLimits,
) -> Result<usize, AnalysisError> {
    let total = (total_nodes as u128) + (phase_count as u128) * (k as u128);
    if total > limits.max_nodes as u128 {
        return Err(AnalysisError::EventGraphTooLarge {
            nodes: total.min(usize::MAX as u128) as usize,
            limit: limits.max_nodes,
        });
    }
    Ok(total as usize)
}

fn check_arc_total(total_arcs: usize, limits: &EventGraphLimits) -> Result<(), AnalysisError> {
    if total_arcs > limits.max_arcs {
        return Err(AnalysisError::EventGraphTooLarge {
            nodes: total_arcs,
            limit: limits.max_arcs,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn multirate() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 2]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![2, 1], vec![1], 0);
        b.add_buffer(y, x, vec![1], vec![2, 1], 6);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        b.build().unwrap()
    }

    #[test]
    fn patched_arena_is_bit_identical_to_a_fresh_build() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let limits = EventGraphLimits::default();
        let mut k = PeriodicityVector::unitary(&g);
        let mut arena = EventGraphArena::build(&g, &q, &k, &limits).unwrap();

        // Raise K for one task, patch, and compare against a scratch build.
        k.set(TaskId::new(1), 3).unwrap();
        let update = arena.apply_update(&g, &k, Some(&[TaskId::new(1)])).unwrap();
        assert_eq!(update.dirty_tasks, 1);
        assert!(update.rebuilt_buffers >= 1);
        assert!(update.reused_buffers >= 1);

        let fresh = EventGraphArena::build(&g, &q, &k, &limits).unwrap();
        assert_eq!(arena.ratio_graph(), fresh.ratio_graph());
        assert_eq!(arena.node_count(), fresh.node_count());
        assert_eq!(arena.lcm_k(), fresh.lcm_k());
    }

    #[test]
    fn update_without_hint_detects_changes_by_comparison() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let limits = EventGraphLimits::default();
        let mut arena =
            EventGraphArena::build(&g, &q, &PeriodicityVector::unitary(&g), &limits).unwrap();
        let k = PeriodicityVector::from_entries(&g, vec![2, 2]).unwrap();
        let update = arena.apply_update(&g, &k, None).unwrap();
        assert_eq!(update.dirty_tasks, 2);
        assert_eq!(update.reused_buffers, 0);
        let fresh = EventGraphArena::build(&g, &q, &k, &limits).unwrap();
        assert_eq!(arena.ratio_graph(), fresh.ratio_graph());
    }

    #[test]
    fn noop_update_reuses_everything() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let mut arena = EventGraphArena::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();
        let before = arena.ratio_graph().clone();
        let update = arena.apply_update(&g, &k, None).unwrap();
        assert_eq!(update.dirty_tasks, 0);
        assert_eq!(update.rebuilt_buffers, 0);
        assert_eq!(arena.ratio_graph(), &before);
    }

    #[test]
    fn update_against_a_different_graph_is_refused() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let k = PeriodicityVector::unitary(&g);
        let mut arena = EventGraphArena::build(&g, &q, &k, &EventGraphLimits::default()).unwrap();

        // Same shape, different *duration*: caught by the structural
        // fingerprint.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 3]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![2, 1], vec![1], 0);
        b.add_buffer(y, x, vec![1], vec![2, 1], 6);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let other = b.build().unwrap();
        assert!(arena.matches_graph(&g));
        assert!(arena.matches_structure(&g));
        assert!(!arena.matches_structure(&other));
        let k_other = PeriodicityVector::unitary(&other);
        assert!(matches!(
            arena.apply_update(&other, &k_other, None),
            Err(AnalysisError::ArenaGraphMismatch)
        ));
    }

    #[test]
    fn marking_mutation_patches_only_the_mutated_buffer() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let limits = EventGraphLimits::default();
        let k = PeriodicityVector::unitary(&g);
        let mut arena = EventGraphArena::build(&g, &q, &k, &limits).unwrap();

        // Mutate the feedback buffer's marking in place: same structure,
        // different marking — a patchable input, not a graph switch.
        let mut mutated = g.clone();
        mutated
            .set_initial_tokens(csdf::BufferId::new(1), 9)
            .unwrap();
        assert!(arena.matches_structure(&mutated));
        assert!(!arena.matches_graph(&mutated));

        let update = arena.apply_update(&mutated, &k, None).unwrap();
        assert_eq!(update.dirty_tasks, 0);
        assert_eq!(update.marking_dirty_buffers, 1);
        assert_eq!(update.rebuilt_buffers, 1);
        assert_eq!(update.reused_buffers, 3);

        let fresh = EventGraphArena::build(&mutated, &q, &k, &limits).unwrap();
        assert_eq!(arena.ratio_graph(), fresh.ratio_graph());
        assert!(arena.matches_graph(&mutated));

        // A combined K + marking update re-derives the union of both dirty
        // sets and stays bit-identical too.
        let mut k2 = k.clone();
        k2.set(TaskId::new(1), 2).unwrap();
        mutated
            .set_initial_tokens(csdf::BufferId::new(0), 5)
            .unwrap();
        let update = arena.apply_update(&mutated, &k2, None).unwrap();
        assert_eq!(update.dirty_tasks, 1);
        assert_eq!(update.marking_dirty_buffers, 1);
        let fresh = EventGraphArena::build(&mutated, &q, &k2, &limits).unwrap();
        assert_eq!(arena.ratio_graph(), fresh.ratio_graph());
    }

    #[test]
    fn marking_only_update_patches_arcs_in_place() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let limits = EventGraphLimits::default();
        let k = PeriodicityVector::unitary(&g);
        let mut arena = EventGraphArena::build(&g, &q, &k, &limits).unwrap();

        // A pure marking mutation keeps the layout and (here) every arc
        // count, so the assembly must take the in-place patch path — no
        // renumbering, no full arc re-emission — and still match a fresh
        // build bit for bit.
        let mut mutated = g.clone();
        mutated
            .set_initial_tokens(csdf::BufferId::new(1), 7)
            .unwrap();
        let update = arena.apply_update(&mutated, &k, None).unwrap();
        assert_eq!(update.assemble, AssembleMode::Patched);
        assert!(update.patched_arcs > 0);
        assert!(arena.ratio_graph().adjacency_current());

        let fresh = EventGraphArena::build(&mutated, &q, &k, &limits).unwrap();
        assert_eq!(arena.ratio_graph(), fresh.ratio_graph());
    }

    #[test]
    fn padded_layout_keeps_live_counts_and_lookups() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let limits = EventGraphLimits::default();
        let mut k = PeriodicityVector::unitary(&g);
        k.set(TaskId::new(1), 3).unwrap();
        let arena = EventGraphArena::build(&g, &q, &k, &limits).unwrap();

        // Task 0: 2 phases at K=1 → block of 2, capacity 2. Task 1: 1 phase
        // at K=3 → block of 3, capacity 4. Live = 5, padded = 6.
        assert_eq!(arena.node_count(), 5);
        assert_eq!(arena.ratio_graph().node_count(), 6);
        for task in [TaskId::new(0), TaskId::new(1)] {
            for phase in 0..arena.phase_count_of(task) {
                let node = arena.node_of(task, phase);
                assert_eq!(arena.event(node), EventNode { task, phase });
            }
        }
    }

    #[test]
    fn random_update_sequences_stay_bit_identical_to_fresh_builds() {
        // Drive one arena through a random mix of periodicity raises and
        // marking mutations; after every patch the ratio graph must equal a
        // from-scratch build at the same state, whatever assembly path ran.
        let mut state = 0x4bcd_17a3_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let base = multirate();
        let q = base.repetition_vector().unwrap();
        let limits = EventGraphLimits::default();
        let mut graph = base.clone();
        let mut k = PeriodicityVector::unitary(&graph);
        let mut arena = EventGraphArena::build(&graph, &q, &k, &limits).unwrap();
        let mut saw = [false; 3];
        for _ in 0..60 {
            if next() % 2 == 0 {
                let task = TaskId::new((next() % 2) as usize);
                let raised = k.get(task) + 1 + next() % 2;
                k.set(task, raised).unwrap();
            } else {
                let buffer = csdf::BufferId::new((next() % 2) as usize);
                graph.set_initial_tokens(buffer, next() % 12).unwrap();
            }
            let update = arena.apply_update(&graph, &k, None).unwrap();
            saw[match update.assemble {
                AssembleMode::Renumbered => 0,
                AssembleMode::Reemitted => 1,
                AssembleMode::Patched => 2,
            }] = true;
            let fresh = EventGraphArena::build(&graph, &q, &k, &limits).unwrap();
            assert_eq!(arena.ratio_graph(), fresh.ratio_graph());
            assert_eq!(arena.node_count(), fresh.node_count());
            assert_eq!(arena.lcm_k(), fresh.lcm_k());
            assert!(arena.ratio_graph().adjacency_current());
        }
        assert!(
            saw[0] && saw[2],
            "sequence exercised renumber and patch paths: {saw:?}"
        );
    }

    #[test]
    fn update_enforces_the_node_limit() {
        let g = multirate();
        let q = g.repetition_vector().unwrap();
        let limits = EventGraphLimits {
            max_nodes: 4,
            max_arcs: 1000,
        };
        let mut arena =
            EventGraphArena::build(&g, &q, &PeriodicityVector::unitary(&g), &limits).unwrap();
        let k = PeriodicityVector::from_entries(&g, vec![4, 4]).unwrap();
        assert!(matches!(
            arena.apply_update(&g, &k, None),
            Err(AnalysisError::EventGraphTooLarge { .. })
        ));
    }
}
