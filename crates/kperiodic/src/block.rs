//! Per-task node blocks of the event-graph arena.
//!
//! The event graph has one contiguous block of `K_t · ϕ(t)` nodes per task
//! (the executions of the transformed graph `G̃`). A [`TaskBlock`] owns the
//! expanded duration slice of one task together with its current periodicity
//! and its first node index; the arena re-derives a block only when the
//! task's periodicity changes and re-bases offsets when earlier blocks grow.

/// The node block of one task: its periodicity, the index of its first event
/// node, and the expanded per-phase durations (`[d(t)]^{K_t}`, Section 3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TaskBlock {
    /// The periodicity `K_t` this block was expanded for.
    pub k: u64,
    /// Index of the block's first node in the event graph.
    pub offset: usize,
    /// Expanded durations, one per transformed phase (`K_t · ϕ(t)` entries).
    pub durations: Vec<u64>,
}

impl TaskBlock {
    /// Builds the block of a task from its base durations and periodicity.
    pub fn build(base_durations: &[u64], k: u64) -> TaskBlock {
        let mut block = TaskBlock {
            k,
            offset: 0,
            durations: Vec::new(),
        };
        block.rebuild(base_durations, k);
        block
    }

    /// Re-expands the block for a new periodicity, reusing the allocation.
    pub fn rebuild(&mut self, base_durations: &[u64], k: u64) {
        self.k = k;
        crate::constraints::duplicate_rates_into(&mut self.durations, base_durations, k);
    }

    /// Number of event nodes in this block (`K_t · ϕ(t)`).
    pub fn len(&self) -> usize {
        self.durations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_expands_durations_k_times() {
        let block = TaskBlock::build(&[2, 5], 3);
        assert_eq!(block.k, 3);
        assert_eq!(block.durations, vec![2, 5, 2, 5, 2, 5]);
        assert_eq!(block.len(), 6);
    }

    #[test]
    fn rebuild_reuses_the_allocation() {
        let mut block = TaskBlock::build(&[1, 2, 3], 4);
        let capacity = block.durations.capacity();
        block.rebuild(&[1, 2, 3], 2);
        assert_eq!(block.durations, vec![1, 2, 3, 1, 2, 3]);
        assert!(block.durations.capacity() >= capacity.min(6));
        block.rebuild(&[7], 1);
        assert_eq!(block.durations, vec![7]);
        assert_eq!(block.k, 1);
    }
}
