//! The running example of the paper (Figure 2), reconstructed.
//!
//! The PDF text extraction garbles the exact rate and marking labels of
//! Figure 2 (the values as extracted do not form a consistent graph), so this
//! module ships a *reconstruction*: four tasks `A, B, C, D` with the same
//! phase counts (`ϕ = [2, 3, 1, 1]`), unit phase durations, the same
//! repetition vector `q = [6, 12, 6, 1]`, and the same topology (a multirate
//! cycle `A → B → C → A` plus a slow outer loop through `D`). Every task
//! carries a one-token self-loop, which is what produces the intra-task
//! precedence arcs visible in the paper's Figure 5.
//!
//! The qualitative behaviour narrated in the paper is preserved: the
//! 1-periodic bound is pessimistic, K-Iter grows the periodicity vector of
//! the tasks on the critical circuit and proves optimality after a few
//! iterations. The exact numbers for this reconstruction are recorded in
//! `EXPERIMENTS.md`.

use csdf::{CsdfGraph, CsdfGraphBuilder, TaskId};

/// Handles to the four tasks of the [`paper_example`] graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperExampleTasks {
    /// Task `A` (2 phases).
    pub a: TaskId,
    /// Task `B` (3 phases).
    pub b: TaskId,
    /// Task `C` (1 phase).
    pub c: TaskId,
    /// Task `D` (1 phase).
    pub d: TaskId,
}

/// Builds the reconstructed Figure-2 graph.
///
/// # Panics
///
/// Never panics: the construction is statically valid.
///
/// # Examples
///
/// ```
/// use kperiodic::paper_example;
///
/// let (graph, tasks) = paper_example();
/// let q = graph.repetition_vector().expect("consistent");
/// assert_eq!(q.get(tasks.a), 6);
/// assert_eq!(q.get(tasks.b), 12);
/// assert_eq!(q.get(tasks.c), 6);
/// assert_eq!(q.get(tasks.d), 1);
/// ```
pub fn paper_example() -> (CsdfGraph, PaperExampleTasks) {
    let mut builder = CsdfGraphBuilder::named("paper_figure2");
    let a = builder.add_task("A", vec![1, 1]);
    let b = builder.add_task("B", vec![1, 1, 1]);
    let c = builder.add_task("C", vec![1]);
    let d = builder.add_task("D", vec![1]);

    // Multirate inner cycle A -> B -> C -> A.
    // Balance: 6·8 = 12·4, 12·4 = 6·8, 6·2 = 6·2.
    builder.add_buffer(a, b, vec![3, 5], vec![1, 1, 2], 0);
    builder.add_buffer(b, c, vec![1, 2, 1], vec![8], 0);
    builder.add_buffer(c, a, vec![2], vec![1, 1], 5);

    // Slow outer loop A -> D -> A (D fires once per graph iteration).
    // Balance: 6·2 = 1·12, 1·24 = 6·4.
    builder.add_buffer(a, d, vec![1, 1], vec![12], 0);
    builder.add_buffer(d, a, vec![24], vec![2, 2], 26);

    // Serialise every task, as the paper's event graph (Figure 5) does.
    builder.add_serializing_self_loop(a);
    builder.add_serializing_self_loop(b);
    builder.add_serializing_self_loop(c);
    builder.add_serializing_self_loop(d);

    let graph = builder.build().expect("the paper example is well formed");
    (graph, PaperExampleTasks { a, b, c, d })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{evaluate_periodic, AnalysisOptions};
    use crate::kiter::{kiter_with_options, KIterOptions};

    #[test]
    fn repetition_vector_matches_the_paper() {
        let (graph, tasks) = paper_example();
        let q = graph.repetition_vector().unwrap();
        assert_eq!(q.get(tasks.a), 6);
        assert_eq!(q.get(tasks.b), 12);
        assert_eq!(q.get(tasks.c), 6);
        assert_eq!(q.get(tasks.d), 1);
        assert_eq!(q.sum(), 25);
    }

    #[test]
    fn kiter_terminates_and_dominates_the_periodic_bound() {
        let (graph, _) = paper_example();
        let periodic = evaluate_periodic(&graph, &AnalysisOptions::default()).unwrap();
        let options = KIterOptions {
            record_history: true,
            ..KIterOptions::default()
        };
        let optimal = kiter_with_options(&graph, &options).unwrap();
        assert!(matches!(optimal.throughput, csdf::Throughput::Finite(_)));
        assert!(optimal.throughput >= periodic.throughput());
        assert!(optimal.history.last().unwrap().optimal);
    }

    #[test]
    fn structure_matches_figure2() {
        let (graph, tasks) = paper_example();
        assert_eq!(graph.task_count(), 4);
        // 5 data buffers + 4 self-loops.
        assert_eq!(graph.buffer_count(), 9);
        assert_eq!(graph.task(tasks.a).phase_count(), 2);
        assert_eq!(graph.task(tasks.b).phase_count(), 3);
        assert_eq!(graph.task(tasks.c).phase_count(), 1);
        assert_eq!(graph.task(tasks.d).phase_count(), 1);
    }
}
