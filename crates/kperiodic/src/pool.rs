//! A pool of warm [`AnalysisSession`]s keyed by structure fingerprint.
//!
//! A throughput-analysis *service* sees long streams of closely-related
//! requests: the same application graph evaluated under many markings or
//! capacities, interleaved with requests for unrelated graphs. The expensive
//! state — the event-graph arena, the MCR solver scratch, the repetition
//! vector — depends only on the graph's *structure* (tasks, durations,
//! buffer endpoints and rates), not on its markings, so a session built for
//! one request can serve every later request whose graph shares the
//! structure: the pool re-targets its markings in place
//! ([`AnalysisSession::adopt_markings`]) and the next evaluation re-derives
//! only the re-marked buffers' constraint arcs.
//!
//! [`SessionPool`] is that routing layer: [`SessionPool::checkout`] hands
//! out a warm session when one with a matching [`structure_fingerprint`] is
//! idle (or builds a cold one), [`SessionPool::give_back`] files it again,
//! evicting the least-recently-used idle session beyond the pool's capacity.
//! The pool itself is not thread-safe — a server shares it behind a mutex
//! and keeps evaluations outside the lock, which is cheap because checkout
//! and return are O(idle sessions + buffers).
//!
//! Every session the pool creates uses the pool's one [`KIterOptions`], and
//! warm sessions keep cold-start K semantics, so a checkout result is
//! **bit-identical** to a cold [`optimal_throughput`] on the request's graph
//! whatever was evaluated on the session before (property-tested in
//! `tests/session.rs` and the `csdf-service` test-suite).
//!
//! [`optimal_throughput`]: crate::optimal_throughput
//! [`structure_fingerprint`]: crate::structure_fingerprint

use csdf::CsdfGraph;

use crate::error::AnalysisError;
use crate::kiter::KIterOptions;
use crate::session::AnalysisSession;

/// Counters describing how a [`SessionPool`] served its checkouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total number of successful [`SessionPool::checkout`] calls.
    pub checkouts: usize,
    /// Checkouts served by re-targeting an idle warm session.
    pub warm: usize,
    /// Checkouts that had to build a session from scratch.
    pub cold: usize,
    /// Idle sessions evicted because the pool was over capacity.
    pub evicted: usize,
    /// Sessions filed back by [`SessionPool::give_back`].
    pub returned: usize,
    /// Sessions dropped through [`SessionPool::quarantine`] because their
    /// last use errored or panicked mid-mutation. With `returned`, this
    /// accounts for every checkout a well-behaved server hands back:
    /// `checkouts == returned + quarantined` means no session leaked.
    pub quarantined: usize,
}

impl PoolStats {
    /// Fraction of checkouts served warm (`0.0` before the first checkout).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.checkouts == 0 {
            0.0
        } else {
            self.warm as f64 / self.checkouts as f64
        }
    }
}

/// An idle session together with its routing key.
#[derive(Debug)]
struct IdleSession {
    fingerprint: u64,
    session: AnalysisSession,
    /// Monotonic return stamp; the smallest stamp is the least recently
    /// returned session and the first evicted over capacity.
    stamp: u64,
}

/// A bounded pool of idle [`AnalysisSession`]s routed by structure
/// fingerprint.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use kperiodic::{KIterOptions, SessionPool};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 1, 1, 0);
/// let feedback = builder.add_sdf_buffer(b, a, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let mut pool = SessionPool::new(KIterOptions::default(), 4);
/// let mut session = pool.checkout(&graph)?;
/// let one = session.evaluate()?.throughput;
/// pool.give_back(session);
///
/// // A mutated graph with the same structure lands on the warm session.
/// let mut relaxed = graph.clone();
/// relaxed.set_initial_tokens(feedback, 3)?;
/// let mut session = pool.checkout(&relaxed)?;
/// assert!(session.evaluate()?.throughput > one);
/// assert_eq!(session.stats().full_builds, 1); // warm: the arena carried over
/// pool.give_back(session);
/// assert_eq!(pool.stats().warm, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SessionPool {
    options: KIterOptions,
    capacity: usize,
    idle: Vec<IdleSession>,
    next_stamp: u64,
    stats: PoolStats,
}

impl SessionPool {
    /// Creates a pool that builds sessions with `options` and keeps at most
    /// `capacity` idle sessions (`0` is treated as `1`).
    pub fn new(options: KIterOptions, capacity: usize) -> Self {
        SessionPool {
            options,
            capacity: capacity.max(1),
            idle: Vec::new(),
            next_stamp: 0,
            stats: PoolStats::default(),
        }
    }

    /// The options every pooled session evaluates with.
    pub fn options(&self) -> &KIterOptions {
        &self.options
    }

    /// Number of idle sessions currently held.
    pub fn idle_sessions(&self) -> usize {
        self.idle.len()
    }

    /// Checkout/return counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Checks out a session for `graph`: the most recently returned idle
    /// session with `graph`'s structure fingerprint is re-targeted at
    /// `graph`'s markings ([`AnalysisSession::adopt_markings`]), or a new
    /// session is built when none matches. Either way the session's next
    /// evaluation is bit-identical to a cold
    /// [`optimal_throughput`](crate::optimal_throughput) on `graph`.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Model`] when `graph` is inconsistent or its
    /// repetition vector overflows (cold path), or propagated marking errors
    /// (warm path; the idle session is dropped, not returned to the pool).
    pub fn checkout(&mut self, graph: &CsdfGraph) -> Result<AnalysisSession, AnalysisError> {
        let fingerprint = crate::arena::graph_fingerprint(graph);
        let warm = self
            .idle
            .iter()
            .enumerate()
            .filter(|(_, idle)| {
                idle.fingerprint == fingerprint
                    && idle.session.graph().task_count() == graph.task_count()
                    && idle.session.graph().buffer_count() == graph.buffer_count()
            })
            .max_by_key(|(_, idle)| idle.stamp)
            .map(|(index, _)| index);
        if let Some(index) = warm {
            let mut session = self.idle.swap_remove(index).session;
            // A failed adoption (impossible for a genuine fingerprint match,
            // conceivable under a hash collision) discards the session
            // rather than handing out stale caches.
            session.adopt_markings(graph)?;
            self.stats.checkouts += 1;
            self.stats.warm += 1;
            return Ok(session);
        }
        let session = AnalysisSession::new(graph.clone(), self.options)?;
        self.stats.checkouts += 1;
        self.stats.cold += 1;
        Ok(session)
    }

    /// Returns a session to the pool, evicting the least recently returned
    /// idle session when the pool is over capacity.
    ///
    /// Only sessions that finished their work normally belong here. A
    /// session whose evaluation errored or panicked mid-mutation may hold a
    /// half-applied marking batch or a stale arena; hand it to
    /// [`SessionPool::quarantine`] instead so the damage cannot reach the
    /// next request.
    ///
    /// # Panics
    ///
    /// Panics only if the eviction invariant breaks (an over-capacity pool
    /// with no idle session to evict).
    pub fn give_back(&mut self, session: AnalysisSession) {
        self.stats.returned += 1;
        let fingerprint = session.structure_fingerprint();
        self.idle.push(IdleSession {
            fingerprint,
            session,
            stamp: self.next_stamp,
        });
        self.next_stamp += 1;
        while self.idle.len() > self.capacity {
            let oldest = self
                .idle
                .iter()
                .enumerate()
                .min_by_key(|(_, idle)| idle.stamp)
                .map(|(index, _)| index)
                .expect("pool over capacity is non-empty");
            self.idle.swap_remove(oldest);
            self.stats.evicted += 1;
        }
    }

    /// Drops a checked-out session instead of refiling it, counting it in
    /// [`PoolStats::quarantined`]. Use this for sessions whose evaluation
    /// errored or panicked mid-mutation: the session is destroyed, never
    /// handed to another request, and the next checkout of its structure
    /// builds cold.
    pub fn quarantine(&mut self, session: AnalysisSession) {
        drop(session);
        self.stats.quarantined += 1;
    }

    /// Drops every idle session (e.g. after a memory-pressure signal).
    pub fn clear(&mut self) {
        self.idle.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kiter::optimal_throughput;
    use csdf::{BufferId, CsdfGraphBuilder};

    fn ring(duration: u64, tokens: u64) -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", duration);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 2, tokens);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        b.build().unwrap()
    }

    #[test]
    fn warm_checkouts_are_bit_identical_to_cold_evaluations() {
        let mut pool = SessionPool::new(KIterOptions::default(), 2);
        for tokens in [3u64, 5, 2, 8, 3] {
            let graph = ring(2, tokens);
            let mut session = pool.checkout(&graph).unwrap();
            let pooled = session.evaluate().unwrap();
            pool.give_back(session);
            assert_eq!(
                pooled,
                optimal_throughput(&graph).unwrap(),
                "tokens {tokens}"
            );
        }
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 5);
        assert_eq!(stats.cold, 1, "one structure, one cold build");
        assert_eq!(stats.warm, 4);
        assert!(stats.warm_hit_rate() > 0.75);
    }

    #[test]
    fn different_structures_never_share_a_session() {
        let mut pool = SessionPool::new(KIterOptions::default(), 4);
        let slow = ring(2, 3);
        // Same shape, different duration: a different structure fingerprint.
        let fast = ring(1, 3);
        let mut a = pool.checkout(&slow).unwrap();
        let slow_result = a.evaluate().unwrap();
        pool.give_back(a);
        let mut b = pool.checkout(&fast).unwrap();
        let fast_result = b.evaluate().unwrap();
        pool.give_back(b);
        assert_eq!(pool.stats().cold, 2);
        assert_eq!(slow_result, optimal_throughput(&slow).unwrap());
        assert_eq!(fast_result, optimal_throughput(&fast).unwrap());
        assert_ne!(slow_result.throughput, fast_result.throughput);
    }

    #[test]
    fn capacity_bounds_the_idle_set() {
        let mut pool = SessionPool::new(KIterOptions::default(), 2);
        for duration in 1..=4u64 {
            let session = pool.checkout(&ring(duration, 3)).unwrap();
            pool.give_back(session);
        }
        assert_eq!(pool.idle_sessions(), 2);
        assert_eq!(pool.stats().evicted, 2);
        // The two *most recently returned* structures are the ones kept.
        for duration in [3u64, 4] {
            let session = pool.checkout(&ring(duration, 3)).unwrap();
            pool.give_back(session);
        }
        assert_eq!(pool.stats().warm, 2);
    }

    #[test]
    fn quarantined_sessions_never_rejoin_the_pool() {
        let mut pool = SessionPool::new(KIterOptions::default(), 4);
        let graph = ring(2, 3);
        let session = pool.checkout(&graph).unwrap();
        pool.quarantine(session);
        assert_eq!(pool.idle_sessions(), 0);
        assert_eq!(pool.stats().quarantined, 1);
        assert_eq!(pool.stats().returned, 0);
        // The next checkout of the same structure builds cold.
        let session = pool.checkout(&graph).unwrap();
        pool.give_back(session);
        let stats = *pool.stats();
        assert_eq!(stats.cold, 2);
        assert_eq!(stats.returned, 1);
        assert_eq!(stats.checkouts, stats.returned + stats.quarantined);
    }

    #[test]
    fn adoption_rejects_structure_mismatches() {
        let graph = ring(2, 3);
        let mut session = AnalysisSession::new(graph, KIterOptions::default()).unwrap();
        assert!(matches!(
            session.adopt_markings(&ring(1, 3)),
            Err(AnalysisError::ArenaGraphMismatch)
        ));
        // A marking-only difference adopts exactly the differing buffer.
        let mut relaxed = ring(2, 3);
        relaxed.set_initial_tokens(BufferId::new(1), 7).unwrap();
        assert_eq!(session.adopt_markings(&relaxed).unwrap(), 1);
        assert_eq!(session.graph().buffer(BufferId::new(1)).initial_tokens(), 7);
    }
}
