//! Random consistent (C)SDF graph generation.
//!
//! The generator first draws a repetition vector, then derives buffer rates
//! from it so that every generated graph is consistent by construction. The
//! topology is a random connected DAG skeleton plus optional feedback edges;
//! feedback edges receive enough initial tokens to keep the graph live, and
//! every task is serialised with a one-token self-loop (the convention of the
//! SDF3 benchmark the paper uses).

use csdf::{lcm_u64, CsdfError, CsdfGraph, CsdfGraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random graph generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomGraphConfig {
    /// Number of tasks to generate (at least 2).
    pub tasks: usize,
    /// Number of extra forward edges beyond the connecting chain.
    pub extra_edges: usize,
    /// Number of feedback (cycle-closing) edges.
    pub feedback_edges: usize,
    /// Candidate per-task repetition counts (drawn uniformly).
    pub repetition_choices: Vec<u64>,
    /// Maximum number of phases per task (1 = plain SDF).
    pub max_phases: usize,
    /// Inclusive range of phase durations.
    pub duration_range: (u64, u64),
    /// Multiplier applied to `i_b + o_b` to compute feedback markings
    /// (2 keeps graphs comfortably live, 1 makes them tight).
    pub marking_factor: u64,
    /// Whether to add one-token self-loops to every task.
    pub serialize: bool,
    /// When set, extra forward edges and non-closing feedback edges only span
    /// at most this many tasks. Bounded locality keeps the per-task buffer
    /// fan-out constant as `tasks` grows — without it, random long-range
    /// edges concentrate on few tasks and the constraint count per buffer
    /// pair stops being O(1) — which is what lets the generator emit
    /// 10k+-task graphs whose event graphs stay linear in the task count.
    pub locality: Option<usize>,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            tasks: 8,
            extra_edges: 4,
            feedback_edges: 2,
            repetition_choices: vec![1, 2, 3, 4, 6],
            max_phases: 3,
            duration_range: (1, 10),
            marking_factor: 2,
            serialize: true,
            locality: None,
        }
    }
}

impl RandomGraphConfig {
    /// A configuration producing plain SDF graphs (single-phase tasks).
    pub fn sdf(tasks: usize) -> Self {
        RandomGraphConfig {
            tasks,
            max_phases: 1,
            ..RandomGraphConfig::default()
        }
    }

    /// A configuration producing small CSDF graphs suitable for exhaustive
    /// cross-validation against symbolic execution.
    pub fn small_csdf() -> Self {
        RandomGraphConfig {
            tasks: 4,
            extra_edges: 1,
            feedback_edges: 1,
            repetition_choices: vec![1, 2, 3],
            max_phases: 3,
            duration_range: (1, 4),
            marking_factor: 2,
            serialize: true,
            locality: None,
        }
    }

    /// A configuration for very large (10k–100k+-task, the scale CI's
    /// `scale_smoke` sweeps exercise) CSDF graphs: bounded edge locality,
    /// mostly small repetition counts and a sparse feedback
    /// structure keep both the generator and the event graph linear in the
    /// task count.
    pub fn large(tasks: usize) -> Self {
        RandomGraphConfig {
            tasks,
            extra_edges: tasks / 4,
            feedback_edges: (tasks / 64).max(2),
            repetition_choices: vec![1, 1, 1, 2, 2, 3, 4],
            max_phases: 2,
            duration_range: (1, 20),
            marking_factor: 2,
            serialize: true,
            locality: Some(16),
        }
    }
}

/// Generates a random consistent, live, serialised CSDF graph.
///
/// The same `seed` always produces the same graph.
///
/// # Errors
///
/// Returns [`CsdfError`] if the configuration is degenerate (fewer than two
/// tasks) or the drawn rates overflow.
pub fn random_graph(config: &RandomGraphConfig, seed: u64) -> Result<CsdfGraph, CsdfError> {
    if config.tasks < 2 {
        return Err(CsdfError::EmptyGraph);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = CsdfGraphBuilder::named(format!("random_{seed}"));

    // Draw the repetition vector and phase counts first.
    let repetition: Vec<u64> = (0..config.tasks)
        .map(|_| {
            config.repetition_choices[rng.gen_range(0..config.repetition_choices.len().max(1))]
        })
        .collect();
    let phase_counts: Vec<usize> = (0..config.tasks)
        .map(|_| rng.gen_range(1..=config.max_phases.max(1)))
        .collect();

    let mut task_ids = Vec::with_capacity(config.tasks);
    for (index, &phases) in phase_counts.iter().enumerate() {
        let durations: Vec<u64> = (0..phases)
            .map(|_| rng.gen_range(config.duration_range.0..=config.duration_range.1.max(1)))
            .collect();
        task_ids.push(builder.add_task(format!("t{index}"), durations));
    }

    // Helper: rates between two tasks so that q_u · i = q_v · o.
    let add_edge = |builder: &mut CsdfGraphBuilder,
                    rng: &mut StdRng,
                    from: usize,
                    to: usize,
                    marking_factor: u64|
     -> Result<(), CsdfError> {
        let lcm = lcm_u64(repetition[from], repetition[to]).map_err(|_| CsdfError::Overflow)?;
        let total_production = lcm / repetition[from];
        let total_consumption = lcm / repetition[to];
        let production = split_total(rng, total_production, phase_counts[from]);
        let consumption = split_total(rng, total_consumption, phase_counts[to]);
        let marking = marking_factor * (total_production + total_consumption);
        builder.add_buffer(
            task_ids[from],
            task_ids[to],
            production,
            consumption,
            marking,
        );
        Ok(())
    };

    // Connecting pipeline 0 → 1 → … → n-1 (forward edges, no initial tokens).
    for index in 1..config.tasks {
        add_edge(&mut builder, &mut rng, index - 1, index, 0)?;
    }
    // Extra forward edges, optionally locality-bounded.
    let window = config.locality.unwrap_or(config.tasks).max(1);
    for _ in 0..config.extra_edges {
        let from = rng.gen_range(0..config.tasks - 1);
        let to = rng.gen_range(from + 1..(from + 1 + window).min(config.tasks));
        add_edge(&mut builder, &mut rng, from, to, 0)?;
    }
    // Feedback edges close cycles and carry ample tokens to stay live. The
    // first one always closes the pipeline (last task back to the first), so
    // every generated graph is strongly connected and self-timed execution
    // has back-pressure; additional feedback edges are placed randomly
    // (within the locality window, when one is set).
    for feedback in 0..config.feedback_edges.max(1) {
        let (from, to) = if feedback == 0 {
            (config.tasks - 1, 0)
        } else {
            let to = rng.gen_range(0..config.tasks - 1);
            let from = rng.gen_range(to + 1..(to + 1 + window).min(config.tasks));
            (from, to)
        };
        add_edge(
            &mut builder,
            &mut rng,
            from,
            to,
            config.marking_factor.max(1),
        )?;
    }

    if config.serialize {
        for &task in &task_ids {
            builder.add_serializing_self_loop(task);
        }
    }

    builder.build()
}

/// Splits `total` into `parts` non-negative integers summing to `total`
/// (at least one part is positive when `total > 0`).
fn split_total(rng: &mut StdRng, total: u64, parts: usize) -> Vec<u64> {
    let parts = parts.max(1);
    let mut values = vec![0u64; parts];
    let mut remaining = total;
    for value in values.iter_mut().take(parts - 1) {
        let share = if remaining == 0 {
            0
        } else {
            rng.gen_range(0..=remaining)
        };
        *value = share;
        remaining -= share;
    }
    values[parts - 1] = remaining;
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_consistent_and_live_enough() {
        for seed in 0..20 {
            let g = random_graph(&RandomGraphConfig::default(), seed).unwrap();
            assert!(
                g.is_consistent(),
                "seed {seed} produced an inconsistent graph"
            );
            assert!(g.task_count() == 8);
            // Every task carries a self-loop.
            for task in g.task_ids() {
                assert!(
                    g.outgoing(task).iter().any(|&b| g.buffer(b).is_self_loop()),
                    "task {task} is not serialised"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_graph(&RandomGraphConfig::default(), 42).unwrap();
        let b = random_graph(&RandomGraphConfig::default(), 42).unwrap();
        assert_eq!(a, b);
        let c = random_graph(&RandomGraphConfig::default(), 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sdf_configuration_produces_single_phase_tasks() {
        let g = random_graph(&RandomGraphConfig::sdf(10), 7).unwrap();
        assert!(g.is_sdf());
        assert_eq!(g.task_count(), 10);
    }

    #[test]
    fn degenerate_configurations_are_rejected() {
        let config = RandomGraphConfig {
            tasks: 1,
            ..RandomGraphConfig::default()
        };
        assert!(random_graph(&config, 0).is_err());
    }

    #[test]
    fn large_configuration_scales_to_ten_thousand_tasks() {
        let config = RandomGraphConfig::large(10_000);
        let g = random_graph(&config, 1).unwrap();
        assert_eq!(g.task_count(), 10_000);
        assert!(g.is_consistent());
        // Bounded locality keeps the buffer fan-out per task constant: no
        // quadratic concentration of buffers on few tasks.
        let max_degree = g
            .task_ids()
            .map(|t| g.outgoing(t).len() + g.incoming(t).len())
            .max()
            .unwrap();
        assert!(
            max_degree <= 64,
            "locality bound violated: max degree {max_degree}"
        );
    }

    #[test]
    fn locality_bounds_edge_span() {
        let config = RandomGraphConfig {
            tasks: 200,
            extra_edges: 300,
            feedback_edges: 20,
            locality: Some(8),
            ..RandomGraphConfig::default()
        };
        let g = random_graph(&config, 3).unwrap();
        let mut closing_edges = 0;
        for (_, buffer) in g.buffers() {
            let span = buffer.source().index().abs_diff(buffer.target().index());
            if span > 8 {
                closing_edges += 1;
                // Only the pipeline-closing feedback edge may span the graph.
                assert_eq!((buffer.source().index(), buffer.target().index()), (199, 0));
            }
        }
        assert!(closing_edges <= 1);
    }

    #[test]
    fn split_total_preserves_the_sum() {
        let mut rng = StdRng::seed_from_u64(1);
        for total in [0u64, 1, 5, 100] {
            for parts in 1..5 {
                let values = split_total(&mut rng, total, parts);
                assert_eq!(values.len(), parts);
                assert_eq!(values.iter().sum::<u64>(), total);
            }
        }
    }
}
