//! Synthetic reproduction of the SDF3 benchmark categories of Table 1.
//!
//! The paper evaluates its algorithm over categories of the SDF3 benchmark
//! generator: `ActualDSP` (real applications), `MimicDSP` (synthetic graphs
//! that mimic DSP statistics), `LgHSDF` (large homogeneous graphs) and
//! `LgTransient` (large graphs with long transient phases and a repetition
//! vector equal to the task count), plus cyclo-static counterparts
//! (`MimicCSDF`, `LgCSDF`) and *sized-buffer* variants of every category
//! (each buffer bounded by a backward channel, the situation of Table 2's
//! middle section). The original graph files are not available here, so each
//! category is synthesised to land inside the size ranges Table 1 reports
//! (task count, channel count and `Σq`).

use csdf::{CsdfError, CsdfGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::buffer_sized;
use crate::dsp::actual_dsp_suite;
use crate::random::{random_graph, RandomGraphConfig};

/// The SDFG/CSDFG categories of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sdf3Category {
    /// Five real DSP applications (4–22 tasks, multirate).
    ActualDsp,
    /// Synthetic DSP-like graphs (3–25 tasks, moderate rates).
    MimicDsp,
    /// Large homogeneous-ish graphs with large repetition sums.
    LgHsdf,
    /// Large graphs (≈200–300 tasks) whose repetition vector is unitary, so
    /// the difficulty is the long transient, not the rates.
    LgTransient,
    /// Cyclo-static DSP-like graphs (2–4 phases per task): the CSDF
    /// counterpart of [`Sdf3Category::MimicDsp`], used to cross-check the
    /// expansion method on true CSDF.
    MimicCsdf,
    /// Large cyclo-static graphs (40–80 tasks, multirate, several phases).
    LgCsdf,
}

impl Sdf3Category {
    /// All categories in the order of Table 1 (SDF rows first, then the CSDF
    /// rows).
    pub fn all() -> [Sdf3Category; 6] {
        [
            Sdf3Category::ActualDsp,
            Sdf3Category::MimicDsp,
            Sdf3Category::LgHsdf,
            Sdf3Category::LgTransient,
            Sdf3Category::MimicCsdf,
            Sdf3Category::LgCsdf,
        ]
    }

    /// The four SDF categories of the paper's original Table 1.
    pub fn sdf() -> [Sdf3Category; 4] {
        [
            Sdf3Category::ActualDsp,
            Sdf3Category::MimicDsp,
            Sdf3Category::LgHsdf,
            Sdf3Category::LgTransient,
        ]
    }

    /// The cyclo-static categories.
    pub fn csdf() -> [Sdf3Category; 2] {
        [Sdf3Category::MimicCsdf, Sdf3Category::LgCsdf]
    }

    /// The category name as printed in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Sdf3Category::ActualDsp => "ActualDSP",
            Sdf3Category::MimicDsp => "MimicDSP",
            Sdf3Category::LgHsdf => "LgHSDF",
            Sdf3Category::LgTransient => "LgTransient",
            Sdf3Category::MimicCsdf => "MimicCSDF",
            Sdf3Category::LgCsdf => "LgCSDF",
        }
    }

    /// Number of graphs the paper evaluates in this category.
    pub fn paper_graph_count(&self) -> usize {
        match self {
            Sdf3Category::ActualDsp => 5,
            _ => 100,
        }
    }
}

/// Generates `count` graphs of the given category (the `ActualDsp` category
/// ignores `count` beyond its five fixed applications).
///
/// # Errors
///
/// Propagates builder/consistency errors, which do not occur for the built-in
/// configurations.
pub fn generate_category(
    category: Sdf3Category,
    count: usize,
    seed: u64,
) -> Result<Vec<CsdfGraph>, CsdfError> {
    match category {
        Sdf3Category::ActualDsp => {
            let mut suite = actual_dsp_suite()?;
            suite.truncate(count.max(1));
            Ok(suite)
        }
        Sdf3Category::MimicDsp => (0..count)
            .map(|index| {
                let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37));
                let config = RandomGraphConfig {
                    tasks: rng.gen_range(3..=25),
                    extra_edges: rng.gen_range(0..=6),
                    feedback_edges: rng.gen_range(1..=3),
                    repetition_choices: vec![1, 2, 3, 4, 6, 8, 12],
                    max_phases: 1,
                    duration_range: (1, 20),
                    marking_factor: 2,
                    serialize: true,
                    locality: None,
                };
                random_graph(&config, seed.wrapping_add(index as u64))
            })
            .collect(),
        Sdf3Category::LgHsdf => (0..count)
            .map(|index| {
                let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x51ed));
                let config = RandomGraphConfig {
                    tasks: rng.gen_range(6..=15),
                    extra_edges: rng.gen_range(4..=12),
                    feedback_edges: rng.gen_range(2..=4),
                    repetition_choices: vec![1, 2, 4, 8, 16, 32],
                    max_phases: 1,
                    duration_range: (1, 50),
                    marking_factor: 2,
                    serialize: true,
                    locality: None,
                };
                random_graph(&config, seed.wrapping_add(index as u64))
            })
            .collect(),
        Sdf3Category::LgTransient => (0..count)
            .map(|index| {
                let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0xabcd));
                let config = RandomGraphConfig {
                    tasks: rng.gen_range(181..=300),
                    extra_edges: rng.gen_range(20..=80),
                    feedback_edges: rng.gen_range(3..=8),
                    // Unitary repetition vector: the difficulty is the long
                    // transient of the self-timed execution, exactly as in
                    // the paper's category (Σq equals the task count).
                    repetition_choices: vec![1],
                    max_phases: 1,
                    duration_range: (1, 100),
                    marking_factor: 3,
                    serialize: true,
                    locality: None,
                };
                random_graph(&config, seed.wrapping_add(index as u64))
            })
            .collect(),
        Sdf3Category::MimicCsdf => (0..count)
            .map(|index| {
                let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x6b43));
                let config = RandomGraphConfig {
                    tasks: rng.gen_range(3..=25),
                    extra_edges: rng.gen_range(0..=6),
                    feedback_edges: rng.gen_range(1..=3),
                    repetition_choices: vec![1, 2, 3, 4, 6],
                    max_phases: 4,
                    duration_range: (1, 20),
                    marking_factor: 2,
                    serialize: true,
                    locality: None,
                };
                random_graph(&config, seed.wrapping_add(index as u64))
            })
            .collect(),
        Sdf3Category::LgCsdf => (0..count)
            .map(|index| {
                let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x7f31));
                let config = RandomGraphConfig {
                    tasks: rng.gen_range(40..=80),
                    extra_edges: rng.gen_range(10..=30),
                    feedback_edges: rng.gen_range(2..=5),
                    repetition_choices: vec![1, 2, 3, 4],
                    max_phases: 3,
                    duration_range: (1, 30),
                    marking_factor: 2,
                    serialize: true,
                    locality: None,
                };
                random_graph(&config, seed.wrapping_add(index as u64))
            })
            .collect(),
    }
}

/// Generates the *sized-buffer* variant of a category: every buffer of every
/// generated graph is bounded by a backward channel with `slack = 2` (the
/// paper's fixed-buffer-size setting), which typically lowers the throughput
/// and makes the event graphs markedly harder to solve.
///
/// # Errors
///
/// Same as [`generate_category`].
pub fn generate_category_sized(
    category: Sdf3Category,
    count: usize,
    seed: u64,
) -> Result<Vec<CsdfGraph>, CsdfError> {
    generate_category(category, count, seed)?
        .iter()
        .map(|graph| buffer_sized(graph, 2))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_have_table1_names() {
        let names: Vec<&str> = Sdf3Category::all()
            .iter()
            .map(super::Sdf3Category::name)
            .collect();
        assert_eq!(
            names,
            vec![
                "ActualDSP",
                "MimicDSP",
                "LgHSDF",
                "LgTransient",
                "MimicCSDF",
                "LgCSDF"
            ]
        );
        assert_eq!(Sdf3Category::ActualDsp.paper_graph_count(), 5);
        assert_eq!(Sdf3Category::MimicDsp.paper_graph_count(), 100);
        assert_eq!(Sdf3Category::sdf().len(), 4);
        assert_eq!(Sdf3Category::csdf().len(), 2);
    }

    #[test]
    fn generated_categories_are_consistent_sdf() {
        for category in [Sdf3Category::MimicDsp, Sdf3Category::LgHsdf] {
            for graph in generate_category(category, 3, 11).unwrap() {
                assert!(graph.is_sdf(), "{} must be SDF", category.name());
                assert!(graph.is_consistent());
            }
        }
    }

    #[test]
    fn csdf_categories_contain_multi_phase_tasks() {
        for category in Sdf3Category::csdf() {
            let graphs = generate_category(category, 3, 17).unwrap();
            assert!(
                graphs.iter().any(|graph| !graph.is_sdf()),
                "{} should produce cyclo-static graphs",
                category.name()
            );
            for graph in &graphs {
                assert!(graph.is_consistent());
            }
        }
    }

    #[test]
    fn sized_variants_bound_every_data_buffer() {
        let plain = generate_category(Sdf3Category::MimicDsp, 2, 5).unwrap();
        let sized = generate_category_sized(Sdf3Category::MimicDsp, 2, 5).unwrap();
        for (p, s) in plain.iter().zip(&sized) {
            let data_buffers = p.buffers().filter(|(_, b)| !b.is_self_loop()).count();
            assert_eq!(s.buffer_count(), p.buffer_count() + data_buffers);
            assert_eq!(s.task_count(), p.task_count());
        }
    }

    #[test]
    fn lg_transient_has_unitary_repetition_vector() {
        let graphs = generate_category(Sdf3Category::LgTransient, 1, 3).unwrap();
        let graph = &graphs[0];
        assert!(graph.task_count() >= 181);
        let q = graph.repetition_vector().unwrap();
        assert_eq!(q.sum(), graph.task_count() as u128);
    }

    #[test]
    fn mimic_dsp_sizes_match_the_reported_range() {
        for graph in generate_category(Sdf3Category::MimicDsp, 10, 5).unwrap() {
            assert!((3..=25).contains(&graph.task_count()));
        }
    }

    #[test]
    fn actual_dsp_is_the_fixed_suite() {
        let graphs = generate_category(Sdf3Category::ActualDsp, 10, 0).unwrap();
        assert_eq!(graphs.len(), 5);
    }
}
