//! Hand-written DSP application graphs.
//!
//! The paper's "`ActualDSP`" category contains classical signal-processing SDF
//! benchmarks (sample-rate converter, modem, satellite receiver, H.263 and
//! MP3 decoders). The published SDF3 files are not redistributable here, so
//! this module re-creates the well-known *shapes* of those applications:
//! multirate chains, feedback loops and fork/join stages with the rate ratios
//! found in the literature. They drive the same code paths — multirate
//! repetition vectors that hurt expansion and state-space methods — which is
//! what Table 1 measures.

use csdf::{CsdfError, CsdfGraph, CsdfGraphBuilder};

/// A CD-to-DAT style multirate sample-rate converter chain with fractional
/// rate changes (1:2, 3:7, 8:7, 5:3, 2:1) and a back-pressure loop.
///
/// # Errors
///
/// Never fails in practice; the signature keeps the builder's validation
/// explicit.
pub fn sample_rate_converter() -> Result<CsdfGraph, CsdfError> {
    let mut b = CsdfGraphBuilder::named("samplerate");
    let input = b.add_sdf_task("cd_in", 1);
    let stage1 = b.add_sdf_task("fir_1_2", 2);
    let stage2 = b.add_sdf_task("fir_3_7", 3);
    let stage3 = b.add_sdf_task("fir_8_7", 3);
    let stage4 = b.add_sdf_task("fir_5_3", 2);
    let output = b.add_sdf_task("dat_out", 1);
    b.add_sdf_buffer(input, stage1, 1, 2, 0);
    b.add_sdf_buffer(stage1, stage2, 3, 7, 0);
    b.add_sdf_buffer(stage2, stage3, 8, 7, 0);
    b.add_sdf_buffer(stage3, stage4, 5, 3, 0);
    b.add_sdf_buffer(stage4, output, 2, 1, 0);
    // Back-pressure from the output so the state space stays finite; the
    // rates close the chain's 40:49 firing ratio and the generous marking
    // keeps the bursty multirate pipeline live.
    b.add_sdf_buffer(output, input, 49, 40, 10 * (49 + 40));
    for task in [input, stage1, stage2, stage3, stage4, output] {
        b.add_serializing_self_loop(task);
    }
    b.build()
}

/// A bidirectional data modem: filterbank, equaliser and decision feedback.
///
/// # Errors
///
/// Never fails in practice.
pub fn modem() -> Result<CsdfGraph, CsdfError> {
    let mut b = CsdfGraphBuilder::named("modem");
    let input = b.add_sdf_task("adc", 1);
    let filter = b.add_sdf_task("filter", 3);
    let equalizer = b.add_sdf_task("equalizer", 4);
    let decision = b.add_sdf_task("decision", 1);
    let decoder = b.add_sdf_task("decoder", 2);
    let feedback = b.add_sdf_task("feedback", 1);
    let dac = b.add_sdf_task("dac", 1);
    b.add_sdf_buffer(input, filter, 1, 1, 0);
    b.add_sdf_buffer(filter, equalizer, 1, 1, 0);
    b.add_sdf_buffer(equalizer, decision, 1, 1, 0);
    b.add_sdf_buffer(decision, decoder, 2, 1, 0);
    b.add_sdf_buffer(decision, feedback, 1, 1, 0);
    b.add_sdf_buffer(feedback, equalizer, 1, 1, 2);
    b.add_sdf_buffer(decoder, dac, 1, 2, 0);
    b.add_sdf_buffer(dac, input, 1, 1, 4);
    for index in 0..b.task_count() {
        b.add_serializing_self_loop(csdf::TaskId::new(index));
    }
    b.build()
}

/// A satellite receiver-like graph: parallel demodulation branches merged by
/// a Viterbi-style decoder.
///
/// # Errors
///
/// Never fails in practice.
pub fn satellite_receiver() -> Result<CsdfGraph, CsdfError> {
    let mut b = CsdfGraphBuilder::named("satellite");
    let antenna = b.add_sdf_task("antenna", 1);
    let split = b.add_sdf_task("split", 1);
    let branch_i = b.add_sdf_task("demod_i", 5);
    let branch_q = b.add_sdf_task("demod_q", 5);
    let merge = b.add_sdf_task("merge", 1);
    let viterbi = b.add_sdf_task("viterbi", 11);
    let sink = b.add_sdf_task("sink", 1);
    b.add_sdf_buffer(antenna, split, 1, 1, 0);
    b.add_sdf_buffer(split, branch_i, 4, 1, 0);
    b.add_sdf_buffer(split, branch_q, 4, 1, 0);
    b.add_sdf_buffer(branch_i, merge, 1, 4, 0);
    b.add_sdf_buffer(branch_q, merge, 1, 4, 0);
    b.add_sdf_buffer(merge, viterbi, 2, 1, 0);
    b.add_sdf_buffer(viterbi, sink, 1, 2, 0);
    b.add_sdf_buffer(sink, antenna, 1, 1, 8);
    for index in 0..b.task_count() {
        b.add_serializing_self_loop(csdf::TaskId::new(index));
    }
    b.build()
}

/// An H.263-decoder-like graph: the classic 1 ↔ 594/2376 macro-block rate
/// change that makes expansion-based methods expensive.
///
/// # Errors
///
/// Never fails in practice.
pub fn h263_decoder() -> Result<CsdfGraph, CsdfError> {
    let mut b = CsdfGraphBuilder::named("h263_decoder");
    let parser = b.add_sdf_task("vld", 120);
    let dequant = b.add_sdf_task("dequant", 1);
    let idct = b.add_sdf_task("idct", 2);
    let motion = b.add_sdf_task("motion", 1);
    let reconstruct = b.add_sdf_task("reconstruct", 80);
    b.add_sdf_buffer(parser, dequant, 594, 1, 0);
    b.add_sdf_buffer(dequant, idct, 1, 1, 0);
    b.add_sdf_buffer(idct, motion, 1, 1, 0);
    b.add_sdf_buffer(motion, reconstruct, 1, 594, 0);
    b.add_sdf_buffer(reconstruct, parser, 1, 1, 2);
    for index in 0..b.task_count() {
        b.add_serializing_self_loop(csdf::TaskId::new(index));
    }
    b.build()
}

/// An MP3-decoder-like graph with granule/subband rate changes.
///
/// # Errors
///
/// Never fails in practice.
pub fn mp3_decoder() -> Result<CsdfGraph, CsdfError> {
    let mut b = CsdfGraphBuilder::named("mp3_decoder");
    let huffman = b.add_sdf_task("huffman", 8);
    let requant = b.add_sdf_task("requantize", 3);
    let reorder = b.add_sdf_task("reorder", 2);
    let stereo = b.add_sdf_task("stereo", 1);
    let antialias = b.add_sdf_task("antialias", 1);
    let imdct = b.add_sdf_task("imdct", 6);
    let synth = b.add_sdf_task("synthesis", 12);
    b.add_sdf_buffer(huffman, requant, 2, 1, 0);
    b.add_sdf_buffer(requant, reorder, 1, 1, 0);
    b.add_sdf_buffer(reorder, stereo, 2, 1, 0);
    b.add_sdf_buffer(stereo, antialias, 1, 2, 0);
    b.add_sdf_buffer(antialias, imdct, 1, 1, 0);
    b.add_sdf_buffer(imdct, synth, 18, 32, 0);
    b.add_sdf_buffer(synth, huffman, 8, 9, 96);
    for index in 0..b.task_count() {
        b.add_serializing_self_loop(csdf::TaskId::new(index));
    }
    b.build()
}

/// All five "actual DSP" graphs, matching the size of the paper's `ActualDSP`
/// category (5 graphs, 4–22 tasks).
///
/// # Errors
///
/// Never fails in practice.
pub fn actual_dsp_suite() -> Result<Vec<CsdfGraph>, CsdfError> {
    Ok(vec![
        sample_rate_converter()?,
        modem()?,
        satellite_receiver()?,
        h263_decoder()?,
        mp3_decoder()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dsp_graphs_are_consistent() {
        for graph in actual_dsp_suite().unwrap() {
            let q = graph.repetition_vector();
            assert!(q.is_ok(), "{} is inconsistent", graph.name());
            assert!(q.unwrap().sum() > 0);
        }
    }

    #[test]
    fn suite_size_matches_the_paper_category() {
        let suite = actual_dsp_suite().unwrap();
        assert_eq!(suite.len(), 5);
        for graph in &suite {
            assert!(graph.task_count() >= 4);
            assert!(graph.task_count() <= 22);
        }
    }

    #[test]
    fn h263_has_a_large_repetition_sum() {
        let g = h263_decoder().unwrap();
        let q = g.repetition_vector().unwrap();
        assert!(q.sum() > 1000, "Σq = {}", q.sum());
    }

    #[test]
    fn samplerate_conversion_ratio_is_40_to_49() {
        let g = sample_rate_converter().unwrap();
        let q = g.repetition_vector().unwrap();
        let input = g.find_task("cd_in").unwrap();
        let output = g.find_task("dat_out").unwrap();
        assert_eq!(
            q.get(output) * 49,
            q.get(input) * 40,
            "output/input firing ratio must be 40/49"
        );
    }

    #[test]
    fn dsp_graphs_have_finite_optimal_throughput() {
        for graph in [sample_rate_converter().unwrap(), modem().unwrap()] {
            let result = kperiodic::optimal_throughput(&graph).unwrap();
            assert!(
                matches!(result.throughput, csdf::Throughput::Finite(_)),
                "{} should have finite throughput",
                graph.name()
            );
        }
    }
}
