//! Synthetic stand-ins for the industrial CSDF applications of Table 2.
//!
//! The paper's Table 2 evaluates five industrial applications (`BlackScholes`,
//! Echo, JPEG2000, Pdetect, H264 Encoder) from the proprietary IB+AG5CSDF
//! benchmark, plus five synthetic graphs. The real graphs are not available,
//! so this module synthesises applications with the published task count,
//! data-buffer count and repetition-sum magnitude. What drives the paper's
//! results — huge repetition vectors that defeat state-space exploration
//! while K-Iter terminates with small periodicity vectors — is preserved.

use csdf::{lcm_u64, CsdfError, CsdfGraph, CsdfGraphBuilder, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape description of one synthetic industrial application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name, as printed in Table 2.
    pub name: &'static str,
    /// Number of tasks (Table 2 "Tasks" column).
    pub tasks: usize,
    /// Number of data buffers (Table 2 "Buffers" column, without the
    /// serialising self-loops this generator adds on top).
    pub buffers: usize,
    /// Repetition "levels": tasks are assigned one of these repetition
    /// counts; the magnitude of `Σq` follows from the distribution.
    pub repetition_levels: &'static [u64],
    /// Maximum number of cyclo-static phases per task.
    pub max_phases: usize,
    /// Inclusive range of per-phase durations.
    pub duration_range: (u64, u64),
    /// Seed of the deterministic layout.
    pub seed: u64,
}

impl AppSpec {
    fn level_of(&self, rng: &mut StdRng) -> u64 {
        self.repetition_levels[rng.gen_range(0..self.repetition_levels.len())]
    }
}

/// Builds the synthetic application described by `spec`.
///
/// The graph is a layered pipeline: tasks are ordered, a chain connects every
/// task to a predecessor, extra forward buffers are added until the data
/// buffer budget is reached minus one, and a single feedback buffer with a
/// generous marking closes the graph so that self-timed execution has
/// back-pressure. Every task is serialised with a one-token self-loop.
///
/// # Errors
///
/// Returns [`CsdfError`] if the spec is degenerate (fewer than 2 tasks or
/// fewer buffers than tasks − 1) or rates overflow.
///
/// # Panics
///
/// Panics only if `spec.repetition_levels` is empty — the provided
/// constructors always populate it.
pub fn industrial_app(spec: &AppSpec) -> Result<CsdfGraph, CsdfError> {
    if spec.tasks < 2 || spec.buffers < spec.tasks {
        return Err(CsdfError::EmptyGraph);
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut builder = CsdfGraphBuilder::named(spec.name);

    // Repetition level per task; the first and last task share the lowest
    // level so the feedback buffer stays small-rated.
    let mut levels: Vec<u64> = (0..spec.tasks).map(|_| spec.level_of(&mut rng)).collect();
    let lowest = *spec.repetition_levels.iter().min().expect("non-empty");
    levels[0] = lowest;
    levels[spec.tasks - 1] = lowest;

    let mut phase_counts = Vec::with_capacity(spec.tasks);
    let mut task_ids: Vec<TaskId> = Vec::with_capacity(spec.tasks);
    for (index, _) in levels.iter().enumerate() {
        let phases = rng.gen_range(1..=spec.max_phases.max(1));
        let durations: Vec<u64> = (0..phases)
            .map(|_| rng.gen_range(spec.duration_range.0..=spec.duration_range.1.max(1)))
            .collect();
        phase_counts.push(phases);
        task_ids.push(builder.add_task(format!("{}_{index}", spec.name), durations));
    }

    let add_buffer = |builder: &mut CsdfGraphBuilder,
                      rng: &mut StdRng,
                      from: usize,
                      to: usize,
                      marking_periods: u64|
     -> Result<(), CsdfError> {
        let lcm = lcm_u64(levels[from], levels[to]).map_err(|_| CsdfError::Overflow)?;
        let total_production = lcm / levels[from];
        let total_consumption = lcm / levels[to];
        let production = split_rates(rng, total_production, phase_counts[from]);
        let consumption = split_rates(rng, total_consumption, phase_counts[to]);
        let marking = marking_periods * (total_production + total_consumption);
        builder.add_buffer(
            task_ids[from],
            task_ids[to],
            production,
            consumption,
            marking,
        );
        Ok(())
    };

    // Connecting chain.
    for index in 1..spec.tasks {
        let from = if index == 1 {
            0
        } else {
            rng.gen_range(0..index)
        };
        add_buffer(&mut builder, &mut rng, from, index, 0)?;
    }
    // Extra forward buffers up to the data-buffer budget minus the feedback.
    let extra = spec.buffers.saturating_sub(spec.tasks);
    for _ in 0..extra {
        let from = rng.gen_range(0..spec.tasks - 1);
        let to = rng.gen_range(from + 1..spec.tasks);
        add_buffer(&mut builder, &mut rng, from, to, 0)?;
    }
    // One feedback buffer closing the pipeline (generous marking: 16 "periods"
    // worth of tokens so it never deadlocks nor becomes the bottleneck).
    add_buffer(&mut builder, &mut rng, spec.tasks - 1, 0, 16)?;

    for &task in &task_ids {
        builder.add_serializing_self_loop(task);
    }
    builder.build()
}

fn split_rates(rng: &mut StdRng, total: u64, parts: usize) -> Vec<u64> {
    let parts = parts.max(1);
    let mut values = vec![0u64; parts];
    let mut remaining = total;
    for value in values.iter_mut().take(parts - 1) {
        let share = if remaining == 0 {
            0
        } else {
            rng.gen_range(0..=remaining)
        };
        *value = share;
        remaining -= share;
    }
    values[parts - 1] = remaining;
    values
}

/// BlackScholes-like option-pricing pipeline (41 tasks, 40 data buffers).
pub fn black_scholes() -> AppSpec {
    AppSpec {
        name: "BlackScholes",
        tasks: 41,
        buffers: 40 + 1, // 40 forward buffers + the feedback edge
        repetition_levels: &[1, 5, 25, 125, 625],
        max_phases: 2,
        duration_range: (1, 40),
        seed: 0x5eed_0001,
    }
}

/// Echo-like audio echo-cancellation application (240 tasks, 703 data
/// buffers, repetition sums in the hundreds of millions).
pub fn echo() -> AppSpec {
    AppSpec {
        name: "Echo",
        tasks: 240,
        buffers: 703,
        repetition_levels: &[1, 8, 64, 3840, 241_920, 3_386_880],
        max_phases: 3,
        duration_range: (1, 16),
        seed: 0x5eed_0002,
    }
}

/// JPEG2000-like wavelet encoder (38 tasks, 82 data buffers).
pub fn jpeg2000() -> AppSpec {
    AppSpec {
        name: "JPEG2000",
        tasks: 38,
        buffers: 82,
        repetition_levels: &[1, 4, 16, 128, 1024, 4096],
        max_phases: 3,
        duration_range: (1, 32),
        seed: 0x5eed_0003,
    }
}

/// Pedestrian-detection-like vision pipeline (58 tasks, 76 data buffers).
pub fn pdetect() -> AppSpec {
    AppSpec {
        name: "Pdetect",
        tasks: 58,
        buffers: 76,
        repetition_levels: &[1, 10, 100, 6600, 66_000],
        max_phases: 2,
        duration_range: (1, 64),
        seed: 0x5eed_0004,
    }
}

/// H264-encoder-like application (665 tasks, 3128 data buffers).
pub fn h264_encoder() -> AppSpec {
    AppSpec {
        name: "H264Encoder",
        tasks: 665,
        buffers: 3128,
        repetition_levels: &[1, 4, 16, 396, 1584, 25_344],
        max_phases: 3,
        duration_range: (1, 24),
        seed: 0x5eed_0005,
    }
}

/// The five synthetic graphs of the bottom of Table 2.
pub fn synthetic_specs() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "graph1",
            tasks: 90,
            buffers: 617,
            repetition_levels: &[1, 6, 36, 216, 1296],
            max_phases: 3,
            duration_range: (1, 20),
            seed: 0x5eed_1001,
        },
        AppSpec {
            name: "graph2",
            tasks: 70,
            buffers: 473,
            repetition_levels: &[1, 90, 8100, 729_000, 7_290_000],
            max_phases: 3,
            duration_range: (1, 20),
            seed: 0x5eed_1002,
        },
        AppSpec {
            name: "graph3",
            tasks: 154,
            buffers: 671,
            repetition_levels: &[1, 77, 5929, 456_533, 4_565_330],
            max_phases: 3,
            duration_range: (1, 20),
            seed: 0x5eed_1003,
        },
        AppSpec {
            name: "graph4",
            tasks: 2426,
            buffers: 2900,
            repetition_levels: &[1, 2, 4, 16, 256],
            max_phases: 2,
            duration_range: (1, 20),
            seed: 0x5eed_1004,
        },
        AppSpec {
            name: "graph5",
            tasks: 2767,
            buffers: 4894,
            repetition_levels: &[1, 3, 9, 81, 729],
            max_phases: 2,
            duration_range: (1, 20),
            seed: 0x5eed_1005,
        },
    ]
}

/// All five industrial application specs in the order of Table 2.
pub fn industrial_specs() -> Vec<AppSpec> {
    vec![
        black_scholes(),
        echo(),
        jpeg2000(),
        pdetect(),
        h264_encoder(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_apps_build_and_are_consistent() {
        for spec in [black_scholes(), jpeg2000(), pdetect()] {
            let graph = industrial_app(&spec).unwrap();
            assert_eq!(graph.task_count(), spec.tasks, "{}", spec.name);
            // data buffers + one self-loop per task
            assert_eq!(
                graph.buffer_count(),
                spec.buffers + spec.tasks,
                "{}",
                spec.name
            );
            let q = graph.repetition_vector().unwrap();
            assert!(q.sum() > 1_000, "{} Σq = {}", spec.name, q.sum());
        }
    }

    #[test]
    fn blackscholes_has_finite_optimal_throughput() {
        let graph = industrial_app(&black_scholes()).unwrap();
        let result = kperiodic::optimal_throughput(&graph).unwrap();
        assert!(matches!(result.throughput, csdf::Throughput::Finite(_)));
    }

    #[test]
    fn echo_repetition_sum_is_huge() {
        let graph = industrial_app(&echo()).unwrap();
        let q = graph.repetition_vector().unwrap();
        assert!(q.sum() > 100_000_000, "Σq = {}", q.sum());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = industrial_app(&jpeg2000()).unwrap();
        let b = industrial_app(&jpeg2000()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let bad = AppSpec {
            name: "bad",
            tasks: 1,
            buffers: 0,
            repetition_levels: &[1],
            max_phases: 1,
            duration_range: (1, 1),
            seed: 0,
        };
        assert!(industrial_app(&bad).is_err());
    }

    #[test]
    fn synthetic_specs_match_table2_sizes() {
        let specs = synthetic_specs();
        assert_eq!(specs.len(), 5);
        assert_eq!(specs[0].tasks, 90);
        assert_eq!(specs[3].tasks, 2426);
        assert_eq!(specs[4].buffers, 4894);
    }
}
