//! # csdf-generators — benchmark and workload generators
//!
//! The paper's evaluation uses two benchmark suites that are not
//! redistributable (the SDF3 SDFG benchmark of Table 1 and the industrial
//! IB+AG5CSDF suite of Table 2). This crate synthesises stand-ins with the
//! published size statistics so the whole evaluation pipeline can be
//! regenerated:
//!
//! * [`random_graph`] / [`RandomGraphConfig`] — consistent, live, serialised
//!   random (C)SDF graphs (also used by the property-based tests);
//! * [`dsp`] — five hand-written DSP applications (the "`ActualDSP`" category);
//! * [`sdf3`] — the four Table-1 categories;
//! * [`apps`] — the Table-2 industrial applications and synthetic graphs;
//! * [`buffer_sized`] — the "fixed buffer size" variant of a graph used by
//!   the bottom half of Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod dsp;
mod random;
pub mod sdf3;

pub use random::{random_graph, RandomGraphConfig};

use csdf::transform::bound_all_buffers;
use csdf::{CsdfError, CsdfGraph};

/// Returns the "fixed buffer size" variant of `graph`, in which every data
/// buffer is bounded to `slack` times the tokens moved by one producer and
/// one consumer iteration (`slack · (i_b + o_b)`, at least the initial
/// marking). This doubles the buffer count exactly as in the bottom half of
/// the paper's Table 2 and turns buffer capacity into additional feedback
/// cycles that the throughput analysis must take into account.
///
/// # Errors
///
/// Propagates [`CsdfError`] from the bounding transformation.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use csdf_generators::buffer_sized;
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 2, 3, 0);
/// let graph = builder.build()?;
/// let bounded = buffer_sized(&graph, 2)?;
/// assert_eq!(bounded.buffer_count(), 2);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn buffer_sized(graph: &CsdfGraph, slack: u64) -> Result<CsdfGraph, CsdfError> {
    bound_all_buffers(graph, |_, buffer| {
        slack
            .max(1)
            .saturating_mul(buffer.total_production() + buffer.total_consumption())
            .max(buffer.initial_tokens())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_sizing_doubles_non_self_loop_buffers() {
        let g = random_graph(&RandomGraphConfig::default(), 9).unwrap();
        let data_buffers = g.buffers().filter(|(_, b)| !b.is_self_loop()).count();
        let bounded = buffer_sized(&g, 2).unwrap();
        assert_eq!(bounded.buffer_count(), g.buffer_count() + data_buffers);
        assert!(bounded.is_consistent());
    }

    #[test]
    fn generous_buffer_sizes_keep_small_graphs_live() {
        let g = random_graph(&RandomGraphConfig::small_csdf(), 3).unwrap();
        let bounded = buffer_sized(&g, 4).unwrap();
        let result = kperiodic::optimal_throughput(&bounded).unwrap();
        // With four iterations of slack per buffer the graph must not
        // deadlock.
        assert!(!result.throughput.is_deadlocked());
    }
}
