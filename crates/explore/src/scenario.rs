//! Scenario studies: many independent marking variants of one base graph.

use csdf::{BufferId, CsdfGraph};
use kperiodic::{AnalysisError, KIterResult, PipelineStats};

use crate::runner::{run_points, ExploreOptions};

/// One scenario: a named set of initial-marking overrides on the base graph
/// (buffers not listed keep the base marking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Human-readable scenario name, carried into the outcome.
    pub name: String,
    /// `(buffer, initial tokens)` overrides applied before evaluation.
    pub markings: Vec<(BufferId, u64)>,
}

/// The evaluated outcome of one scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The scenario's name.
    pub name: String,
    /// The K-Iter result on the base graph with the scenario's overrides
    /// (bit-identical to a cold evaluation in the default cold-start mode).
    pub result: KIterResult,
}

/// A set of marking scenarios over one base graph, evaluated on a scoped
/// worker pool — the workload where `AnalysisOptions::threads`-style
/// parallelism pays off even when each event graph is one big SCC, because
/// the *scenarios* are independent.
///
/// Workers own one [`kperiodic::AnalysisSession`] each: between scenarios
/// only the buffers touched by the previous and the next scenario are
/// re-marked (and hence re-derived), everything else is reused.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use csdf_explore::{ExploreOptions, ScenarioSet};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 1, 1, 0);
/// let feedback = builder.add_sdf_buffer(b, a, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let mut scenarios = ScenarioSet::new(graph);
/// scenarios.add("tight", vec![(feedback, 1)]);
/// scenarios.add("relaxed", vec![(feedback, 4)]);
/// let outcomes = scenarios.run(&ExploreOptions::default())?;
/// assert_eq!(outcomes.len(), 2);
/// assert!(outcomes[1].result.throughput > outcomes[0].result.throughput);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSet {
    base: CsdfGraph,
    base_markings: Vec<u64>,
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// Creates an empty scenario set over `base`.
    pub fn new(base: CsdfGraph) -> Self {
        let base_markings = base.buffers().map(|(_, b)| b.initial_tokens()).collect();
        ScenarioSet {
            base,
            base_markings,
            scenarios: Vec::new(),
        }
    }

    /// The base graph scenarios override.
    pub fn base(&self) -> &CsdfGraph {
        &self.base
    }

    /// Adds a scenario.
    pub fn add(&mut self, name: impl Into<String>, markings: Vec<(BufferId, u64)>) -> &mut Self {
        self.scenarios.push(Scenario {
            name: name.into(),
            markings,
        });
        self
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The scenarios, in evaluation order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Evaluates every scenario, returning outcomes in input order.
    ///
    /// # Errors
    ///
    /// The first evaluation error (unknown buffer id, solver failure,
    /// event-graph limits) aborts the run.
    pub fn run(&self, options: &ExploreOptions) -> Result<Vec<ScenarioOutcome>, AnalysisError> {
        let (outcomes, _, _) = self.run_with_stats(options)?;
        Ok(outcomes)
    }

    /// Like [`ScenarioSet::run`], but also returns the merged pipeline
    /// statistics and the number of worker sessions used.
    ///
    /// # Errors
    ///
    /// Same as [`ScenarioSet::run`].
    pub fn run_with_stats(
        &self,
        options: &ExploreOptions,
    ) -> Result<(Vec<ScenarioOutcome>, PipelineStats, usize), AnalysisError> {
        run_points(
            self.scenarios.len(),
            options,
            || kperiodic::AnalysisSession::new(self.base.clone(), options.analysis),
            |session, index| self.evaluate_scenario(session, index),
        )
    }

    /// Evaluates every scenario on one caller-provided session — the
    /// single-worker path a service uses to drive a pooled
    /// [`kperiodic::AnalysisSession`] instead of building its own. Outcomes
    /// are bit-identical to [`ScenarioSet::run`] with cold-start options.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::ArenaGraphMismatch`] when `session` was built for a
    /// different structure than the base graph, otherwise the first
    /// evaluation error aborts the run.
    pub fn run_on_session(
        &self,
        session: &mut kperiodic::AnalysisSession,
    ) -> Result<Vec<ScenarioOutcome>, AnalysisError> {
        if session.structure_fingerprint() != kperiodic::structure_fingerprint(&self.base) {
            return Err(AnalysisError::ArenaGraphMismatch);
        }
        let mut outcomes = Vec::with_capacity(self.scenarios.len());
        for index in 0..self.scenarios.len() {
            outcomes.push(self.evaluate_scenario(session, index)?);
        }
        Ok(outcomes)
    }

    /// Evaluates scenario `index` on `session`: reset whatever the previous
    /// scenario on this session touched, then apply this scenario's
    /// overrides. The reset walks the session graph against the base
    /// markings, so it is exact whatever ran before.
    fn evaluate_scenario(
        &self,
        session: &mut kperiodic::AnalysisSession,
        index: usize,
    ) -> Result<ScenarioOutcome, AnalysisError> {
        let scenario = &self.scenarios[index];
        for (buffer_index, &base_tokens) in self.base_markings.iter().enumerate() {
            let buffer = BufferId::new(buffer_index);
            if session.graph().buffer(buffer).initial_tokens() != base_tokens {
                session.set_initial_tokens(buffer, base_tokens)?;
            }
        }
        for &(buffer, tokens) in &scenario.markings {
            session.set_initial_tokens(buffer, tokens)?;
        }
        let result = session.evaluate()?;
        Ok(ScenarioOutcome {
            name: scenario.name.clone(),
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn ring() -> (CsdfGraph, BufferId, BufferId) {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 3);
        let forward = b.add_sdf_buffer(x, y, 1, 1, 0);
        let feedback = b.add_sdf_buffer(y, x, 1, 1, 1);
        (b.build().unwrap(), forward, feedback)
    }

    #[test]
    fn scenarios_match_cold_evaluations_in_input_order() {
        let (graph, forward, feedback) = ring();
        let mut set = ScenarioSet::new(graph.clone());
        set.add("base", vec![]);
        set.add("deadlock", vec![(feedback, 0)]);
        set.add("relaxed", vec![(forward, 2), (feedback, 3)]);
        set.add("base-again", vec![]);

        for workers in [1usize, 3] {
            let outcomes = set
                .run(&ExploreOptions {
                    workers,
                    ..ExploreOptions::default()
                })
                .unwrap();
            assert_eq!(outcomes.len(), 4);
            assert_eq!(outcomes[0].name, "base");
            assert_eq!(outcomes[0].result, outcomes[3].result);
            for (index, scenario) in set.scenarios().iter().enumerate() {
                let mut cold = graph.clone();
                for &(buffer, tokens) in &scenario.markings {
                    cold.set_initial_tokens(buffer, tokens).unwrap();
                }
                let reference = kperiodic::optimal_throughput(&cold).unwrap();
                assert_eq!(outcomes[index].result, reference, "scenario {index}");
            }
        }
    }

    #[test]
    fn unknown_buffers_abort() {
        let (graph, _, _) = ring();
        let mut set = ScenarioSet::new(graph);
        set.add("bogus", vec![(BufferId::new(99), 1)]);
        assert!(set.run(&ExploreOptions::default()).is_err());
    }
}
