//! Storage minimisation under a throughput constraint.

use csdf::transform::{bound_all_buffers_tracked, BoundedGraph};
use csdf::{BufferId, CsdfError, CsdfGraph, Throughput};
use kperiodic::{AnalysisError, AnalysisSession, KIterResult};

use crate::runner::{reverse_of, ExploreOptions};
use crate::sweep::uniform_slack_capacity;

/// The result of a storage-minimisation search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinStorageOutcome {
    /// The smallest uniform slack whose throughput reaches the target
    /// ([`min_storage_for_throughput`]); `0` when the point does not come
    /// from a uniform-slack search ([`tighten_capacities`], whose savings
    /// show up in `capacities` instead).
    pub slack: u64,
    /// The per-buffer capacities of the returned design point.
    pub capacities: Vec<(BufferId, u64)>,
    /// Sum of those capacities.
    pub total_storage: u64,
    /// The K-Iter result at the returned design point.
    pub result: KIterResult,
    /// Number of throughput evaluations the search spent.
    pub evaluations: usize,
}

/// Finds the smallest **uniform slack** `s ∈ [1, max_slack]` for which the
/// graph, with every non-self-loop buffer bounded to
/// [`uniform_slack_capacity`]`(buffer, s)`, reaches `target` throughput.
/// Returns `Ok(None)` when even `max_slack` falls short.
///
/// Throughput is monotone in buffer capacity (more space can only relax
/// constraints — property-tested in the workspace test-suite), so a binary
/// search over the slack is exact. The whole search drives **one**
/// [`AnalysisSession`]: each probe re-sizes the capacities in place and
/// re-evaluates, so the event-graph arena and solver scratch survive all
/// `O(log max_slack)` probes. Mutation direction alternates during the
/// search; in the default cold-start mode every probe is still bit-identical
/// to a cold evaluation of that slack.
///
/// # Errors
///
/// Propagates model and evaluation errors from the bounding transformation
/// and the session.
pub fn min_storage_for_throughput(
    graph: &CsdfGraph,
    target: Throughput,
    max_slack: u64,
    options: &ExploreOptions,
) -> Result<Option<MinStorageOutcome>, AnalysisError> {
    let max_slack = max_slack.max(1);
    let bounded =
        bound_all_buffers_tracked(graph, |_, buffer| uniform_slack_capacity(buffer, max_slack))?;
    let mut session = AnalysisSession::new(bounded.graph().clone(), options.analysis)?
        .with_warm_start(options.warm_start);
    min_storage_for_throughput_on(&mut session, &bounded, target, max_slack)
}

/// The session-borrowing core of [`min_storage_for_throughput`]: the same
/// binary search, driven on a caller-owned session. `bounded` must be the
/// design the session's graph was built from (structure checked), sized so
/// that every capacity up to [`uniform_slack_capacity`]`(buffer, max_slack)`
/// is reachable — which [`min_storage_for_throughput`] guarantees by
/// bounding at `max_slack`. This is the serving-path entry point: a daemon
/// checks the session out of a [`kperiodic::SessionPool`] keyed on the
/// bounded structure and returns it warm afterwards.
///
/// # Errors
///
/// [`AnalysisError::ArenaGraphMismatch`] when `session` was not built for
/// `bounded`'s structure, plus the errors of [`min_storage_for_throughput`].
pub fn min_storage_for_throughput_on(
    session: &mut AnalysisSession,
    bounded: &BoundedGraph,
    target: Throughput,
    max_slack: u64,
) -> Result<Option<MinStorageOutcome>, AnalysisError> {
    let max_slack = max_slack.max(1);
    if session.structure_fingerprint() != kperiodic::structure_fingerprint(bounded.graph()) {
        return Err(AnalysisError::ArenaGraphMismatch);
    }
    let mut evaluations = 0usize;

    let mut evaluate_at =
        |session: &mut AnalysisSession, slack: u64| -> Result<KIterResult, AnalysisError> {
            for (forward, reverse) in bounded.bounded_pairs() {
                let capacity = uniform_slack_capacity(session.graph().buffer(forward), slack);
                session.set_capacity(forward, reverse, capacity)?;
            }
            evaluations += 1;
            session.evaluate()
        };

    // Even the most generous slack may miss the target.
    let at_max = evaluate_at(session, max_slack)?;
    if at_max.throughput < target {
        return Ok(None);
    }

    // Invariant: `high` reaches the target, everything below `low` does not.
    let (mut low, mut high) = (1u64, max_slack);
    let mut best = (max_slack, at_max);
    while low < high {
        let mid = low + (high - low) / 2;
        let probe = evaluate_at(session, mid)?;
        if probe.throughput >= target {
            high = mid;
            best = (mid, probe);
        } else {
            low = mid + 1;
        }
    }

    let capacities: Vec<(BufferId, u64)> = bounded
        .bounded_pairs()
        .map(|(forward, _)| {
            (
                forward,
                uniform_slack_capacity(bounded.graph().buffer(forward), best.0),
            )
        })
        .collect();
    Ok(Some(MinStorageOutcome {
        slack: best.0,
        total_storage: capacities.iter().map(|&(_, c)| c).sum(),
        capacities,
        result: best.1,
        evaluations,
    }))
}

/// Greedy per-buffer refinement of a feasible design point: for each bounded
/// buffer in turn (ascending id), binary-searches the smallest capacity —
/// with all other buffers fixed — that still reaches `target`, and locks it
/// in. Per-buffer monotonicity makes each inner search exact; the combined
/// point is feasible by construction but, like all greedy descents, not
/// necessarily the global storage minimum.
///
/// `start` must name **every** bounded buffer of `bounded` exactly once,
/// with capacities that already reach `target` (e.g. the outcome of
/// [`min_storage_for_throughput`]) — an incomplete or duplicated list would
/// silently misreport the total storage, so it is rejected. All probes run
/// on one session.
///
/// # Errors
///
/// Propagates evaluation errors; returns [`AnalysisError::Model`] with
/// [`csdf::CsdfError::DuplicateBufferCapacity`] when `start` lists a buffer
/// twice and [`csdf::CsdfError::MissingBufferCapacity`] when it references
/// an unbounded buffer or omits a bounded one.
pub fn tighten_capacities(
    bounded: &BoundedGraph,
    start: &[(BufferId, u64)],
    target: Throughput,
    options: &ExploreOptions,
) -> Result<MinStorageOutcome, AnalysisError> {
    // Every bounded buffer, exactly once: otherwise `total_storage` would
    // compare apples to oranges against a full uniform-slack outcome.
    let mut pending = vec![false; bounded.graph().buffer_count()];
    for (forward, _) in bounded.bounded_pairs() {
        pending[forward.index()] = true;
    }
    let mut seen = vec![false; pending.len()];
    for &(forward, _) in start {
        if seen.get(forward.index()).copied() == Some(true) {
            return Err(AnalysisError::Model(CsdfError::DuplicateBufferCapacity {
                buffer: bounded.graph().buffer_ref(forward),
            }));
        }
        if pending.get(forward.index()).copied() != Some(true) {
            return Err(AnalysisError::Model(CsdfError::MissingBufferCapacity {
                buffer: bounded.graph().buffer_ref(forward),
            }));
        }
        seen[forward.index()] = true;
    }
    if let Some(missing) = pending
        .iter()
        .zip(&seen)
        .position(|(&is_bounded, &covered)| is_bounded && !covered)
    {
        return Err(AnalysisError::Model(CsdfError::MissingBufferCapacity {
            buffer: bounded.graph().buffer_ref(BufferId::new(missing)),
        }));
    }

    let mut session = AnalysisSession::new(bounded.graph().clone(), options.analysis)?
        .with_warm_start(options.warm_start);
    let mut evaluations = 0usize;

    let mut capacities: Vec<(BufferId, u64)> = start.to_vec();
    for &(forward, capacity) in &capacities {
        let reverse = reverse_of(bounded, forward)?;
        session.set_capacity(forward, reverse, capacity)?;
    }

    for entry in &mut capacities {
        let (forward, start_capacity) = *entry;
        let reverse = reverse_of(bounded, forward)?;
        // The capacity can never go below the forward marking.
        let floor = bounded.graph().buffer(forward).initial_tokens();
        // Invariant: `high` reaches the target (the start point is
        // feasible), everything below `low` does not.
        let (mut low, mut high) = (floor, start_capacity);
        while low < high {
            let mid = low + (high - low) / 2;
            session.set_capacity(forward, reverse, mid)?;
            evaluations += 1;
            if session.evaluate()?.throughput >= target {
                high = mid;
            } else {
                low = mid + 1;
            }
        }
        entry.1 = high;
        session.set_capacity(forward, reverse, high)?;
    }
    // Evaluate the final assignment so the reported result matches the
    // reported capacities exactly.
    let result = session.evaluate()?;
    evaluations += 1;

    Ok(MinStorageOutcome {
        slack: 0,
        total_storage: capacities.iter().map(|&(_, c)| c).sum(),
        capacities,
        result,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;
    use csdf::Rational;

    fn multirate_chain() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 2);
        let z = b.add_sdf_task("z", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, z, 1, 2, 0);
        b.add_sdf_buffer(z, x, 2, 2, 4);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        b.add_serializing_self_loop(z);
        b.build().unwrap()
    }

    #[test]
    fn finds_the_smallest_feasible_slack() {
        let graph = multirate_chain();
        // The unbounded optimum is the loosest possible target.
        let unbounded = kperiodic::optimal_throughput(&graph).unwrap();
        let target = unbounded.throughput;
        let options = ExploreOptions::default();
        let outcome = min_storage_for_throughput(&graph, target, 64, &options)
            .unwrap()
            .expect("a generous slack reaches the unbounded optimum");
        assert!(outcome.result.throughput >= target);
        assert!(outcome.slack >= 1);
        // Minimality: one step tighter misses the target (unless already 1).
        if outcome.slack > 1 {
            let bounded = bound_all_buffers_tracked(&graph, |_, b| {
                uniform_slack_capacity(b, outcome.slack - 1)
            })
            .unwrap();
            let tighter = kperiodic::optimal_throughput(bounded.graph()).unwrap();
            assert!(tighter.throughput < target);
        }
        // A binary search beats a linear scan.
        assert!(outcome.evaluations <= 8, "{} probes", outcome.evaluations);
    }

    #[test]
    fn impossible_targets_return_none() {
        let graph = multirate_chain();
        let unbounded = kperiodic::optimal_throughput(&graph).unwrap();
        let Throughput::Finite(exact) = unbounded.throughput else {
            panic!("chain has finite throughput");
        };
        let impossible = Throughput::Finite(exact.checked_mul(&Rational::from_integer(2)).unwrap());
        let outcome =
            min_storage_for_throughput(&graph, impossible, 32, &ExploreOptions::default()).unwrap();
        assert!(outcome.is_none());
    }

    #[test]
    fn tightening_rejects_incomplete_or_duplicated_assignments() {
        let graph = multirate_chain();
        let bounded =
            bound_all_buffers_tracked(&graph, |_, b| uniform_slack_capacity(b, 8)).unwrap();
        let full: Vec<(BufferId, u64)> = bounded
            .bounded_pairs()
            .map(|(forward, _)| (forward, bounded.capacity_of(forward).unwrap()))
            .collect();
        let target = kperiodic::optimal_throughput(bounded.graph())
            .unwrap()
            .throughput;
        let options = ExploreOptions::default();

        // Missing a bounded buffer.
        let partial = &full[1..];
        assert!(matches!(
            tighten_capacities(&bounded, partial, target, &options),
            Err(AnalysisError::Model(
                CsdfError::MissingBufferCapacity { .. }
            ))
        ));
        // A buffer listed twice.
        let mut duplicated = full.clone();
        duplicated.push(full[0]);
        assert!(matches!(
            tighten_capacities(&bounded, &duplicated, target, &options),
            Err(AnalysisError::Model(
                CsdfError::DuplicateBufferCapacity { .. }
            ))
        ));
        // An unbounded buffer (a self-loop) in the list.
        let self_loop = bounded
            .graph()
            .buffers()
            .find(|(_, b)| b.is_self_loop())
            .map(|(id, _)| id)
            .expect("chain has self-loops");
        let mut unbounded = full.clone();
        unbounded[0] = (self_loop, 4);
        assert!(matches!(
            tighten_capacities(&bounded, &unbounded, target, &options),
            Err(AnalysisError::Model(
                CsdfError::MissingBufferCapacity { .. }
            ))
        ));
    }

    #[test]
    fn tightening_only_reduces_storage_and_keeps_the_target() {
        let graph = multirate_chain();
        let unbounded = kperiodic::optimal_throughput(&graph).unwrap();
        let target = unbounded.throughput;
        let options = ExploreOptions::default();
        let uniform = min_storage_for_throughput(&graph, target, 64, &options)
            .unwrap()
            .expect("feasible");

        let bounded =
            bound_all_buffers_tracked(&graph, |_, b| uniform_slack_capacity(b, uniform.slack))
                .unwrap();
        let tightened =
            tighten_capacities(&bounded, &uniform.capacities, target, &options).unwrap();
        assert!(tightened.total_storage <= uniform.total_storage);
        assert!(tightened.result.throughput >= target);
        // The reported result matches a cold evaluation of the reported
        // capacities.
        let mut cold = bounded.clone();
        for &(forward, capacity) in &tightened.capacities {
            let reverse = cold.reverse_of(forward).unwrap();
            cold.graph_mut()
                .set_capacity(forward, reverse, capacity)
                .unwrap();
        }
        assert_eq!(
            tightened.result,
            kperiodic::optimal_throughput(cold.graph()).unwrap()
        );
    }
}
