//! # csdf-explore — design-space exploration over analysis sessions
//!
//! The paper's headline use case for fast throughput evaluation is repeated
//! evaluation inside a design loop: every buffer-sized row of its Table 2 is
//! a single point of a throughput/storage trade-off that designers sweep in
//! practice. This crate is that layer above single-shot evaluation. All
//! exploration drives [`kperiodic::AnalysisSession`]s — graphs mutate in
//! place between evaluations, so the event-graph arena, solver scratch and
//! repetition vector survive the whole sweep — and independent points are
//! distributed over `std::thread::scope` workers:
//!
//! * [`ParetoSweep`] — evaluates a list of capacity assignments over a
//!   bounded graph and reports the throughput vs. total-storage frontier;
//!   [`ParetoSweep::uniform_slack`] builds the classical uniform-slack sweep
//!   (each buffer sized to `slack · (i_b + o_b)`, the paper's Table 2
//!   convention);
//! * [`min_storage_for_throughput`] — monotone binary search for the
//!   smallest uniform slack reaching a target throughput, and
//!   [`tighten_capacities`] to then shrink each buffer individually;
//! * [`ScenarioSet`] — evaluates many independent marking variants of one
//!   base graph (scenario studies), again one session per worker.
//!
//! Every evaluation uses cold-start K semantics by default, so each point's
//! result — throughput, K, iteration count — is **bit-identical** to an
//! independent cold [`kperiodic::optimal_throughput`] call on the same
//! design point, whatever the worker count; only the work to get there
//! shrinks. [`ExploreOptions::warm_start`] opts into seeding K from the
//! previous point after capacity relaxations (identical throughput, fewer
//! iterations, K may differ).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runner;
mod scenario;
mod storage;
mod sweep;

pub use runner::ExploreOptions;
pub use scenario::{Scenario, ScenarioOutcome, ScenarioSet};
pub use storage::{
    min_storage_for_throughput, min_storage_for_throughput_on, tighten_capacities,
    MinStorageOutcome,
};
pub use sweep::{uniform_slack_capacity, CapacityPoint, ParetoSweep, SweepOutcome, SweepPoint};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ExploreOptions>();
        assert_send_sync::<crate::ParetoSweep>();
        assert_send_sync::<crate::SweepOutcome>();
        assert_send_sync::<crate::ScenarioSet>();
        assert_send_sync::<crate::MinStorageOutcome>();
    }
}
