//! Shared options and the scoped-thread work loop the sweep runners use.

use std::sync::atomic::{AtomicUsize, Ordering};

use csdf::transform::BoundedGraph;
use csdf::BufferId;
use kperiodic::{AnalysisError, AnalysisSession, KIterOptions, PipelineStats};

/// Resolves the reverse (back-pressure) buffer of a bounded forward buffer,
/// mapping a missing pairing to [`csdf::CsdfError::MissingBufferCapacity`]
/// (the buffer id is valid — it just has no capacity to re-size).
pub(crate) fn reverse_of(
    bounded: &BoundedGraph,
    forward: BufferId,
) -> Result<BufferId, AnalysisError> {
    bounded.reverse_of(forward).ok_or_else(|| {
        AnalysisError::Model(csdf::CsdfError::MissingBufferCapacity {
            buffer: bounded.graph().buffer_ref(forward),
        })
    })
}

/// Options shared by every exploration runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// The K-Iter options every session evaluation runs with (limits,
    /// solver choice, per-solve thread count).
    pub analysis: KIterOptions,
    /// Number of worker threads evaluating independent design points in
    /// parallel (`std::thread::scope`; `0` is treated as `1`). Each worker
    /// owns one [`AnalysisSession`], so results are identical — and in the
    /// default cold-start mode bit-identical to independent cold
    /// evaluations — at every width.
    pub workers: usize,
    /// Seed K-Iter from the previous point after relaxation-only capacity
    /// changes (see [`AnalysisSession::with_warm_start`]). Off by default:
    /// throughput stays exact, but K/iteration counts may differ from a
    /// cold evaluation's.
    pub warm_start: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            analysis: KIterOptions::default(),
            workers: 1,
            warm_start: false,
        }
    }
}

impl ExploreOptions {
    /// The effective worker count for `points` design points.
    pub(crate) fn effective_workers(&self, points: usize) -> usize {
        self.workers.max(1).min(points.max(1))
    }
}

/// Evaluates `count` design points with `evaluate(session, index)` on a pool
/// of scoped workers, each owning one [`AnalysisSession`] created by
/// `make_session`. Results are written into a dense `Vec` by point index, so
/// the output order is deterministic whatever the interleaving; the
/// per-worker pipeline stats are merged into one sweep-wide
/// [`PipelineStats`]. The first error (by worker, arbitrary) aborts the
/// sweep.
pub(crate) fn run_points<T, M, E>(
    count: usize,
    options: &ExploreOptions,
    make_session: M,
    evaluate: E,
) -> Result<(Vec<T>, PipelineStats, usize), AnalysisError>
where
    T: Send,
    M: Fn() -> Result<AnalysisSession, AnalysisError> + Sync,
    E: Fn(&mut AnalysisSession, usize) -> Result<T, AnalysisError> + Sync,
{
    let workers = options.effective_workers(count);
    let cursor = AtomicUsize::new(0);
    let mut merged = PipelineStats::default();

    if workers <= 1 {
        // Sequential fast path: no thread spawn, same code path semantics.
        let mut session = make_session()?.with_warm_start(options.warm_start);
        let mut results = Vec::with_capacity(count);
        for index in 0..count {
            results.push(evaluate(&mut session, index)?);
        }
        merged.merge(session.stats());
        return Ok((results, merged, 1));
    }

    // Workers pull point indices off the shared cursor, collect their own
    // (index, value) pairs, and the parent scatters them into dense slots
    // afterwards — no locks, deterministic output order.
    let worker_outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let make_session = &make_session;
            let evaluate = &evaluate;
            handles.push(scope.spawn(move || -> WorkerOutcome<T> {
                let mut session = match make_session() {
                    Ok(session) => session.with_warm_start(options.warm_start),
                    Err(err) => {
                        // Exhaust the cursor so the other workers stop
                        // pulling points for a run that is already doomed.
                        cursor.store(count, Ordering::Relaxed);
                        return WorkerOutcome::failed(err);
                    }
                };
                let mut produced = Vec::new();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        break;
                    }
                    match evaluate(&mut session, index) {
                        Ok(value) => produced.push((index, value)),
                        Err(err) => {
                            cursor.store(count, Ordering::Relaxed);
                            return WorkerOutcome {
                                produced,
                                stats: *session.stats(),
                                error: Some(err),
                            };
                        }
                    }
                }
                WorkerOutcome {
                    produced,
                    stats: *session.stats(),
                    error: None,
                }
            }));
        }
        handles
            .into_iter()
            .map(|handle| handle.join().expect("explore worker panicked"))
            .collect::<Vec<_>>()
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let mut first_error = None;
    for outcome in worker_outcomes {
        merged.merge(&outcome.stats);
        if let Some(err) = outcome.error {
            first_error.get_or_insert(err);
        }
        for (index, value) in outcome.produced {
            slots[index] = Some(value);
        }
    }
    if let Some(err) = first_error {
        return Err(err);
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every point evaluated"))
        .collect();
    Ok((results, merged, workers))
}

struct WorkerOutcome<T> {
    produced: Vec<(usize, T)>,
    stats: PipelineStats,
    error: Option<AnalysisError>,
}

impl<T> WorkerOutcome<T> {
    fn failed(error: AnalysisError) -> Self {
        WorkerOutcome {
            produced: Vec::new(),
            stats: PipelineStats::default(),
            error: Some(error),
        }
    }
}
