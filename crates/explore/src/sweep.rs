//! Throughput vs. storage Pareto sweeps over bounded graphs.

use csdf::transform::{bound_all_buffers_tracked, BoundedGraph};
use csdf::{Buffer, BufferId, CsdfGraph, Throughput};
use kperiodic::{AnalysisError, KIterResult, PipelineStats};

use crate::runner::{reverse_of, run_points, ExploreOptions};

/// One capacity assignment to evaluate: a capacity per bounded (forward)
/// buffer of the design's [`BoundedGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityPoint {
    /// Free-form label carried into the [`SweepPoint`] (the slack value for
    /// uniform sweeps).
    pub label: u64,
    /// `(forward buffer, capacity)` pairs; buffers omitted here keep the
    /// capacity of the previous point evaluated by the same worker, so list
    /// every bounded buffer unless that is what you want.
    pub capacities: Vec<(BufferId, u64)>,
}

/// The evaluated design point of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// The [`CapacityPoint::label`] of the assignment.
    pub label: u64,
    /// The capacities that were applied, as listed in the point.
    pub capacities: Vec<(BufferId, u64)>,
    /// Sum of the applied capacities — the storage axis of the trade-off.
    pub total_storage: u64,
    /// The full K-Iter result (bit-identical to a cold evaluation of this
    /// design point in the default cold-start mode).
    pub result: KIterResult,
}

impl SweepPoint {
    /// The throughput of this design point.
    pub fn throughput(&self) -> Throughput {
        self.result.throughput
    }
}

/// The outcome of [`ParetoSweep::run`]: every evaluated point (in input
/// order) plus the aggregated pipeline statistics of all worker sessions.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Evaluated points, in the order the sweep listed them.
    pub points: Vec<SweepPoint>,
    /// Construction/solve split summed over all worker sessions
    /// ([`PipelineStats::merge`]).
    pub stats: PipelineStats,
    /// Number of worker sessions that participated (= number of from-scratch
    /// arena builds the sweep needed at most).
    pub sessions: usize,
}

impl SweepOutcome {
    /// The Pareto-optimal points of the throughput/storage trade-off: a
    /// point survives when no other point reaches at least its throughput
    /// with less storage, or more throughput with at most its storage.
    /// Returned sorted by total storage (ascending); among equal-throughput
    /// points only the cheapest survives.
    pub fn pareto_frontier(&self) -> Vec<&SweepPoint> {
        let mut by_storage: Vec<&SweepPoint> = self.points.iter().collect();
        by_storage.sort_by(|a, b| {
            a.total_storage
                .cmp(&b.total_storage)
                .then(b.throughput().cmp(&a.throughput()))
        });
        let mut frontier: Vec<&SweepPoint> = Vec::new();
        for point in by_storage {
            let dominated = frontier
                .last()
                .is_some_and(|best| best.throughput() >= point.throughput());
            if !dominated {
                frontier.push(point);
            }
        }
        frontier
    }
}

/// The capacity the uniform-slack convention assigns to a buffer: `slack`
/// times the tokens one producer plus one consumer iteration moves,
/// `slack · (i_b + o_b)`, never below the initial marking. This is exactly
/// the sizing rule of the paper's Table 2 "fixed buffer size" rows (and of
/// `csdf_generators::buffer_sized`), so sweep points line up with the
/// published benchmark convention.
pub fn uniform_slack_capacity(buffer: &Buffer, slack: u64) -> u64 {
    slack
        .max(1)
        .saturating_mul(buffer.total_production() + buffer.total_consumption())
        .max(buffer.initial_tokens())
}

/// A list of capacity assignments evaluated over one bounded design.
///
/// Build one with [`ParetoSweep::uniform_slack`] (the Table-2 convention) or
/// [`ParetoSweep::from_points`] for arbitrary per-buffer assignments, then
/// [`ParetoSweep::run`] it. Workers share nothing but the atomic point
/// cursor: each owns an [`kperiodic::AnalysisSession`] seeded with the
/// bounded graph, applies each point's capacities in place and re-evaluates,
/// so consecutive points on a worker reuse the arena, caches and solver
/// scratch.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use csdf_explore::{ExploreOptions, ParetoSweep};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 2);
/// builder.add_sdf_buffer(a, b, 2, 1, 0);
/// builder.add_sdf_buffer(b, a, 1, 2, 2);
/// builder.add_serializing_self_loop(a);
/// builder.add_serializing_self_loop(b);
/// let graph = builder.build()?;
///
/// let sweep = ParetoSweep::uniform_slack(&graph, &[1, 2, 4])?;
/// let outcome = sweep.run(&ExploreOptions::default())?;
/// assert_eq!(outcome.points.len(), 3);
/// assert!(!outcome.pareto_frontier().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParetoSweep {
    bounded: BoundedGraph,
    points: Vec<CapacityPoint>,
}

impl ParetoSweep {
    /// A sweep of uniform capacity slacks over `graph`: every non-self-loop
    /// buffer is bounded, and the point for slack `s` sizes each buffer to
    /// [`uniform_slack_capacity`]`(buffer, s)`.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError::Model`] from the bounding transformation.
    pub fn uniform_slack(graph: &CsdfGraph, slacks: &[u64]) -> Result<Self, AnalysisError> {
        let bounded = bound_all_buffers_tracked(graph, |_, buffer| {
            uniform_slack_capacity(buffer, slacks.first().copied().unwrap_or(1))
        })?;
        let points = slacks
            .iter()
            .map(|&slack| CapacityPoint {
                label: slack,
                capacities: bounded
                    .bounded_pairs()
                    .map(|(forward, _)| {
                        (
                            forward,
                            uniform_slack_capacity(bounded.graph().buffer(forward), slack),
                        )
                    })
                    .collect(),
            })
            .collect();
        Ok(ParetoSweep { bounded, points })
    }

    /// A sweep over explicit capacity assignments on an existing bounded
    /// design (see [`csdf::transform::bound_buffers_tracked`]).
    pub fn from_points(bounded: BoundedGraph, points: Vec<CapacityPoint>) -> Self {
        ParetoSweep { bounded, points }
    }

    /// The bounded design the sweep mutates.
    pub fn bounded(&self) -> &BoundedGraph {
        &self.bounded
    }

    /// The capacity assignments, in evaluation order.
    pub fn points(&self) -> &[CapacityPoint] {
        &self.points
    }

    /// Evaluates every point and returns them in input order together with
    /// the sweep-wide pipeline statistics.
    ///
    /// # Errors
    ///
    /// The first evaluation error aborts the sweep: capacity assignments
    /// below a buffer's marking, unknown buffer ids, solver failures or
    /// event-graph limits.
    pub fn run(&self, options: &ExploreOptions) -> Result<SweepOutcome, AnalysisError> {
        let (points, stats, sessions) = run_points(
            self.points.len(),
            options,
            || kperiodic::AnalysisSession::new(self.bounded.graph().clone(), options.analysis),
            |session, index| self.evaluate_point(session, index),
        )?;
        Ok(SweepOutcome {
            points,
            stats,
            sessions,
        })
    }

    /// Evaluates every point sequentially on a **borrowed** session — the
    /// serving-path variant of [`ParetoSweep::run`]: a daemon checks a
    /// session out of a [`kperiodic::SessionPool`] keyed on the bounded
    /// graph's structure, runs the sweep on it, and returns it warm for the
    /// next request. Results are identical to [`ParetoSweep::run`]'s at any
    /// worker count (each point is bit-identical to a cold evaluation of its
    /// design point in the default cold-start mode).
    ///
    /// The reported [`SweepOutcome::stats`] are the session's *lifetime*
    /// statistics (a pooled session carries counts from earlier requests).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::ArenaGraphMismatch`] when `session` was not built
    /// for this sweep's bounded graph structure, plus the evaluation errors
    /// of [`ParetoSweep::run`].
    pub fn run_on_session(
        &self,
        session: &mut kperiodic::AnalysisSession,
    ) -> Result<SweepOutcome, AnalysisError> {
        if session.structure_fingerprint() != kperiodic::structure_fingerprint(self.bounded.graph())
        {
            return Err(AnalysisError::ArenaGraphMismatch);
        }
        let mut points = Vec::with_capacity(self.points.len());
        for index in 0..self.points.len() {
            points.push(self.evaluate_point(session, index)?);
        }
        Ok(SweepOutcome {
            points,
            stats: *session.stats(),
            sessions: 1,
        })
    }

    /// Applies one point's capacities to `session` and evaluates it.
    fn evaluate_point(
        &self,
        session: &mut kperiodic::AnalysisSession,
        index: usize,
    ) -> Result<SweepPoint, AnalysisError> {
        let point = &self.points[index];
        for &(forward, capacity) in &point.capacities {
            let reverse = reverse_of(&self.bounded, forward)?;
            session.set_capacity(forward, reverse, capacity)?;
        }
        let result = session.evaluate()?;
        Ok(SweepPoint {
            label: point.label,
            capacities: point.capacities.clone(),
            total_storage: point.capacities.iter().map(|&(_, capacity)| capacity).sum(),
            result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn pipeline_graph() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_task("y", vec![1, 3]);
        let z = b.add_sdf_task("z", 1);
        b.add_buffer(x, y, vec![2], vec![1, 1], 0);
        b.add_buffer(y, z, vec![1, 1], vec![2], 0);
        b.add_sdf_buffer(z, x, 1, 1, 2);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        b.add_serializing_self_loop(z);
        b.build().unwrap()
    }

    #[test]
    fn uniform_sweep_is_monotone_and_frontier_is_minimal() {
        let graph = pipeline_graph();
        let sweep = ParetoSweep::uniform_slack(&graph, &[1, 2, 3, 4, 8]).unwrap();
        let outcome = sweep.run(&ExploreOptions::default()).unwrap();
        assert_eq!(outcome.points.len(), 5);
        for pair in outcome.points.windows(2) {
            assert!(pair[1].throughput() >= pair[0].throughput());
            assert!(pair[1].total_storage >= pair[0].total_storage);
        }
        let frontier = outcome.pareto_frontier();
        assert!(!frontier.is_empty());
        for pair in frontier.windows(2) {
            assert!(pair[1].total_storage > pair[0].total_storage);
            assert!(pair[1].throughput() > pair[0].throughput());
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let graph = pipeline_graph();
        let sweep = ParetoSweep::uniform_slack(&graph, &[1, 2, 3, 4, 5, 6]).unwrap();
        let sequential = sweep.run(&ExploreOptions::default()).unwrap();
        for workers in [2usize, 4] {
            let parallel = sweep
                .run(&ExploreOptions {
                    workers,
                    ..ExploreOptions::default()
                })
                .unwrap();
            assert_eq!(sequential.points, parallel.points, "workers = {workers}");
            assert!(parallel.sessions <= workers);
        }
    }

    #[test]
    fn sweep_points_match_independent_cold_evaluations() {
        let graph = pipeline_graph();
        let sweep = ParetoSweep::uniform_slack(&graph, &[1, 3, 2]).unwrap();
        let outcome = sweep
            .run(&ExploreOptions {
                workers: 2,
                ..ExploreOptions::default()
            })
            .unwrap();
        for point in &outcome.points {
            let mut cold = sweep.bounded().clone();
            for &(forward, capacity) in &point.capacities {
                let reverse = cold.reverse_of(forward).unwrap();
                cold.graph_mut()
                    .set_capacity(forward, reverse, capacity)
                    .unwrap();
            }
            let reference = kperiodic::optimal_throughput(cold.graph()).unwrap();
            assert_eq!(point.result, reference, "slack {}", point.label);
        }
    }

    #[test]
    fn capacity_errors_abort_the_sweep() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 5);
        let graph = b.build().unwrap();
        let bounded = bound_all_buffers_tracked(&graph, |_, b| b.initial_tokens()).unwrap();
        let forward = BufferId::new(0);
        let sweep = ParetoSweep::from_points(
            bounded,
            vec![CapacityPoint {
                label: 0,
                // Below the forward marking of 5.
                capacities: vec![(forward, 1)],
            }],
        );
        assert!(sweep.run(&ExploreOptions::default()).is_err());
    }
}
