//! Pre-solve throughput bounds (`B001`/`B002`/`B003`) and the near-deadlock
//! warning (`W001`).
//!
//! Every bound is *sound*, never tight-by-construction:
//!
//! * **Workload upper bound** — a task serialised by an all-ones-rate
//!   self-loop holding `m` tokens runs at most `m` firings concurrently, so
//!   one graph iteration keeps it busy for at least `q_t · Σd_t / m` time:
//!   `Th ≤ m / (q_t · Σd_t)`.
//! * **Cycle upper bound** — a directed cycle `C` of `k` buffers stores
//!   `W(C) = Σ M0(b) / (q_src(b) · i_b)` graph iterations of tokens; at most
//!   `W(C) + k` iterations are ever in flight around it (each buffer hides
//!   less than one extra partial iteration), and each must thread through
//!   `k` dependent firings of total duration at least
//!   `L(C) = Σ min-phase-duration`: `Th ≤ (W(C) + k) / L(C)`. Emitted only
//!   when every task on the cycle is serialised by an all-ones self-loop
//!   holding exactly one token: the event-graph model evaluated by the
//!   K-periodic solver leaves the firings of a non-serialised multiphase
//!   task unordered, and that extra concurrency can push its answer above
//!   the bound (up to [`Throughput::Unbounded`]). With every cycle task
//!   serialised the solver's model contains the firing-level precedences
//!   the bound is derived from, so the bracket holds.
//! * **Sequential lower bound** — when the liveness pass proves the graph
//!   live, the greedy firing order is a feasible schedule that repeats from
//!   `M0`; run sequentially it takes `Σ_t q_t · Σd_t` per iteration:
//!   `Th ≥ 1 / Σ_t q_t · Σd_t`. Without a liveness proof the lower bound
//!   stays vacuous ([`Throughput::Deadlocked`]).

use csdf::{BufferId, CsdfGraph, Rational, RationalSum, RepetitionVector, TaskId, Throughput};

use crate::diag::{Diagnostic, LintCode, LintReport, ThroughputBounds};
use crate::graphops;
use crate::liveness::LivenessOutcome;
use crate::{LintOptions, Spans};

/// Computes the bracket and pushes `W001` + `B0xx` diagnostics.
pub(crate) fn compute(
    graph: &CsdfGraph,
    q: &RepetitionVector,
    liveness: &LivenessOutcome,
    options: &LintOptions,
    spans: &Spans<'_>,
    report: &mut LintReport,
) -> ThroughputBounds {
    let mut upper = Throughput::Unbounded;

    // `B002` soundness gate: a task counts as serialised when some all-ones
    // self-loop holds exactly one token, forcing its firings into a chain.
    let serialized: Vec<bool> = (0..graph.task_count())
        .map(|index| {
            graph.outgoing(TaskId::new(index)).iter().any(|&buffer_id| {
                let buffer = graph.buffer(buffer_id);
                buffer.is_self_loop()
                    && buffer.initial_tokens() == 1
                    && buffer.production().iter().all(|&r| r == 1)
                    && buffer.consumption().iter().all(|&r| r == 1)
            })
        })
        .collect();

    // Near-deadlock warnings and cycle bounds from sampled witness cycles.
    let mut best_cycle: Option<(Rational, Vec<usize>)> = None;
    for (scc, &live) in liveness.sccs.iter().zip(&liveness.scc_live) {
        if !scc.cyclic || scc.members.len() < 2 {
            continue;
        }
        let cycles =
            graphops::sample_cycles(&liveness.digraph, &scc.members, options.max_cycles_per_scc);
        let mut nearest: Option<(Rational, Vec<usize>)> = None;
        for cycle in cycles {
            let Some(stats) = cycle_stats(graph, q, &cycle) else {
                continue;
            };
            if live
                && stats.stored_iterations < Rational::ONE
                && nearest
                    .as_ref()
                    .map_or(true, |(w, _)| stats.stored_iterations < *w)
            {
                nearest = Some((stats.stored_iterations, cycle.clone()));
            }
            let cycle_serialized = cycle
                .iter()
                .all(|&b| serialized[graph.buffer(BufferId::new(b)).source().index()]);
            if cycle_serialized {
                if let Some(bound) = stats.upper_bound() {
                    if best_cycle.as_ref().map_or(true, |(b, _)| bound < *b) {
                        best_cycle = Some((bound, cycle));
                    }
                }
            }
        }
        if let Some((stored, cycle)) = nearest {
            report.push(near_deadlock_diagnostic(graph, spans, stored, &cycle));
        }
    }

    // Workload bounds from serialising self-loops.
    let mut best_workload: Option<(Rational, usize, u64)> = None; // (bound, task, m)
    for (task_id, task) in graph.tasks() {
        let mut concurrency: Option<u64> = None;
        for &buffer_id in graph.outgoing(task_id) {
            let buffer = graph.buffer(buffer_id);
            if !buffer.is_self_loop()
                || buffer.production().iter().any(|&r| r != 1)
                || buffer.consumption().iter().any(|&r| r != 1)
            {
                continue;
            }
            let m = buffer.initial_tokens();
            concurrency = Some(concurrency.map_or(m, |c| c.min(m)));
        }
        let Some(m) = concurrency else { continue };
        if m == 0 || task.total_duration() == 0 {
            // m == 0 is a self-starving task (`L004`); zero duration never
            // constrains throughput.
            continue;
        }
        let busy = (q.get(task_id) as i128).checked_mul(task.total_duration() as i128);
        let Some(busy) = busy else { continue };
        let Ok(bound) = Rational::new(m as i128, busy) else {
            continue;
        };
        if best_workload
            .as_ref()
            .map_or(true, |(best, _, _)| bound < *best)
        {
            best_workload = Some((bound, task_id.index(), m));
        }
    }

    if let Some((bound, task_index, m)) = &best_workload {
        let task = graph.task(TaskId::new(*task_index));
        let mut diagnostic = Diagnostic::new(
            LintCode::WorkloadUpperBound,
            format!(
                "workload bound: task `{}` admits {m} concurrent firing(s) and needs \
                 {} time unit(s) per graph iteration, so Th <= {bound}",
                task.name(),
                q.get(TaskId::new(*task_index)) as u128 * task.total_duration() as u128,
            ),
        );
        diagnostic.line = spans.task_line(*task_index);
        diagnostic.tasks = vec![task.name().to_string()];
        report.push(diagnostic);
        upper = upper.min(Throughput::Finite(*bound));
    }
    if let Some((bound, cycle)) = &best_cycle {
        let buffers: Vec<_> = cycle
            .iter()
            .map(|&b| graph.buffer_ref(BufferId::new(b)))
            .collect();
        let tasks: Vec<String> = buffers.iter().map(|b| b.source.clone()).collect();
        let mut diagnostic = Diagnostic::new(
            LintCode::CycleUpperBound,
            format!(
                "cycle bound: the {}-buffer cycle through tasks [{}] limits throughput \
                 to Th <= {bound}",
                cycle.len(),
                tasks.join(", "),
            ),
        );
        diagnostic.line = cycle.first().and_then(|&b| spans.buffer_line(b));
        diagnostic.tasks = tasks;
        diagnostic.buffers = buffers;
        report.push(diagnostic);
        upper = upper.min(Throughput::Finite(*bound));
    }

    // Lower bound: deadlock verdict, proven-live sequential schedule, or
    // vacuous when liveness is unknown.
    let lower = if report.certain_deadlock() {
        upper = Throughput::Deadlocked;
        report.push(Diagnostic::new(
            LintCode::SequentialLowerBound,
            "the graph deadlocks: throughput is exactly 0".to_string(),
        ));
        Throughput::Deadlocked
    } else if liveness.live_proven() {
        let mut total: u128 = 0;
        for (task_id, task) in graph.tasks() {
            total += q.get(task_id) as u128 * task.total_duration() as u128;
        }
        match i128::try_from(total) {
            Ok(0) => {
                report.push(Diagnostic::new(
                    LintCode::SequentialLowerBound,
                    "the graph is live and all durations are zero: throughput is unbounded"
                        .to_string(),
                ));
                upper = Throughput::Unbounded;
                Throughput::Unbounded
            }
            Ok(total) => {
                let bound = Rational::new(1, total).expect("nonzero total");
                report.push(Diagnostic::new(
                    LintCode::SequentialLowerBound,
                    format!(
                        "the graph is live; a sequential schedule achieves Th >= {bound} \
                         (one iteration in {total} time unit(s))"
                    ),
                ));
                Throughput::Finite(bound)
            }
            Err(_) => Throughput::Deadlocked,
        }
    } else {
        report.push(Diagnostic::new(
            LintCode::SequentialLowerBound,
            "liveness not established statically: no positive lower bound claimed".to_string(),
        ));
        Throughput::Deadlocked
    };

    ThroughputBounds { lower, upper }
}

struct CycleStats {
    /// `W(C)`: initial tokens normalised to graph iterations.
    stored_iterations: Rational,
    /// `k`: number of buffers (= tasks) on the cycle.
    length: usize,
    /// `L(C)`: sum of the minimum phase duration of every task on the cycle.
    min_duration_sum: u128,
}

impl CycleStats {
    /// `(W + k) / L`, or `None` when `L == 0` or arithmetic overflows
    /// (skipping a candidate is always sound).
    fn upper_bound(&self) -> Option<Rational> {
        let denominator = i128::try_from(self.min_duration_sum).ok()?;
        if denominator == 0 {
            return None;
        }
        let numerator = self
            .stored_iterations
            .checked_add(&Rational::from_integer(self.length as i128))
            .ok()?;
        numerator
            .checked_div(&Rational::from_integer(denominator))
            .ok()
    }
}

/// Computes `W(C)`, `k` and `L(C)` for one sampled cycle; `None` when a
/// normalisation term overflows.
fn cycle_stats(graph: &CsdfGraph, q: &RepetitionVector, cycle: &[usize]) -> Option<CycleStats> {
    let mut stored = RationalSum::new();
    let mut min_duration_sum: u128 = 0;
    for &buffer_index in cycle {
        let buffer = graph.buffer(BufferId::new(buffer_index));
        let producer = buffer.source();
        let per_iteration =
            (q.get(producer) as i128).checked_mul(buffer.total_production() as i128)?;
        let term = Rational::new(buffer.initial_tokens() as i128, per_iteration).ok()?;
        stored.add(&term).ok()?;
        let task = graph.task(producer);
        let min_duration = task.durations().iter().copied().min().unwrap_or(0);
        min_duration_sum += min_duration as u128;
    }
    Some(CycleStats {
        stored_iterations: stored.finish(),
        length: cycle.len(),
        min_duration_sum,
    })
}

fn near_deadlock_diagnostic(
    graph: &CsdfGraph,
    spans: &Spans<'_>,
    stored: Rational,
    cycle: &[usize],
) -> Diagnostic {
    let buffers: Vec<_> = cycle
        .iter()
        .map(|&b| graph.buffer_ref(BufferId::new(b)))
        .collect();
    let tasks: Vec<String> = buffers.iter().map(|b| b.source.clone()).collect();
    let mut diagnostic = Diagnostic::new(
        LintCode::NearDeadlockCycle,
        format!(
            "near-deadlock cycle: the cycle through tasks [{}] stores only {stored} \
             iteration(s) of tokens (< 1); it is live but likely the throughput bottleneck",
            tasks.join(", "),
        ),
    );
    diagnostic.line = cycle.first().and_then(|&b| spans.buffer_line(b));
    diagnostic.tasks = tasks;
    diagnostic.buffers = buffers;
    diagnostic
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness;
    use csdf::CsdfGraphBuilder;

    fn analyze_bounds(graph: &CsdfGraph) -> (ThroughputBounds, LintReport) {
        let q = graph.repetition_vector().unwrap();
        let self_loop_ok = vec![true; graph.task_count()];
        let mut report = LintReport::new();
        let options = LintOptions::default();
        let outcome = liveness::check(
            graph,
            &q,
            &self_loop_ok,
            &options,
            &Spans::none(),
            &mut report,
        );
        let bounds = compute(graph, &q, &outcome, &options, &Spans::none(), &mut report);
        (bounds, report)
    }

    #[test]
    fn serialized_chain_gets_workload_upper_and_sequential_lower() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 4);
        let y = b.add_sdf_task("y", 2);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let (bounds, report) = analyze_bounds(&g);
        // Upper: slowest serialized task runs 4 time units per iteration.
        assert_eq!(
            bounds.upper,
            Throughput::Finite(Rational::new(1, 4).unwrap())
        );
        // Lower: sequential schedule takes 6.
        assert_eq!(
            bounds.lower,
            Throughput::Finite(Rational::new(1, 6).unwrap())
        );
        assert!(report.has_code(LintCode::WorkloadUpperBound));
        assert!(report.has_code(LintCode::SequentialLowerBound));
        // The exact throughput 1/4 is inside the bracket.
        assert!(bounds.brackets(&Throughput::Finite(Rational::new(1, 4).unwrap())));
    }

    #[test]
    fn tight_cycle_produces_cycle_bound_and_near_deadlock_warning() {
        // Live multirate 2-cycle (q = [2, 3]) storing W = 5/6 < 1 iterations;
        // both tasks serialised, so the cycle bound is emitted.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 3);
        let y = b.add_sdf_task("y", 5);
        b.add_sdf_buffer(x, y, 3, 2, 0);
        b.add_sdf_buffer(y, x, 2, 3, 5);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let (bounds, report) = analyze_bounds(&g);
        assert!(!report.certain_deadlock(), "the cycle is live");
        assert!(report.has_code(LintCode::NearDeadlockCycle), "W = 5/6 < 1");
        // Cycle bound: W = 5/6, k = 2, L = 3 + 5: Th <= (5/6 + 2)/8 = 17/48.
        assert!(report.has_code(LintCode::CycleUpperBound));
        // Workload bound on `y` is tighter: Th <= 1 / (3 · 5) = 1/15 < 17/48.
        assert!(report.has_code(LintCode::WorkloadUpperBound));
        assert_eq!(
            bounds.upper,
            Throughput::Finite(Rational::new(1, 15).unwrap())
        );
        // Sequential lower bound: 1/(2·3 + 3·5) = 1/21.
        assert_eq!(
            bounds.lower,
            Throughput::Finite(Rational::new(1, 21).unwrap())
        );
    }

    #[test]
    fn cycle_bound_is_withheld_without_full_serialization() {
        // The same 2-cycle without self-loops: the solver's event graph does
        // not order concurrent firings of the tasks, so no cycle bound may be
        // claimed. Only the sequential lower bound remains.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 3);
        let y = b.add_sdf_task("y", 5);
        b.add_sdf_buffer(x, y, 3, 2, 0);
        b.add_sdf_buffer(y, x, 2, 3, 5);
        let g = b.build().unwrap();
        let (bounds, report) = analyze_bounds(&g);
        assert!(
            report.has_code(LintCode::NearDeadlockCycle),
            "W001 is heuristic, stays"
        );
        assert!(!report.has_code(LintCode::CycleUpperBound));
        assert!(!report.has_code(LintCode::WorkloadUpperBound));
        assert_eq!(bounds.upper, Throughput::Unbounded);
        assert_eq!(
            bounds.lower,
            Throughput::Finite(Rational::new(1, 21).unwrap())
        );
    }

    #[test]
    fn deadlocked_graph_collapses_the_bracket_to_zero() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        let (bounds, report) = analyze_bounds(&g);
        assert!(report.certain_deadlock());
        assert_eq!(bounds.lower, Throughput::Deadlocked);
        assert_eq!(bounds.upper, Throughput::Deadlocked);
        assert!(bounds.brackets(&Throughput::Deadlocked));
    }

    #[test]
    fn unconstrained_acyclic_graph_is_unbounded_above() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        let g = b.build().unwrap();
        let (bounds, _) = analyze_bounds(&g);
        assert_eq!(bounds.upper, Throughput::Unbounded);
        assert_eq!(
            bounds.lower,
            Throughput::Finite(Rational::new(1, 2).unwrap())
        );
    }
}
