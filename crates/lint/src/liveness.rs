//! Deadlock pass (`L002`): exact single-iteration token simulation of every
//! cyclic strongly-connected component.
//!
//! CSDF firings are monotonic (firing a task never disables another), so a
//! greedy data-driven simulation is confluent: it either completes one full
//! graph iteration — proving the component live, because the marking returns
//! to `M0` and the schedule can repeat forever — or reaches the unique
//! maximal stuck state, proving *certain* deadlock. Restricting each
//! simulation to its SCC (buffers whose endpoints both lie inside it,
//! external inputs assumed abundant) is sound in both directions: removing
//! constraints cannot create a deadlock, and a graph whose SCCs are all live
//! in isolation is live as a whole (process SCCs in topological order; one
//! full upstream iteration delivers exactly the tokens one downstream
//! iteration consumes, by the balance equations).

use std::collections::VecDeque;

use csdf::{BufferId, CsdfGraph, RepetitionVector, TaskId};

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::graphops::{self, Scc, TaskDigraph};
use crate::{LintOptions, Spans};

/// What the pass learned about each SCC, reused by the bounds pass.
pub(crate) struct LivenessOutcome {
    /// The task digraph (self-loops excluded), for cycle sampling.
    pub digraph: TaskDigraph,
    /// The SCCs, sorted by smallest member.
    pub sccs: Vec<Scc>,
    /// Per SCC: `true` when proven live in isolation.
    pub scc_live: Vec<bool>,
    /// `true` when some SCC was too large to simulate within the budget.
    pub budget_exhausted: bool,
}

impl LivenessOutcome {
    /// `true` when the whole graph is proven live (every SCC live, nothing
    /// skipped): the sequential lower bound applies.
    pub(crate) fn live_proven(&self) -> bool {
        !self.budget_exhausted && self.scc_live.iter().all(|&live| live)
    }
}

/// Runs the pass. `self_loop_ok[t]` is the verdict of the static self-loop
/// check: a failing task is already diagnosed (`L004`), so its singleton SCC
/// is recorded dead without a duplicate `L002`.
pub(crate) fn check(
    graph: &CsdfGraph,
    q: &RepetitionVector,
    self_loop_ok: &[bool],
    options: &LintOptions,
    spans: &Spans<'_>,
    report: &mut LintReport,
) -> LivenessOutcome {
    let digraph = TaskDigraph::build(graph);
    let mut has_self_loop = vec![false; graph.task_count()];
    for (_, buffer) in graph.buffers() {
        if buffer.is_self_loop() {
            has_self_loop[buffer.source().index()] = true;
        }
    }
    let sccs = graphops::strongly_connected_components(&digraph, |t| has_self_loop[t]);

    let mut scc_live = Vec::with_capacity(sccs.len());
    let mut budget_exhausted = false;
    for scc in &sccs {
        if scc.members.len() == 1 {
            // Self-loops are the only internal buffers of a singleton SCC and
            // the static per-loop check is exact for them (necessary per
            // loop, and jointly sufficient: each firing touches every loop).
            scc_live.push(self_loop_ok[scc.members[0]]);
            continue;
        }
        match simulate(graph, q, &scc.members, options.simulation_budget) {
            SimResult::Completed => scc_live.push(true),
            SimResult::BudgetExceeded { firings_needed } => {
                budget_exhausted = true;
                scc_live.push(false);
                report.push(Diagnostic::new(
                    LintCode::AnalysisBudgetExceeded,
                    format!(
                        "liveness simulation skipped: a {}-task component needs \
                         {firings_needed} firings per iteration, above the budget of {} — \
                         liveness not established statically",
                        scc.members.len(),
                        options.simulation_budget
                    ),
                ));
            }
            SimResult::Stuck { cycle } => {
                scc_live.push(false);
                report.push(stuck_diagnostic(graph, spans, &cycle));
            }
        }
    }
    LivenessOutcome {
        digraph,
        sccs,
        scc_live,
        budget_exhausted,
    }
}

enum SimResult {
    Completed,
    BudgetExceeded {
        firings_needed: u128,
    },
    /// A waits-for cycle from the stuck state: `(task, buffer)` pairs where
    /// each task waits on the buffer and the buffer's producer is the next
    /// task in the cycle.
    Stuck {
        cycle: Vec<(usize, usize)>,
    },
}

/// Greedy single-iteration simulation of one multi-task SCC, restricted to
/// its internal buffers. Deterministic: a work queue seeded in ascending
/// member order, each popped task fired as often as it can.
fn simulate(graph: &CsdfGraph, q: &RepetitionVector, members: &[usize], budget: u64) -> SimResult {
    let n = graph.task_count();
    let mut local = vec![usize::MAX; n];
    for (i, &m) in members.iter().enumerate() {
        local[m] = i;
    }

    // Internal buffers, in buffer-id order.
    let mut buffers: Vec<usize> = Vec::new();
    let mut tokens: Vec<u128> = Vec::new();
    let mut inputs: Vec<Vec<usize>> = vec![Vec::new(); members.len()]; // local buffer positions
    let mut outputs: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
    for (id, buffer) in graph.buffers() {
        let (s, t) = (buffer.source().index(), buffer.target().index());
        if local[s] == usize::MAX || local[t] == usize::MAX {
            continue;
        }
        let position = buffers.len();
        buffers.push(id.index());
        tokens.push(buffer.initial_tokens() as u128);
        outputs[local[s]].push(position);
        inputs[local[t]].push(position);
    }

    let mut remaining: Vec<u128> = Vec::with_capacity(members.len());
    let mut fired: Vec<u128> = vec![0; members.len()];
    let mut firings_needed: u128 = 0;
    for &m in members {
        let task = graph.task(TaskId::new(m));
        let per_task = q.get(TaskId::new(m)) as u128 * task.phase_count() as u128;
        firings_needed += per_task;
        remaining.push(per_task);
    }
    if firings_needed > budget as u128 {
        return SimResult::BudgetExceeded { firings_needed };
    }

    let can_fire = |member: usize, fired: &[u128], tokens: &[u128]| -> bool {
        let task_index = members[member];
        let phases = graph.task(TaskId::new(task_index)).phase_count() as u128;
        let phase = (fired[member] % phases) as usize;
        inputs[member].iter().all(|&position| {
            let buffer = graph.buffer(BufferId::new(buffers[position]));
            tokens[position] >= buffer.consumption_at(phase) as u128
        })
    };

    let mut queue: VecDeque<usize> = (0..members.len()).collect();
    let mut queued = vec![true; members.len()];
    let mut unfinished = members.len();
    while let Some(member) = queue.pop_front() {
        queued[member] = false;
        let task_index = members[member];
        let phases = graph.task(TaskId::new(task_index)).phase_count() as u128;
        let mut produced_any = false;
        while remaining[member] > 0 && can_fire(member, &fired, &tokens) {
            let phase = (fired[member] % phases) as usize;
            for &position in &inputs[member] {
                let buffer = graph.buffer(BufferId::new(buffers[position]));
                tokens[position] -= buffer.consumption_at(phase) as u128;
            }
            for &position in &outputs[member] {
                let buffer = graph.buffer(BufferId::new(buffers[position]));
                tokens[position] += buffer.production_at(phase) as u128;
            }
            fired[member] += 1;
            remaining[member] -= 1;
            produced_any = true;
            if remaining[member] == 0 {
                unfinished -= 1;
            }
        }
        if produced_any {
            for &position in &outputs[member] {
                let buffer = graph.buffer(BufferId::new(buffers[position]));
                let consumer = local[buffer.target().index()];
                if !queued[consumer] && remaining[consumer] > 0 {
                    queued[consumer] = true;
                    queue.push_back(consumer);
                }
            }
        }
    }
    if unfinished == 0 {
        return SimResult::Completed;
    }

    // Extract a waits-for cycle: every unfinished task is blocked on some
    // internal buffer whose producer is itself unfinished (a finished
    // producer has delivered a full iteration, which by the balance
    // equations covers every remaining need).
    let blocking = |member: usize| -> Option<usize> {
        let task_index = members[member];
        let phases = graph.task(TaskId::new(task_index)).phase_count() as u128;
        let phase = (fired[member] % phases) as usize;
        inputs[member].iter().copied().find(|&position| {
            let buffer = graph.buffer(BufferId::new(buffers[position]));
            tokens[position] < buffer.consumption_at(phase) as u128
        })
    };
    let start = (0..members.len())
        .find(|&m| remaining[m] > 0)
        .expect("some task is unfinished");
    let mut visited_at = vec![usize::MAX; members.len()];
    let mut walk: Vec<(usize, usize)> = Vec::new(); // (member, blocking buffer position)
    let mut cursor = start;
    loop {
        if visited_at[cursor] != usize::MAX {
            let cycle = walk[visited_at[cursor]..]
                .iter()
                .map(|&(member, position)| (members[member], buffers[position]))
                .collect();
            return SimResult::Stuck { cycle };
        }
        let Some(position) = blocking(cursor) else {
            // Unreachable for a correct simulation; degrade to whatever
            // prefix was collected rather than panicking on a lint path.
            let cycle = walk
                .iter()
                .map(|&(member, position)| (members[member], buffers[position]))
                .collect();
            return SimResult::Stuck { cycle };
        };
        visited_at[cursor] = walk.len();
        walk.push((cursor, position));
        let producer = graph.buffer(BufferId::new(buffers[position])).source();
        cursor = local[producer.index()];
        if remaining[cursor] == 0 {
            let cycle = walk
                .iter()
                .map(|&(member, position)| (members[member], buffers[position]))
                .collect();
            return SimResult::Stuck { cycle };
        }
    }
}

/// Builds the `L002` diagnostic from a waits-for cycle, quoting the cycle's
/// stored tokens normalised to graph iterations.
fn stuck_diagnostic(graph: &CsdfGraph, spans: &Spans<'_>, cycle: &[(usize, usize)]) -> Diagnostic {
    let buffers: Vec<_> = cycle
        .iter()
        .map(|&(_, b)| graph.buffer_ref(BufferId::new(b)))
        .collect();
    let tasks: Vec<String> = cycle
        .iter()
        .map(|&(t, _)| graph.task(TaskId::new(t)).name().to_string())
        .collect();
    let stored: u128 = cycle
        .iter()
        .map(|&(_, b)| graph.buffer(BufferId::new(b)).initial_tokens() as u128)
        .sum();
    let cycle_text = buffers
        .iter()
        .map(|b| format!("`{}`->`{}`", b.source, b.target))
        .collect::<Vec<_>>()
        .join(", ");
    let mut diagnostic = Diagnostic::new(
        LintCode::DeadlockedCycle,
        format!(
            "certain deadlock: tasks [{}] wait cyclically on buffers [{}] holding {} \
             initial token(s) in total — no firing order completes one graph iteration",
            tasks.join(", "),
            cycle_text,
            stored
        ),
    );
    diagnostic.line = cycle.first().and_then(|&(_, b)| spans.buffer_line(b));
    diagnostic.tasks = tasks;
    diagnostic.buffers = buffers;
    diagnostic
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn run(graph: &CsdfGraph) -> (LivenessOutcome, LintReport) {
        let q = graph.repetition_vector().unwrap();
        let self_loop_ok = vec![true; graph.task_count()];
        let mut report = LintReport::new();
        let outcome = check(
            graph,
            &q,
            &self_loop_ok,
            &LintOptions::default(),
            &Spans::none(),
            &mut report,
        );
        (outcome, report)
    }

    #[test]
    fn tokenless_ring_deadlocks_with_cycle_certificate() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let z = b.add_sdf_task("z", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, z, 1, 1, 0);
        b.add_sdf_buffer(z, x, 1, 1, 0);
        let g = b.build().unwrap();
        let (outcome, report) = run(&g);
        assert!(!outcome.live_proven());
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::DeadlockedCycle);
        assert_eq!(d.buffers.len(), 3, "the full ring is the certificate");
        // Waits-for order: x waits on its producer z, z on y, y on x.
        assert_eq!(d.tasks, vec!["x", "z", "y"]);
    }

    #[test]
    fn ring_with_one_token_is_live() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        let g = b.build().unwrap();
        let (outcome, report) = run(&g);
        assert!(outcome.live_proven());
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn multirate_cycle_with_insufficient_tokens_deadlocks() {
        // y needs 3 tokens per firing but the cycle only ever holds 2.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 3, 2);
        b.add_sdf_buffer(y, x, 3, 1, 0);
        let g = b.build().unwrap();
        let (outcome, report) = run(&g);
        assert!(!outcome.live_proven());
        assert!(report.has_code(LintCode::DeadlockedCycle));
    }

    #[test]
    fn cyclo_static_phase_order_matters() {
        // Cyclo-static rates: u's first phase needs 2 tokens but the cycle
        // only ever holds 1 — certain deadlock despite consistent totals.
        let mut b = CsdfGraphBuilder::new();
        let t = b.add_sdf_task("t", 1);
        let u = b.add_task("u", vec![1, 1]);
        b.add_buffer(t, u, vec![1], vec![2, 1], 1);
        b.add_buffer(u, t, vec![1, 2], vec![1], 0);
        let g = b.build().unwrap();
        let (outcome, report) = run(&g);
        assert!(!outcome.live_proven());
        assert!(report.has_code(LintCode::DeadlockedCycle));
    }

    #[test]
    fn budget_exhaustion_is_reported_not_misjudged() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        let mut report = LintReport::new();
        let options = LintOptions {
            simulation_budget: 1,
            ..LintOptions::default()
        };
        let outcome = check(&g, &q, &[true, true], &options, &Spans::none(), &mut report);
        assert!(!outcome.live_proven());
        assert!(outcome.budget_exhausted);
        assert!(report.has_code(LintCode::AnalysisBudgetExceeded));
        assert!(!report.certain_deadlock());
    }
}
