//! Structural passes that need no repetition vector: capacity contradictions
//! (`L003`), self-starving tasks (`L004`), isolated components (`W002`) and
//! zero-duration tasks (`W003`).

use csdf::{BufferId, CsdfGraph, TaskId};

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::graphops;
use crate::Spans;

/// Detects forward/reverse buffer pairs whose combined marking (= the
/// modelled channel capacity) is below the tokens some single phase firing
/// produces or consumes: that phase can never fire.
///
/// Soundness: for any pair of mutually mirrored buffers `f`/`r`, every firing
/// moves the same token count from one to the other, so
/// `tokens(f) + tokens(r)` is invariant — whatever the pair was *meant* to
/// model, neither side can ever hold more than `M0(f) + M0(r)` tokens.
pub(crate) fn check_capacity_pairs(graph: &CsdfGraph, spans: &Spans<'_>, report: &mut LintReport) {
    let buffer_count = graph.buffer_count();
    for i in 0..buffer_count {
        let forward = graph.buffer(BufferId::new(i));
        if forward.is_self_loop() {
            continue;
        }
        for j in (i + 1)..buffer_count {
            let reverse = graph.buffer(BufferId::new(j));
            if !reverse.is_reverse_of(forward) {
                continue;
            }
            let capacity = forward.initial_tokens() as u128 + reverse.initial_tokens() as u128;
            // Largest single-firing token need on either side; the mirrored
            // rate vectors make the two sides' needs coincide pairwise.
            let need = forward
                .production()
                .iter()
                .chain(forward.consumption().iter())
                .copied()
                .max()
                .unwrap_or(0) as u128;
            if capacity >= need {
                continue;
            }
            let forward_ref = graph.buffer_ref(BufferId::new(i));
            let reverse_ref = graph.buffer_ref(BufferId::new(j));
            let mut diagnostic = Diagnostic::new(
                LintCode::CapacityContradiction,
                format!(
                    "channel capacity contradiction: {forward_ref} and its reverse \
                     {reverse_ref} hold {capacity} token(s) combined, but a single firing \
                     needs {need} — the graph deadlocks"
                ),
            );
            diagnostic.line = spans.buffer_line(i);
            diagnostic.tasks = vec![
                graph.task(forward.source()).name().to_string(),
                graph.task(forward.target()).name().to_string(),
            ];
            diagnostic.tasks.dedup();
            diagnostic.buffers = vec![forward_ref, reverse_ref];
            report.push(diagnostic);
        }
    }
}

/// Checks every self-loop statically: simulating the owning task's phase
/// sequence against the loop marking is exact, because no other task touches
/// a self-loop. Returns, per task, whether all its self-loops passed (the
/// liveness pass treats failing tasks as already-diagnosed).
///
/// One iteration suffices: on rate-consistent graphs a self-loop's total
/// production equals its total consumption, so the marking returns to `M0`
/// after each iteration. (On inconsistent graphs `L001` already fired and
/// this pass still reports a valid *necessary* condition.)
pub(crate) fn check_self_loops(
    graph: &CsdfGraph,
    spans: &Spans<'_>,
    report: &mut LintReport,
) -> Vec<bool> {
    let mut ok = vec![true; graph.task_count()];
    for (id, buffer) in graph.buffers() {
        if !buffer.is_self_loop() {
            continue;
        }
        let task_index = buffer.source().index();
        let task = graph.task(buffer.source());
        let mut tokens = buffer.initial_tokens() as u128;
        for phase in 0..task.phase_count() {
            let need = buffer.consumption_at(phase) as u128;
            if tokens < need {
                ok[task_index] = false;
                let buffer_ref = graph.buffer_ref(id);
                let mut diagnostic = Diagnostic::new(
                    LintCode::SelfStarvingTask,
                    format!(
                        "task `{}` starves on its self-loop {buffer_ref}: phase {} needs \
                         {need} token(s) but only {tokens} can ever be available — the \
                         task can never complete an iteration",
                        task.name(),
                        phase + 1,
                    ),
                );
                diagnostic.line = spans
                    .task_line(task_index)
                    .or_else(|| spans.buffer_line(id.index()));
                diagnostic.tasks = vec![task.name().to_string()];
                diagnostic.buffers = vec![buffer_ref];
                report.push(diagnostic);
                break;
            }
            tokens = tokens - need + buffer.production_at(phase) as u128;
        }
    }
    ok
}

/// Warns (`W002`) when the graph splits into more than one weakly-connected
/// component: one warning per component beyond the first, naming a
/// representative task.
pub(crate) fn check_components(graph: &CsdfGraph, spans: &Spans<'_>, report: &mut LintReport) {
    let component = graphops::weak_components(graph);
    let count = component.iter().copied().max().map_or(0, |m| m + 1);
    if count <= 1 {
        return;
    }
    for extra in 1..count {
        let members: Vec<usize> = (0..graph.task_count())
            .filter(|&t| component[t] == extra)
            .collect();
        let representative = members[0];
        let name = graph.task(TaskId::new(representative)).name().to_string();
        let mut diagnostic = Diagnostic::new(
            LintCode::IsolatedComponent,
            format!(
                "isolated component: task `{name}` and {} other task(s) are disconnected \
                 from the rest of the graph and run independently",
                members.len() - 1
            ),
        );
        diagnostic.line = spans.task_line(representative);
        diagnostic.tasks = members
            .iter()
            .map(|&t| graph.task(TaskId::new(t)).name().to_string())
            .collect();
        report.push(diagnostic);
    }
}

/// Warns (`W003`) about tasks whose phases all have zero duration: they are
/// usually modelling mistakes and every workload bound ignores them.
pub(crate) fn check_zero_durations(graph: &CsdfGraph, spans: &Spans<'_>, report: &mut LintReport) {
    for (id, task) in graph.tasks() {
        if task.total_duration() != 0 {
            continue;
        }
        let mut diagnostic = Diagnostic::new(
            LintCode::ZeroDurationTask,
            format!(
                "task `{}` has zero total duration: it takes no time and does not \
                 constrain throughput",
                task.name()
            ),
        );
        diagnostic.line = spans.task_line(id.index());
        diagnostic.tasks = vec![task.name().to_string()];
        report.push(diagnostic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::transform::{bound_buffers, BufferCapacity};
    use csdf::CsdfGraphBuilder;

    #[test]
    fn capacity_below_single_firing_need_is_flagged() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let c = b.add_sdf_buffer(x, y, 3, 3, 0);
        let g = b.build().unwrap();
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: c,
                capacity: 2,
            }],
        )
        .unwrap();
        let mut report = LintReport::new();
        check_capacity_pairs(&bounded, &Spans::none(), &mut report);
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::CapacityContradiction);
        assert_eq!(d.buffers.len(), 2);
        assert!(d.message.contains("needs 3"));
    }

    #[test]
    fn sufficient_capacity_is_quiet() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let c = b.add_sdf_buffer(x, y, 3, 3, 0);
        let g = b.build().unwrap();
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: c,
                capacity: 3,
            }],
        )
        .unwrap();
        let mut report = LintReport::new();
        check_capacity_pairs(&bounded, &Spans::none(), &mut report);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn self_starving_task_is_flagged_per_phase_needs() {
        let mut b = CsdfGraphBuilder::new();
        let t = b.add_task("t", vec![1, 1]);
        // Phase 1 produces 2, phase 2 consumes 2 — fine with 0 tokens?
        // No: phase 1 consumes 1 first, and the loop starts empty.
        b.add_buffer(t, t, vec![2, 0], vec![1, 1], 0);
        let g = b.build().unwrap();
        let mut report = LintReport::new();
        let ok = check_self_loops(&g, &Spans::none(), &mut report);
        assert_eq!(ok, vec![false]);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, LintCode::SelfStarvingTask);
    }

    #[test]
    fn serialized_task_passes_the_self_loop_check() {
        let mut b = CsdfGraphBuilder::new();
        let t = b.add_task("t", vec![1, 1, 1]);
        b.add_serializing_self_loop(t);
        let g = b.build().unwrap();
        let mut report = LintReport::new();
        let ok = check_self_loops(&g, &Spans::none(), &mut report);
        assert_eq!(ok, vec![true]);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn isolated_components_and_zero_durations_warn() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let _lone = b.add_task("lone", vec![0, 0]);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        let g = b.build().unwrap();
        let mut report = LintReport::new();
        check_components(&g, &Spans::none(), &mut report);
        check_zero_durations(&g, &Spans::none(), &mut report);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].code, LintCode::IsolatedComponent);
        assert!(report.diagnostics[0].tasks.contains(&"lone".to_string()));
        assert_eq!(report.diagnostics[1].code, LintCode::ZeroDurationTask);
    }
}
