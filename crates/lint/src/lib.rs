//! # csdf-lint — static analysis of CSDF graphs
//!
//! A linter for [`csdf::CsdfGraph`]s: it inspects the *model* only — no
//! event graph is built, no MCR is solved — and produces structured
//! [`Diagnostic`]s with stable codes plus a sound static throughput bracket
//! ([`ThroughputBounds`]) that the exact K-Iter answer must fall into.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `L000` | error | input could not be imported |
//! | `L001` | error | rate-inconsistent (cycle certificate attached) |
//! | `L002` | error | certain deadlock on a buffer cycle |
//! | `L003` | error | channel capacity below a single firing's need |
//! | `L004` | error | task starves on its own self-loop |
//! | `W001` | warning | live cycle stores < 1 iteration of tokens |
//! | `W002` | warning | more than one weakly-connected component |
//! | `W003` | warning | task with zero total duration |
//! | `W004` | warning | analysis budget exhausted |
//! | `B001` | note | workload upper bound on throughput |
//! | `B002` | note | cycle upper bound on throughput |
//! | `B003` | note | lower bound on throughput |
//!
//! Every error-severity verdict is *proved* (certificates attached; the
//! deadlock codes imply the solver returns
//! [`csdf::Throughput::Deadlocked`]); warnings may be heuristic. The
//! analysis is deterministic: the same graph yields a bit-identical report
//! on every run and thread.
//!
//! # Examples
//!
//! ```
//! use csdf::CsdfGraphBuilder;
//!
//! let mut builder = CsdfGraphBuilder::new();
//! let a = builder.add_sdf_task("a", 1);
//! let b = builder.add_sdf_task("b", 1);
//! builder.add_sdf_buffer(a, b, 2, 1, 0);
//! builder.add_sdf_buffer(b, a, 1, 1, 0); // forces q_a = 2·q_a
//! let graph = builder.build()?;
//!
//! let report = csdf_lint::analyze(&graph);
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics[0].code, csdf_lint::LintCode::RateInconsistent);
//! # Ok::<(), csdf::CsdfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod consistency;
mod diag;
mod graphops;
mod liveness;
mod structure;

pub use diag::{Diagnostic, LintCode, LintReport, Severity, ThroughputBounds};

use csdf::text;
use csdf::transform::{bound_buffers, BufferCapacity};
use csdf::{CsdfError, CsdfGraph, SourceMap, Throughput};

/// Tuning knobs of the analysis. The defaults hold for every graph in the
/// paper's benchmark; they only matter on generated graphs with huge
/// repetition vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintOptions {
    /// Upper bound on witness cycles sampled per strongly-connected
    /// component for the `W001`/`B002` passes.
    pub max_cycles_per_scc: usize,
    /// Upper bound on the phase firings one liveness simulation may need;
    /// components above it are skipped with `W004` instead of simulated.
    pub simulation_budget: u64,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            max_cycles_per_scc: 64,
            simulation_budget: 1 << 20,
        }
    }
}

/// Source spans to attach to diagnostics; absent when the graph was built
/// programmatically.
pub(crate) struct Spans<'a> {
    map: Option<&'a SourceMap>,
}

impl Spans<'_> {
    #[cfg(test)]
    pub(crate) fn none() -> Spans<'static> {
        Spans { map: None }
    }

    pub(crate) fn task_line(&self, index: usize) -> Option<usize> {
        self.map.and_then(|m| m.task_line(csdf::TaskId::new(index)))
    }

    pub(crate) fn buffer_line(&self, index: usize) -> Option<usize> {
        self.map
            .and_then(|m| m.buffer_line(csdf::BufferId::new(index)))
    }
}

/// Analyzes a graph with default options and no source spans.
pub fn analyze(graph: &CsdfGraph) -> LintReport {
    analyze_with(graph, &LintOptions::default(), None)
}

/// Analyzes a graph with default options, attaching declaration lines from
/// `sources` (see [`csdf::text::parse_with_sources`] and
/// [`csdf::text::parse_sdf3_xml_import`]).
pub fn analyze_with_sources(graph: &CsdfGraph, sources: &SourceMap) -> LintReport {
    analyze_with(graph, &LintOptions::default(), Some(sources))
}

/// Analyzes a graph. Passes run in a fixed order — consistency (`L001`),
/// components (`W002`), durations (`W003`), capacities (`L003`), self-loops
/// (`L004`), liveness (`L002`/`W004`), cycles and bounds (`W001`/`B0xx`) —
/// so the report is deterministic.
pub fn analyze_with(
    graph: &CsdfGraph,
    options: &LintOptions,
    sources: Option<&SourceMap>,
) -> LintReport {
    let spans = Spans { map: sources };
    let mut report = LintReport::new();
    let q = consistency::check(graph, &spans, &mut report);
    structure::check_components(graph, &spans, &mut report);
    structure::check_zero_durations(graph, &spans, &mut report);
    structure::check_capacity_pairs(graph, &spans, &mut report);
    let self_loop_ok = structure::check_self_loops(graph, &spans, &mut report);
    if let Some(q) = q {
        let outcome = liveness::check(graph, &q, &self_loop_ok, options, &spans, &mut report);
        report.bounds = Some(bounds::compute(
            graph,
            &q,
            &outcome,
            options,
            &spans,
            &mut report,
        ));
    }
    report
}

/// Input formats the loader understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// The line-oriented text format of [`csdf::text`].
    Text,
    /// SDF3 `<sdf>`/`<csdf>` XML; `bufferSize` annotations are applied as
    /// channel capacities before analysis.
    Sdf3,
}

impl InputFormat {
    /// Guesses the format from a file name: `.xml` (and `.sdf3`) mean SDF3,
    /// everything else the text format.
    pub fn from_path(path: &str) -> InputFormat {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".xml") || lower.ends_with(".sdf3") {
            InputFormat::Sdf3
        } else {
            InputFormat::Text
        }
    }
}

/// Loads a graph plus its source spans from either supported format. SDF3
/// `bufferSize` annotations are materialised as reverse buffers
/// ([`csdf::transform::bound_buffers`]), so capacity contradictions are
/// visible to the `L003` pass; the appended reverse buffers simply have no
/// source line.
///
/// # Errors
///
/// The parse/build errors of the underlying importer.
pub fn load_source(source: &str, format: InputFormat) -> Result<(CsdfGraph, SourceMap), CsdfError> {
    match format {
        InputFormat::Text => text::parse_with_sources(source),
        InputFormat::Sdf3 => {
            let import = text::parse_sdf3_xml_import(source)?;
            if import.buffer_capacities.is_empty() {
                return Ok((import.graph, import.source_map));
            }
            let capacities: Vec<BufferCapacity> = import
                .buffer_capacities
                .iter()
                .map(|&(buffer, capacity)| BufferCapacity { buffer, capacity })
                .collect();
            let bounded = bound_buffers(&import.graph, &capacities)?;
            Ok((bounded, import.source_map))
        }
    }
}

/// Lints a source file in one step: load, then [`analyze_with`]. Import
/// failures become a report with a single error diagnostic (`L000`, or
/// `L003` when a declared capacity already contradicts the marking), so
/// callers can treat broken files uniformly.
pub fn lint_source(source: &str, format: InputFormat, options: &LintOptions) -> LintReport {
    match load_source(source, format) {
        Ok((graph, sources)) => analyze_with(&graph, options, Some(&sources)),
        Err(err) => import_failure_report(&err),
    }
}

fn import_failure_report(err: &CsdfError) -> LintReport {
    let mut report = LintReport::new();
    let diagnostic = match err {
        CsdfError::Parse { line, message } => {
            let mut d = Diagnostic::new(LintCode::ImportError, format!("parse error: {message}"));
            d.line = Some(*line);
            d
        }
        CsdfError::CapacityBelowMarking {
            buffer,
            capacity,
            marking,
        } => {
            let mut d = Diagnostic::new(
                LintCode::CapacityContradiction,
                format!(
                    "declared capacity {capacity} of {buffer} is below its initial \
                     marking {marking}"
                ),
            );
            d.buffers = vec![buffer.clone()];
            d
        }
        other => Diagnostic::new(LintCode::ImportError, format!("import failed: {other}")),
    };
    report.push(diagnostic);
    report
}

/// The wire form of a throughput used in machine-readable lint output:
/// `"deadlock"`, `"unbounded"`, or the exact fraction `"num/den"`.
pub fn throughput_wire(throughput: &Throughput) -> String {
    match throughput {
        Throughput::Finite(value) => format!("{}/{}", value.numer(), value.denom()),
        Throughput::Unbounded => "unbounded".to_string(),
        Throughput::Deadlocked => "deadlock".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Both tasks carry a serialising self-loop so the `B002` cycle bound is
    // emitted (it is withheld on non-serialised cycles, see `bounds`).
    const SAMPLE: &str = "graph sample\n\
                          task a durations=2\n\
                          task b durations=3\n\
                          buffer a -> b prod=1 cons=1 tokens=0\n\
                          buffer b -> a prod=1 cons=1 tokens=1\n\
                          buffer a -> a prod=1 cons=1 tokens=1\n\
                          buffer b -> b prod=1 cons=1 tokens=1\n";

    #[test]
    fn lint_source_attaches_declaration_lines() {
        let report = lint_source(SAMPLE, InputFormat::Text, &LintOptions::default());
        assert!(!report.has_errors());
        let bounds = report.bounds.expect("consistent graph has bounds");
        assert!(bounds.lower <= bounds.upper);
        // The cycle bound diagnostic points at the first cycle buffer's line.
        let cycle_note = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::CycleUpperBound)
            .expect("ring produces a cycle bound");
        assert_eq!(cycle_note.line, Some(4));
    }

    #[test]
    fn import_failure_becomes_l000_with_line() {
        let report = lint_source(
            "graph g\nnot a directive\n",
            InputFormat::Text,
            &LintOptions::default(),
        );
        assert!(report.has_errors());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, LintCode::ImportError);
        assert_eq!(report.diagnostics[0].line, Some(2));
        assert!(report.bounds.is_none());
    }

    #[test]
    fn sdf3_buffer_sizes_feed_the_capacity_pass() {
        let xml = r#"
<sdf3 type="sdf">
  <applicationGraph name="pair">
    <sdf name="pair" type="G">
      <actor name="a"><port name="o" type="out" rate="3"/></actor>
      <actor name="b"><port name="i" type="in" rate="3"/></actor>
      <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i"/>
    </sdf>
    <sdfProperties>
      <channelProperties channel="c"><bufferSize sz="2"/></channelProperties>
    </sdfProperties>
  </applicationGraph>
</sdf3>"#;
        let report = lint_source(xml, InputFormat::Sdf3, &LintOptions::default());
        assert!(report.has_code(LintCode::CapacityContradiction));
        assert!(report.certain_deadlock());
    }

    #[test]
    fn format_is_guessed_from_the_extension() {
        assert_eq!(InputFormat::from_path("g.csdf"), InputFormat::Text);
        assert_eq!(InputFormat::from_path("G.XML"), InputFormat::Sdf3);
        assert_eq!(InputFormat::from_path("g.sdf3"), InputFormat::Sdf3);
    }

    #[test]
    fn throughput_wire_forms() {
        use csdf::Rational;
        assert_eq!(throughput_wire(&Throughput::Deadlocked), "deadlock");
        assert_eq!(throughput_wire(&Throughput::Unbounded), "unbounded");
        assert_eq!(
            throughput_wire(&Throughput::Finite(Rational::new(3, 6).unwrap())),
            "1/2"
        );
    }

    #[test]
    fn reports_are_bit_identical_across_threads() {
        let baseline = lint_source(SAMPLE, InputFormat::Text, &LintOptions::default());
        let reports: Vec<LintReport> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| lint_source(SAMPLE, InputFormat::Text, &LintOptions::default()))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for report in reports {
            assert_eq!(report, baseline);
            assert_eq!(report.render(Some("f")), baseline.render(Some("f")));
        }
    }
}
