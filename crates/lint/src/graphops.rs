//! Graph machinery shared by the passes: the directed task adjacency over
//! buffers, iterative strongly-connected components, witness-cycle sampling
//! and weakly-connected components.
//!
//! Everything here is index-based (`Vec` keyed by task/buffer index, no hash
//! maps), so every traversal order — and with it every certificate — is
//! deterministic and bit-identical across runs and threads.

use csdf::CsdfGraph;

/// Directed adjacency over tasks; each edge remembers the buffer that
/// induced it. Self-loop buffers are excluded (they never take part in
/// multi-task cycles and have their own exact pass).
#[derive(Debug)]
pub(crate) struct TaskDigraph {
    /// `edges[t]` = `(target_task, buffer_index)` in buffer-id order.
    pub edges: Vec<Vec<(usize, usize)>>,
}

impl TaskDigraph {
    pub(crate) fn build(graph: &CsdfGraph) -> TaskDigraph {
        let mut edges = vec![Vec::new(); graph.task_count()];
        for (id, buffer) in graph.buffers() {
            if buffer.is_self_loop() {
                continue;
            }
            edges[buffer.source().index()].push((buffer.target().index(), id.index()));
        }
        TaskDigraph { edges }
    }
}

/// One strongly-connected component of the task digraph.
#[derive(Debug)]
pub(crate) struct Scc {
    /// Member task indices, ascending.
    pub members: Vec<usize>,
    /// `true` when the component can contain a directed cycle: more than one
    /// task, or a single task that `has_self_loop` reports cyclic.
    pub cyclic: bool,
}

/// Computes the strongly-connected components of the task digraph with an
/// iterative Tarjan walk (no recursion: generated graphs reach thousands of
/// tasks). Components are returned sorted by their smallest member, members
/// ascending.
///
/// `has_self_loop(t)` marks singleton components as cyclic.
pub(crate) fn strongly_connected_components(
    digraph: &TaskDigraph,
    has_self_loop: impl Fn(usize) -> bool,
) -> Vec<Scc> {
    let n = digraph.edges.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (task, next edge position to explore).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (task, ref mut edge_pos)) = frames.last_mut() {
            if let Some(&(target, _)) = digraph.edges[task].get(*edge_pos) {
                *edge_pos += 1;
                if index[target] == UNVISITED {
                    index[target] = next_index;
                    low[target] = next_index;
                    next_index += 1;
                    stack.push(target);
                    on_stack[target] = true;
                    frames.push((target, 0));
                } else if on_stack[target] {
                    low[task] = low[task].min(index[target]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[task]);
                }
                if low[task] == index[task] {
                    let mut members = Vec::new();
                    loop {
                        let member = stack.pop().expect("tarjan stack underflow");
                        on_stack[member] = false;
                        members.push(member);
                        if member == task {
                            break;
                        }
                    }
                    members.sort_unstable();
                    components.push(members);
                }
            }
        }
    }

    components.sort_by_key(|members| members[0]);
    components
        .into_iter()
        .map(|members| {
            let cyclic = members.len() > 1 || has_self_loop(members[0]);
            Scc { members, cyclic }
        })
        .collect()
}

/// Samples up to `cap` simple directed cycles inside one SCC, as ordered
/// lists of buffer indices. Cycles are found as DFS back edges, so every
/// returned cycle is simple; the traversal order (ascending roots, buffer-id
/// edge order) makes the sample deterministic.
pub(crate) fn sample_cycles(
    digraph: &TaskDigraph,
    members: &[usize],
    cap: usize,
) -> Vec<Vec<usize>> {
    let n = digraph.edges.len();
    let mut in_scc = vec![false; n];
    for &m in members {
        in_scc[m] = true;
    }
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut visited = vec![false; n];
    // Position of a task on the current DFS path, `usize::MAX` if absent.
    let mut path_pos = vec![usize::MAX; n];
    let mut path_tasks: Vec<usize> = Vec::new();
    // `path_buffers[i]` is the buffer from `path_tasks[i]` to
    // `path_tasks[i + 1]`; entry `i` exists once task `i + 1` is pushed.
    let mut path_buffers: Vec<usize> = Vec::new();
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for &root in members {
        if visited[root] || cycles.len() >= cap {
            continue;
        }
        visited[root] = true;
        path_pos[root] = 0;
        path_tasks.push(root);
        frames.push((root, 0));

        while let Some(&mut (task, ref mut edge_pos)) = frames.last_mut() {
            if cycles.len() >= cap {
                break;
            }
            if let Some(&(target, buffer)) = digraph.edges[task].get(*edge_pos) {
                *edge_pos += 1;
                if !in_scc[target] {
                    continue;
                }
                if path_pos[target] != usize::MAX {
                    // Back edge: the path from `target` to `task` plus this
                    // buffer closes a simple cycle.
                    let mut cycle: Vec<usize> = path_buffers[path_pos[target]..].to_vec();
                    cycle.push(buffer);
                    cycles.push(cycle);
                } else if !visited[target] {
                    visited[target] = true;
                    path_pos[target] = path_tasks.len();
                    path_tasks.push(target);
                    path_buffers.push(buffer);
                    frames.push((target, 0));
                }
            } else {
                frames.pop();
                path_pos[task] = usize::MAX;
                path_tasks.pop();
                path_buffers.pop();
            }
        }
        frames.clear();
        for &t in &path_tasks {
            path_pos[t] = usize::MAX;
        }
        path_tasks.clear();
        path_buffers.clear();
    }
    cycles
}

/// Assigns every task a weakly-connected component id (dense, in order of
/// first discovery from task 0) over the undirected view of the buffers.
pub(crate) fn weak_components(graph: &CsdfGraph) -> Vec<usize> {
    let n = graph.task_count();
    let mut undirected = vec![Vec::new(); n];
    for (_, buffer) in graph.buffers() {
        let (s, t) = (buffer.source().index(), buffer.target().index());
        if s != t {
            undirected[s].push(t);
            undirected[t].push(s);
        }
    }
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = Vec::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = next;
        queue.push(start);
        while let Some(task) = queue.pop() {
            for &other in &undirected[task] {
                if component[other] == usize::MAX {
                    component[other] = next;
                    queue.push(other);
                }
            }
        }
        next += 1;
    }
    component
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn ring3() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let z = b.add_sdf_task("z", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, z, 1, 1, 0);
        b.add_sdf_buffer(z, x, 1, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn ring_is_one_cyclic_scc_with_one_cycle() {
        let g = ring3();
        let digraph = TaskDigraph::build(&g);
        let sccs = strongly_connected_components(&digraph, |_| false);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].members, vec![0, 1, 2]);
        assert!(sccs[0].cyclic);
        let cycles = sample_cycles(&digraph, &sccs[0].members, 8);
        assert_eq!(cycles, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn chain_has_singleton_acyclic_sccs() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let digraph = TaskDigraph::build(&g);
        let self_loops = [false, true];
        let sccs = strongly_connected_components(&digraph, |t| self_loops[t]);
        assert_eq!(sccs.len(), 2);
        assert!(!sccs[0].cyclic);
        assert!(sccs[1].cyclic, "self-loop marks the singleton cyclic");
        // Self-loops are excluded from the digraph, so no sampled cycles.
        assert!(sample_cycles(&digraph, &sccs[1].members, 8).is_empty());
    }

    #[test]
    fn cycle_cap_is_respected() {
        // Two tasks with two parallel edges each way: 4 distinct 2-cycles.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 1);
        b.add_sdf_buffer(x, y, 1, 1, 1);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        let g = b.build().unwrap();
        let digraph = TaskDigraph::build(&g);
        let sccs = strongly_connected_components(&digraph, |_| false);
        assert_eq!(sccs.len(), 1);
        let all = sample_cycles(&digraph, &sccs[0].members, 64);
        assert!(!all.is_empty());
        let capped = sample_cycles(&digraph, &sccs[0].members, 1);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn weak_components_ignore_direction() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let _lone = b.add_sdf_task("lone", 1);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        assert_eq!(weak_components(&g), vec![0, 0, 1]);
    }
}
