//! `csdf-lint` — static analysis of CSDF graph files.
//!
//! ```text
//! csdf-lint [--json] [--format text|sdf3] [--max-cycles N] [--budget N] FILE...
//! csdf-lint --codes
//! ```
//!
//! Exit status is 1 when any file has an error-severity diagnostic (or could
//! not be read), 0 otherwise; warnings and notes do not fail the run.

use std::process::ExitCode;

use csdf_lint::{lint_source, throughput_wire, InputFormat, LintCode, LintOptions, LintReport};

const USAGE: &str = "usage: csdf-lint [--json] [--format text|sdf3] [--max-cycles N] \
                     [--budget N] FILE...\n       csdf-lint --codes";

struct Args {
    json: bool,
    format: Option<InputFormat>,
    options: LintOptions,
    files: Vec<String>,
}

fn parse_args(raw: &[String]) -> Result<Option<Args>, String> {
    let mut args = Args {
        json: false,
        format: None,
        options: LintOptions::default(),
        files: Vec::new(),
    };
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--codes" => {
                print_codes();
                return Ok(None);
            }
            "--format" => {
                let value = iter.next().ok_or("--format needs a value")?;
                args.format = Some(match value.as_str() {
                    "text" => InputFormat::Text,
                    "sdf3" => InputFormat::Sdf3,
                    other => return Err(format!("unknown format `{other}` (text|sdf3)")),
                });
            }
            "--max-cycles" => {
                let value = iter.next().ok_or("--max-cycles needs a value")?;
                args.options.max_cycles_per_scc = value
                    .parse()
                    .map_err(|_| format!("invalid --max-cycles value `{value}`"))?;
            }
            "--budget" => {
                let value = iter.next().ok_or("--budget needs a value")?;
                args.options.simulation_budget = value
                    .parse()
                    .map_err(|_| format!("invalid --budget value `{value}`"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => args.files.push(file.to_string()),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(Some(args))
}

fn print_codes() {
    for code in LintCode::all() {
        println!("{} {:7} {}", code, code.severity(), code.description());
    }
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(file: &str, report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"file\":\"{}\",", json_escape(file)));
    out.push_str("\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
            d.code,
            d.severity(),
            json_escape(&d.message)
        ));
        if let Some(line) = d.line {
            out.push_str(&format!(",\"line\":{line}"));
        }
        if !d.tasks.is_empty() {
            let tasks: Vec<String> = d
                .tasks
                .iter()
                .map(|t| format!("\"{}\"", json_escape(t)))
                .collect();
            out.push_str(&format!(",\"tasks\":[{}]", tasks.join(",")));
        }
        if !d.buffers.is_empty() {
            let buffers: Vec<String> = d
                .buffers
                .iter()
                .map(|b| {
                    format!(
                        "{{\"index\":{},\"source\":\"{}\",\"target\":\"{}\"}}",
                        b.index,
                        json_escape(&b.source),
                        json_escape(&b.target)
                    )
                })
                .collect();
            out.push_str(&format!(",\"buffers\":[{}]", buffers.join(",")));
        }
        out.push('}');
    }
    out.push(']');
    if let Some(bounds) = &report.bounds {
        out.push_str(&format!(
            ",\"bounds\":{{\"lower\":\"{}\",\"upper\":\"{}\"}}",
            throughput_wire(&bounds.lower),
            throughput_wire(&bounds.upper)
        ));
    }
    out.push_str(&format!(
        ",\"errors\":{},\"warnings\":{}}}",
        report.error_count(),
        report.warning_count()
    ));
    out
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("csdf-lint: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for file in &args.files {
        let source = match std::fs::read_to_string(file) {
            Ok(source) => source,
            Err(err) => {
                eprintln!("csdf-lint: cannot read {file}: {err}");
                failed = true;
                continue;
            }
        };
        let format = args.format.unwrap_or_else(|| InputFormat::from_path(file));
        let report = lint_source(&source, format, &args.options);
        if args.json {
            println!("{}", report_json(file, &report));
        } else {
            print!("{}", report.render(Some(file)));
        }
        if report.has_errors() {
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
