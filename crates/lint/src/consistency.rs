//! Rate-consistency pass (`L001`): re-runs the balance-equation propagation
//! of [`csdf::RepetitionVector`] with parent tracking, so a conflict can be
//! reported with a *certificate* — the undirected cycle of buffers whose
//! rate ratios multiply to something other than one.

use csdf::{CsdfGraph, Rational, RepetitionVector, TaskId};

use crate::diag::{Diagnostic, LintCode, LintReport};
use crate::Spans;

/// Checks consistency. On success returns the repetition vector; on failure
/// pushes `L001` (or `W004` if the vector overflows) and returns `None`.
pub(crate) fn check(
    graph: &CsdfGraph,
    spans: &Spans<'_>,
    report: &mut LintReport,
) -> Option<RepetitionVector> {
    if let Some(conflict) = find_conflict(graph) {
        report.push(certificate_diagnostic(graph, spans, &conflict));
        return None;
    }
    match graph.repetition_vector() {
        Ok(q) => Some(q),
        Err(err) => {
            // The propagation found no conflict, so this is arithmetic
            // overflow while scaling the fractions, not inconsistency.
            report.push(Diagnostic::new(
                LintCode::AnalysisBudgetExceeded,
                format!("repetition vector could not be computed: {err}"),
            ));
            None
        }
    }
}

/// A balance conflict: the buffer whose ratio contradicts the fractions
/// already assigned to its two endpoints, plus the BFS parent forest needed
/// to extract the certificate cycle.
struct Conflict {
    buffer: usize,
    /// The task whose neighbours were being expanded.
    from: usize,
    /// The already-settled other endpoint.
    to: usize,
    /// `parent[t]` = `(parent_task, buffer)` in the BFS forest.
    parent: Vec<Option<(usize, usize)>>,
}

/// Mirrors the fraction propagation of `RepetitionVector::compute` exactly
/// (same totals-ratio orientation, same BFS order), additionally recording
/// the parent edge of every task. Arithmetic failures are treated as "no
/// conflict found" and left to `repetition_vector` to classify.
fn find_conflict(graph: &CsdfGraph) -> Option<Conflict> {
    let n = graph.task_count();
    let mut fractions: Vec<Option<Rational>> = vec![None; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();

    for start in 0..n {
        if fractions[start].is_some() {
            continue;
        }
        fractions[start] = Some(Rational::ONE);
        queue.push_back(TaskId::new(start));
        while let Some(task) = queue.pop_front() {
            let task_fraction = fractions[task.index()].expect("assigned before queueing");
            let neighbours = graph
                .outgoing(task)
                .iter()
                .chain(graph.incoming(task).iter())
                .copied();
            for buffer_id in neighbours {
                let buffer = graph.buffer(buffer_id);
                let ratio = if buffer.source() == task {
                    Rational::new(
                        buffer.total_production() as i128,
                        buffer.total_consumption() as i128,
                    )
                } else {
                    Rational::new(
                        buffer.total_consumption() as i128,
                        buffer.total_production() as i128,
                    )
                };
                let other = if buffer.source() == task {
                    buffer.target()
                } else {
                    buffer.source()
                };
                let Ok(expected) = ratio.and_then(|r| task_fraction.checked_mul(&r)) else {
                    return None;
                };
                match fractions[other.index()] {
                    None => {
                        fractions[other.index()] = Some(expected);
                        parent[other.index()] = Some((task.index(), buffer_id.index()));
                        queue.push_back(other);
                    }
                    Some(existing) => {
                        if existing != expected {
                            return Some(Conflict {
                                buffer: buffer_id.index(),
                                from: task.index(),
                                to: other.index(),
                                parent,
                            });
                        }
                    }
                }
            }
        }
    }
    None
}

/// Builds the `L001` diagnostic: the certificate is the conflicting buffer
/// plus the BFS-forest paths from its endpoints up to their lowest common
/// ancestor — an undirected simple cycle, near-minimal because the forest is
/// a breadth-first (shortest-path) tree.
fn certificate_diagnostic(graph: &CsdfGraph, spans: &Spans<'_>, conflict: &Conflict) -> Diagnostic {
    // Ancestors of `from`, with their depth, walking to the forest root.
    let mut from_chain: Vec<(usize, Option<usize>)> = Vec::new(); // (task, buffer to parent)
    let mut cursor = conflict.from;
    from_chain.push((cursor, None));
    while let Some((p, b)) = conflict.parent[cursor] {
        from_chain.last_mut().expect("nonempty").1 = Some(b);
        from_chain.push((p, None));
        cursor = p;
    }
    let mut depth_of = vec![usize::MAX; graph.task_count()];
    for (depth, &(task, _)) in from_chain.iter().enumerate() {
        depth_of[task] = depth;
    }

    // Walk up from `to` until the chain of `from` is hit (the LCA). `to` and
    // `from` are in the same BFS tree: the conflicting buffer connects them.
    let mut to_path: Vec<usize> = Vec::new(); // buffers from `to` towards LCA
    let mut cursor = conflict.to;
    while depth_of[cursor] == usize::MAX {
        let (p, b) = conflict.parent[cursor].expect("reaches the tree root");
        to_path.push(b);
        cursor = p;
    }
    let lca_depth = depth_of[cursor];

    // Cycle: conflict buffer, `to → LCA` buffers, then `LCA → from` buffers.
    let mut cycle: Vec<usize> = vec![conflict.buffer];
    cycle.extend(&to_path);
    for &(_, buffer) in from_chain[..lca_depth].iter().rev() {
        cycle.push(buffer.expect("every non-terminal chain entry has an edge"));
    }

    let buffers: Vec<_> = cycle
        .iter()
        .map(|&b| graph.buffer_ref(csdf::BufferId::new(b)))
        .collect();
    let mut tasks = vec![
        graph.task(TaskId::new(conflict.from)).name().to_string(),
        graph.task(TaskId::new(conflict.to)).name().to_string(),
    ];
    tasks.dedup();
    let cycle_text = buffers
        .iter()
        .map(|b| format!("`{}`->`{}`", b.source, b.target))
        .collect::<Vec<_>>()
        .join(", ");
    let mut diagnostic = Diagnostic::new(
        LintCode::RateInconsistent,
        format!(
            "rate-inconsistent cycle: the balance equations around {} admit no positive \
             repetition vector (cycle of {} buffer(s): {})",
            buffers[0],
            buffers.len(),
            cycle_text
        ),
    );
    diagnostic.line = spans.buffer_line(conflict.buffer);
    diagnostic.tasks = tasks;
    diagnostic.buffers = buffers;
    diagnostic
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    #[test]
    fn consistent_graph_returns_q() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 3, 2, 0);
        let g = b.build().unwrap();
        let mut report = LintReport::new();
        let q = check(&g, &Spans::none(), &mut report).expect("consistent");
        assert_eq!(q.as_slice(), &[2, 3]);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn two_cycle_certificate_names_both_buffers() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        let mut report = LintReport::new();
        assert!(check(&g, &Spans::none(), &mut report).is_none());
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::RateInconsistent);
        assert_eq!(d.buffers.len(), 2, "certificate is the 2-cycle");
        let indices: Vec<usize> = d.buffers.iter().map(|b| b.index).collect();
        assert!(indices.contains(&0) && indices.contains(&1));
    }

    #[test]
    fn inconsistent_self_loop_certificate_is_the_loop_itself() {
        let mut b = CsdfGraphBuilder::new();
        let t = b.add_task("t", vec![1, 1]);
        b.add_buffer(t, t, vec![2, 1], vec![1, 1], 1);
        let g = b.build().unwrap();
        let mut report = LintReport::new();
        assert!(check(&g, &Spans::none(), &mut report).is_none());
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::RateInconsistent);
        assert_eq!(d.buffers.len(), 1);
        assert_eq!(d.buffers[0].index, 0);
    }

    #[test]
    fn longer_cycle_certificate_is_a_cycle() {
        // x -> y -> z and x -> z with a rate mismatch on the direct edge.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let z = b.add_sdf_task("z", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, z, 1, 1, 0);
        b.add_sdf_buffer(x, z, 2, 1, 0);
        let g = b.build().unwrap();
        let mut report = LintReport::new();
        assert!(check(&g, &Spans::none(), &mut report).is_none());
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::RateInconsistent);
        assert_eq!(d.buffers.len(), 3, "triangle certificate");
    }
}
