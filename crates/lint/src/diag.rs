//! The diagnostic model: stable codes, severities, structured diagnostics and
//! the report `analyze` returns.

use std::fmt;

use csdf::{BufferRef, Throughput};

/// How serious a diagnostic is.
///
/// Ordered `Note < Warning < Error` so `max` over a report gives the overall
/// verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational, e.g. the static throughput bounds.
    Note,
    /// Suspicious but not provably wrong.
    Warning,
    /// A structural defect; the solver would fail or the graph can never run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes.
///
/// `L0xx` are structural errors, `W0xx` warnings, `B0xx` informational
/// bound/verdict notes. Codes are append-only: a code is never renumbered
/// once released, so scripts may match on the string form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `L000` — the input could not be imported as a CSDF graph.
    ImportError,
    /// `L001` — the balance equations have no positive solution; the
    /// diagnostic carries an inconsistent cycle of buffers as certificate.
    RateInconsistent,
    /// `L002` — a directed buffer cycle can never complete one graph
    /// iteration from the initial marking: certain deadlock.
    DeadlockedCycle,
    /// `L003` — a bounded channel's capacity is below the tokens a single
    /// firing of one of its endpoint phases needs: that phase can never fire.
    CapacityContradiction,
    /// `L004` — a task starves on its own self-loop: some phase needs more
    /// tokens than the loop can ever hold at that point of the iteration.
    SelfStarvingTask,
    /// `W001` — a live directed cycle stores less than one full iteration of
    /// tokens; it is likely to be the throughput bottleneck.
    NearDeadlockCycle,
    /// `W002` — the graph splits into more than one weakly-connected
    /// component; components run independently.
    IsolatedComponent,
    /// `W003` — a task has zero total duration; it takes no time and the
    /// workload bounds ignore it.
    ZeroDurationTask,
    /// `W004` — an analysis budget was exhausted (or arithmetic overflowed),
    /// so liveness could not be established statically.
    AnalysisBudgetExceeded,
    /// `B001` — the binding per-task workload upper bound on throughput.
    WorkloadUpperBound,
    /// `B002` — the binding sampled-cycle upper bound on throughput.
    CycleUpperBound,
    /// `B003` — the static lower bound on throughput (sequential schedule,
    /// or the deadlock/unproven verdict).
    SequentialLowerBound,
}

impl LintCode {
    /// Every code, in catalog order.
    pub fn all() -> [LintCode; 12] {
        [
            LintCode::ImportError,
            LintCode::RateInconsistent,
            LintCode::DeadlockedCycle,
            LintCode::CapacityContradiction,
            LintCode::SelfStarvingTask,
            LintCode::NearDeadlockCycle,
            LintCode::IsolatedComponent,
            LintCode::ZeroDurationTask,
            LintCode::AnalysisBudgetExceeded,
            LintCode::WorkloadUpperBound,
            LintCode::CycleUpperBound,
            LintCode::SequentialLowerBound,
        ]
    }

    /// The stable string form (`"L001"`, `"W002"`, ...).
    pub fn as_str(&self) -> &'static str {
        match self {
            LintCode::ImportError => "L000",
            LintCode::RateInconsistent => "L001",
            LintCode::DeadlockedCycle => "L002",
            LintCode::CapacityContradiction => "L003",
            LintCode::SelfStarvingTask => "L004",
            LintCode::NearDeadlockCycle => "W001",
            LintCode::IsolatedComponent => "W002",
            LintCode::ZeroDurationTask => "W003",
            LintCode::AnalysisBudgetExceeded => "W004",
            LintCode::WorkloadUpperBound => "B001",
            LintCode::CycleUpperBound => "B002",
            LintCode::SequentialLowerBound => "B003",
        }
    }

    /// Parses the stable string form back into a code.
    pub fn parse(text: &str) -> Option<LintCode> {
        LintCode::all().into_iter().find(|c| c.as_str() == text)
    }

    /// One-line description for the catalog (`csdf-lint --codes`).
    pub fn description(&self) -> &'static str {
        match self {
            LintCode::ImportError => "the input could not be imported as a CSDF graph",
            LintCode::RateInconsistent => {
                "balance equations have no positive solution (inconsistent cycle attached)"
            }
            LintCode::DeadlockedCycle => {
                "a directed buffer cycle can never complete one iteration: certain deadlock"
            }
            LintCode::CapacityContradiction => {
                "a channel capacity is below the tokens a single firing needs"
            }
            LintCode::SelfStarvingTask => "a task starves on its own self-loop marking",
            LintCode::NearDeadlockCycle => {
                "a live cycle stores less than one iteration of tokens (likely bottleneck)"
            }
            LintCode::IsolatedComponent => "the graph has more than one weakly-connected component",
            LintCode::ZeroDurationTask => "a task has zero total duration",
            LintCode::AnalysisBudgetExceeded => {
                "an analysis budget was exhausted; liveness not established statically"
            }
            LintCode::WorkloadUpperBound => "static per-task workload upper bound on throughput",
            LintCode::CycleUpperBound => "static cycle-ratio upper bound on throughput",
            LintCode::SequentialLowerBound => "static lower bound on throughput",
        }
    }

    /// The severity every diagnostic with this code has.
    pub fn severity(&self) -> Severity {
        match self.as_str().as_bytes()[0] {
            b'L' => Severity::Error,
            b'W' => Severity::Warning,
            _ => Severity::Note,
        }
    }

    /// Returns `true` for the codes that prove the graph deadlocks
    /// (`L002`/`L003`/`L004`).
    pub fn proves_deadlock(&self) -> bool {
        matches!(
            self,
            LintCode::DeadlockedCycle
                | LintCode::CapacityContradiction
                | LintCode::SelfStarvingTask
        )
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: LintCode,
    /// Human-readable message (already names the involved tasks/buffers).
    pub message: String,
    /// Names of the tasks involved, in certificate order.
    pub tasks: Vec<String>,
    /// The buffers involved — for cycle certificates, the cycle in order.
    pub buffers: Vec<BufferRef>,
    /// 1-based source line of the primary model element, when the graph was
    /// imported with span tracking ([`csdf::SourceMap`]).
    pub line: Option<usize>,
}

impl Diagnostic {
    /// Creates a diagnostic with no certificate attachments.
    pub fn new(code: LintCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
            tasks: Vec::new(),
            buffers: Vec::new(),
            line: None,
        }
    }

    /// The severity implied by the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic as a single `file:line: severity[CODE]:
    /// message` line (the CLI output format).
    pub fn render(&self, file: Option<&str>) -> String {
        let mut out = String::new();
        if let Some(file) = file {
            out.push_str(file);
            out.push(':');
        }
        if let Some(line) = self.line {
            out.push_str(&line.to_string());
            out.push(':');
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&format!(
            "{}[{}]: {}",
            self.severity(),
            self.code,
            self.message
        ));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(None))
    }
}

/// Static throughput bracket: `lower ≤ Th* ≤ upper` for the exact normalised
/// throughput `Th*` the solver would compute.
///
/// The bounds are sound, not tight: `lower` is [`Throughput::Deadlocked`]
/// whenever liveness could not be proven statically, and `upper` is
/// [`Throughput::Unbounded`] when no static constraint applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputBounds {
    /// Guaranteed achievable throughput.
    pub lower: Throughput,
    /// Throughput the graph can never exceed.
    pub upper: Throughput,
}

impl ThroughputBounds {
    /// The vacuous bracket `[Deadlocked, Unbounded]`.
    pub fn vacuous() -> ThroughputBounds {
        ThroughputBounds {
            lower: Throughput::Deadlocked,
            upper: Throughput::Unbounded,
        }
    }

    /// Returns `true` when `actual` lies inside the bracket (inclusive),
    /// under the usual [`Throughput`] ordering.
    pub fn brackets(&self, actual: &Throughput) -> bool {
        self.lower <= *actual && *actual <= self.upper
    }
}

impl fmt::Display for ThroughputBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= Th <= {}", self.lower, self.upper)
    }
}

/// The result of one `analyze` run: diagnostics in deterministic order plus
/// the static throughput bracket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, grouped by pass in a fixed order (deterministic and
    /// bit-identical across runs and threads).
    pub diagnostics: Vec<Diagnostic>,
    /// The static throughput bracket; `None` when the graph is inconsistent
    /// (throughput is undefined without a repetition vector).
    pub bounds: Option<ThroughputBounds>,
}

impl LintReport {
    /// Creates an empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Returns `true` when any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Returns `true` when any diagnostic code is present.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Returns `true` when lint proved the graph deadlocks (the exact solver
    /// must agree with [`Throughput::Deadlocked`]).
    pub fn certain_deadlock(&self) -> bool {
        self.diagnostics.iter().any(|d| d.code.proves_deadlock())
    }

    /// Renders every diagnostic plus a summary line, the CLI text format.
    pub fn render(&self, file: Option<&str>) -> String {
        let mut out = String::new();
        for diagnostic in &self.diagnostics {
            out.push_str(&diagnostic.render(file));
            out.push('\n');
        }
        if let Some(bounds) = &self.bounds {
            match file {
                Some(file) => out.push_str(&format!("{file}: bounds: {bounds}\n")),
                None => out.push_str(&format!("bounds: {bounds}\n")),
            }
        }
        let summary = format!(
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        );
        match file {
            Some(file) => out.push_str(&format!("{file}: {summary}\n")),
            None => {
                out.push_str(&summary);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::Rational;

    #[test]
    fn codes_have_stable_strings_and_severities() {
        for code in LintCode::all() {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
            let expected = match code.as_str().as_bytes()[0] {
                b'L' => Severity::Error,
                b'W' => Severity::Warning,
                b'B' => Severity::Note,
                _ => unreachable!(),
            };
            assert_eq!(code.severity(), expected);
            assert!(!code.description().is_empty());
        }
        assert_eq!(LintCode::parse("X999"), None);
    }

    #[test]
    fn deadlock_proving_codes() {
        assert!(LintCode::DeadlockedCycle.proves_deadlock());
        assert!(LintCode::CapacityContradiction.proves_deadlock());
        assert!(LintCode::SelfStarvingTask.proves_deadlock());
        assert!(!LintCode::RateInconsistent.proves_deadlock());
        assert!(!LintCode::NearDeadlockCycle.proves_deadlock());
    }

    #[test]
    fn render_includes_file_line_and_code() {
        let mut d = Diagnostic::new(LintCode::RateInconsistent, "boom");
        d.line = Some(7);
        assert_eq!(d.render(Some("g.csdf")), "g.csdf:7: error[L001]: boom");
        assert_eq!(d.to_string(), "7: error[L001]: boom");
    }

    #[test]
    fn bounds_bracket_under_throughput_ordering() {
        let half = Throughput::Finite(Rational::new(1, 2).unwrap());
        let third = Throughput::Finite(Rational::new(1, 3).unwrap());
        let bounds = ThroughputBounds {
            lower: third,
            upper: half,
        };
        assert!(bounds.brackets(&half));
        assert!(bounds.brackets(&third));
        assert!(!bounds.brackets(&Throughput::Unbounded));
        assert!(!bounds.brackets(&Throughput::Deadlocked));
        assert!(ThroughputBounds::vacuous().brackets(&Throughput::Unbounded));
        assert!(ThroughputBounds::vacuous().brackets(&Throughput::Deadlocked));
        assert_eq!(bounds.to_string(), "1/3 <= Th <= 1/2");
    }

    #[test]
    fn report_counts_and_verdicts() {
        let mut report = LintReport::new();
        assert!(!report.has_errors());
        report.push(Diagnostic::new(LintCode::IsolatedComponent, "split"));
        report.push(Diagnostic::new(LintCode::DeadlockedCycle, "stuck"));
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_errors());
        assert!(report.certain_deadlock());
        assert!(report.has_code(LintCode::DeadlockedCycle));
        assert!(!report.has_code(LintCode::RateInconsistent));
        let rendered = report.render(Some("f"));
        assert!(rendered.contains("f: 1 error(s), 1 warning(s)"));
    }
}
