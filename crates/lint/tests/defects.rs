//! The seeded-defect corpus gate: every fixture under `tests/fixtures/`
//! encodes one defect and names its expected diagnostic code in the filename
//! prefix (`l002_deadlock_cycle.csdf` must trigger `L002`). CI runs the
//! `csdf-lint` CLI over the same files; this test gates the library layer
//! and keeps the corpus from rotting.

use std::path::{Path, PathBuf};

use csdf_lint::{lint_source, InputFormat, LintCode, LintOptions, Severity};

fn fixtures() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|entry| entry.expect("readable directory entry").path())
        .collect();
    paths.sort();
    paths
}

/// The expected code is the upper-cased first `_`-separated component of the
/// file name (`l002_deadlock_cycle.csdf` → `L002`).
fn expected_code(path: &Path) -> LintCode {
    let name = path.file_name().unwrap().to_str().unwrap();
    let prefix = name.split('_').next().unwrap().to_ascii_uppercase();
    LintCode::parse(&prefix).unwrap_or_else(|| panic!("fixture {name} has no code prefix"))
}

#[test]
fn every_seeded_defect_triggers_its_expected_code() {
    let paths = fixtures();
    assert!(
        paths.len() >= 8,
        "corpus shrank to {} files — the gate would be vacuous",
        paths.len()
    );
    for path in &paths {
        let code = expected_code(path);
        let source = std::fs::read_to_string(path).expect("readable fixture");
        let format = InputFormat::from_path(path.to_str().unwrap());
        let report = lint_source(&source, format, &LintOptions::default());
        assert!(
            report.has_code(code),
            "{}: expected {code} but got:\n{}",
            path.display(),
            report.render(None),
        );
        // Severity classes must match the filename family: `l*` fixtures are
        // rejected (errors), `w*`/`b*` fixtures must still lint clean enough
        // to produce a full report.
        match code.severity() {
            Severity::Error => assert!(report.has_errors(), "{}", path.display()),
            Severity::Warning | Severity::Note => {
                assert!(!report.has_errors(), "{}", path.display());
                assert!(report.bounds.is_some(), "{}", path.display());
            }
        }
    }
}

#[test]
fn corpus_covers_every_error_code_and_all_structural_warnings() {
    let covered: Vec<LintCode> = fixtures().iter().map(|p| expected_code(p)).collect();
    for code in LintCode::all() {
        let structural_warning = matches!(code.severity(), Severity::Error)
            || matches!(
                code,
                LintCode::NearDeadlockCycle
                    | LintCode::IsolatedComponent
                    | LintCode::ZeroDurationTask
            );
        if structural_warning {
            assert!(
                covered.contains(&code),
                "no fixture covers {code} ({})",
                code.description()
            );
        }
    }
}
