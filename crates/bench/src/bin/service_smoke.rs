//! CI smoke gate for the analysis daemon (`csdf-service`).
//!
//! Drives one warm daemon through a mixed batch — mostly `evaluate`
//! requests over a handful of graph structures (so fingerprints repeat),
//! plus `sweep`, `min_storage` and `scenario_set` requests — and compares
//! it against the cold baseline: a fresh daemon (empty pool, empty cache)
//! per request, which is exactly a direct library call per request.
//!
//! Checks, in order:
//!
//! 1. **Bit-identity**: every warm response equals its cold response, field
//!    for field (only the `cache` hit/miss marker may differ);
//! 2. **Library identity**: every unique evaluate graph's throughput string
//!    equals a direct [`kperiodic::optimal_throughput`] call's;
//! 3. **Warm reuse**: the pool's warm hit rate stays above a floor (0.5);
//! 4. **Transport identity** (unix): a batch of `lint` and `verify`
//!    requests is answered bit-identically by the stdin-batch transport
//!    (`run_batch`) and the Unix-socket transport, and the serialised
//!    verify graphs reach an `agree` verdict;
//! 5. With `--gate`: the warm daemon is at least 2x faster than cold
//!    per-request sessions on the whole batch.
//!
//! Prints one JSON summary line. `KITER_SERVICE_REQUESTS` overrides the
//! batch size (default 200).
//!
//! Run with
//! `cargo run --release -p kiter-bench --bin service_smoke -- --gate`.

use std::process::ExitCode;
use std::time::Instant;

use csdf::{CsdfGraph, CsdfGraphBuilder};
use csdf_service::{throughput_to_string, Daemon, Json, ServiceConfig};

/// A single-cycle multirate ring (`tasks` must be a multiple of 12): rates
/// triple for six stages and shrink back for the next six, so the
/// repetition vector ramps 1→729→1 around every period and the event graph
/// carries `Σ q ≈ 120·tasks` firings from a text encoding of only `tasks`
/// lines — evaluation genuinely dominates request parsing, which is what
/// the warm daemon amortises. Tasks at the period boundary run three phases
/// (CSDF). The feedback marking `tokens` sets the throughput without
/// touching the structure fingerprint.
fn ring(tasks: usize, tokens: u64) -> CsdfGraph {
    assert_eq!(tasks % 12, 0, "the rate ladder closes every 12 tasks");
    // Producer rate of task i on buffer i -> i+1; the consumer side of the
    // same buffer is 1 (doubling half) or 2 (halving half).
    let up = |index: usize| (index % 12) < 6;
    let mut builder = CsdfGraphBuilder::new();
    let ids: Vec<_> = (0..tasks)
        .map(|index| {
            let duration = 1 + (index as u64 * 7) % 5;
            if index % 12 == 0 {
                builder.add_task(
                    format!("t{index}"),
                    vec![duration, duration + 2, duration + 1],
                )
            } else {
                builder.add_sdf_task(format!("t{index}"), duration)
            }
        })
        .collect();
    for index in 0..tasks {
        let next = (index + 1) % tasks;
        let initial = if next == 0 { tokens } else { 0 };
        // Tripling buffers move 3 -> 1, shrinking buffers 1 -> 3; the
        // boundary tasks (three phases) split their rate-3 side across the
        // phases. Boundary consumers only ever sit on shrinking buffers
        // (`c = 3`) and boundary producers only on tripling ones (`p = 3`),
        // so the split never changes a total.
        let produce = match (up(index), index % 12 == 0) {
            (true, true) => vec![1, 1, 1],
            (true, false) => vec![3],
            (false, _) => vec![1],
        };
        let consume = match (up(index), next % 12 == 0) {
            (true, _) => vec![1],
            (false, true) => vec![1, 1, 1],
            (false, false) => vec![3],
        };
        builder.add_buffer(ids[index], ids[next], produce, consume, initial);
    }
    builder.build().expect("ring is consistent")
}

fn graph_spec(graph: &CsdfGraph) -> Json {
    Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(graph))),
    ])
}

struct Batch {
    requests: Vec<String>,
    /// `(request index, graph)` of every evaluate request whose graph
    /// appears for the first time — the library-identity sample.
    unique_evaluates: Vec<(usize, CsdfGraph)>,
}

fn build_batch(total: usize) -> Batch {
    let sizes = [48usize, 72, 96, 120];
    let variants_per_size = 6u64;
    let composite = (total / 40).max(3);
    let evaluates = total - composite;

    let mut requests = Vec::with_capacity(total);
    let mut unique_evaluates = Vec::new();
    for slot in 0..evaluates {
        let unique = slot % (sizes.len() * variants_per_size as usize);
        let size = sizes[unique % sizes.len()];
        // 3 tokens are enough to rotate the ladder; more raises throughput.
        let tokens = 3 + 3 * (unique / sizes.len()) as u64;
        let graph = ring(size, tokens);
        if slot == unique {
            unique_evaluates.push((requests.len(), graph.clone()));
        }
        requests.push(format!(
            r#"{{"id":{},"type":"evaluate","graph":{}}}"#,
            requests.len(),
            graph_spec(&graph)
        ));
    }
    for slot in 0..composite {
        let size = sizes[slot % sizes.len()];
        let spec = graph_spec(&ring(size, 4));
        let id = requests.len();
        requests.push(match slot % 3 {
            0 => format!(r#"{{"id":{id},"type":"sweep","graph":{spec},"slacks":[1,2,4]}}"#),
            1 => format!(
                r#"{{"id":{id},"type":"min_storage","graph":{spec},"target":"1/100000","max_slack":8}}"#
            ),
            _ => {
                let feedback = size - 1;
                format!(
                    r#"{{"id":{id},"type":"scenario_set","graph":{spec},"scenarios":[{{"name":"tight","markings":[[{feedback},3]]}},{{"name":"relaxed","markings":[[{feedback},6]]}}]}}"#
                )
            }
        });
    }
    Batch {
        requests,
        unique_evaluates,
    }
}

/// A small fully serialised multirate ring: every task carries a one-token
/// self-loop, which is the precondition under which lint's static bounds
/// are sound for the solver — so `verify` must reach an `agree` verdict.
fn serialized_ring(tokens: u64) -> CsdfGraph {
    let mut builder = CsdfGraphBuilder::new();
    let a = builder.add_sdf_task("a", 2);
    let b = builder.add_task("b", vec![1, 3]);
    let c = builder.add_sdf_task("c", 1);
    builder.add_buffer(a, b, vec![2], vec![1, 1], 0);
    builder.add_buffer(b, c, vec![1, 1], vec![2], 0);
    builder.add_sdf_buffer(c, a, 1, 1, tokens);
    for task in [a, b, c] {
        builder.add_serializing_self_loop(task);
    }
    builder.build().expect("ring is consistent")
}

/// Builds the `lint`/`verify` mini-batch and answers it over the
/// stdin-batch transport; on unix, replays it over a Unix socket and
/// demands bit-identical responses. Returns the batch responses and any
/// failures.
fn lint_verify_transport_check() -> (Vec<String>, Vec<String>) {
    let requests = vec![
        format!(
            r#"{{"id":0,"type":"lint","graph":{}}}"#,
            graph_spec(&ring(48, 3))
        ),
        format!(
            r#"{{"id":1,"type":"lint","graph":{}}}"#,
            graph_spec(&serialized_ring(2))
        ),
        r#"{"id":2,"type":"lint","graph":{"format":"text","source":"graph g\nnonsense\n"}}"#
            .to_string(),
        format!(
            r#"{{"id":3,"type":"verify","graph":{}}}"#,
            graph_spec(&serialized_ring(2))
        ),
        format!(
            r#"{{"id":4,"type":"verify","graph":{}}}"#,
            graph_spec(&serialized_ring(0))
        ),
    ];
    let mut failures = Vec::new();

    let batch_daemon = Daemon::new(ServiceConfig::default());
    let batch = batch_daemon.run_batch(&requests.join("\n"));
    for (index, expect) in [
        (0, r#""status":"ok""#),
        (1, r#""errors":0"#),
        (2, r#""code":"L000""#),
        (3, r#""verdict":"agree""#),
        (4, r#""verdict":"agree""#),
    ] {
        if !batch[index].contains(expect) {
            failures.push(format!(
                "lint/verify response {index} misses {expect}: {}",
                batch[index]
            ));
        }
    }
    if !batch[4].contains(r#""throughput":"deadlock""#) {
        failures.push("tokenless serialized ring must verify as a deadlock".to_string());
    }

    #[cfg(unix)]
    {
        use std::io::{BufRead, BufReader, Write};
        let socket_daemon = Daemon::new(ServiceConfig::default());
        let path = std::env::temp_dir().join(format!("csdf-smoke-{}.sock", std::process::id()));
        let socket: Vec<String> = std::thread::scope(|scope| {
            let server = scope.spawn(|| socket_daemon.serve_unix(&path, Some(1)));
            let stream = (0..200)
                .find_map(|_| {
                    std::os::unix::net::UnixStream::connect(&path)
                        .ok()
                        .or_else(|| {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            None
                        })
                })
                .expect("daemon socket comes up");
            for request in &requests {
                writeln!(&stream, "{request}").expect("socket write");
            }
            // Half-close so the connection handler sees EOF once it has
            // drained the requests — otherwise the server never returns.
            stream
                .shutdown(std::net::Shutdown::Write)
                .expect("socket shutdown");
            let responses: Vec<String> = BufReader::new(&stream)
                .lines()
                .map(|line| line.expect("socket read"))
                .collect();
            drop(stream);
            server.join().expect("server thread").expect("serve_unix");
            responses
        });
        let _ = std::fs::remove_file(&path);
        for (index, (batch_line, socket_line)) in batch.iter().zip(&socket).enumerate() {
            if batch_line != socket_line {
                failures.push(format!(
                    "lint/verify response {index} differs between batch and socket transports"
                ));
            }
        }
    }

    (batch, failures)
}

fn main() -> ExitCode {
    let gate = std::env::args().any(|argument| argument == "--gate");
    let total = std::env::var("KITER_SERVICE_REQUESTS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(200)
        .max(10);
    let batch = build_batch(total);

    // Warm: one daemon for the whole batch, serial, so the measured speedup
    // is session/cache reuse and nothing else.
    let daemon = Daemon::new(ServiceConfig::default());
    let warm_start = Instant::now();
    let warm: Vec<String> = batch
        .requests
        .iter()
        .map(|line| daemon.handle_line(line))
        .collect();
    let warm_ms = warm_start.elapsed().as_secs_f64() * 1e3;

    // Cold baseline: a fresh daemon per request — per-request session
    // construction, exactly what a library caller without the service pays.
    let cold_start = Instant::now();
    let cold: Vec<String> = batch
        .requests
        .iter()
        .map(|line| Daemon::new(ServiceConfig::default()).handle_line(line))
        .collect();
    let cold_ms = cold_start.elapsed().as_secs_f64() * 1e3;

    let mut failures = Vec::new();
    let normalize = |line: &str| line.replace("\"cache\":\"hit\"", "\"cache\":\"miss\"");
    let bit_identical =
        warm.iter()
            .zip(&cold)
            .enumerate()
            .all(|(index, (warm_line, cold_line))| {
                let identical = normalize(warm_line) == normalize(cold_line);
                if !identical {
                    failures.push(format!(
                        "response {index} differs between warm and cold daemons"
                    ));
                }
                identical && warm_line.contains("\"status\":\"ok\"")
            });
    if !bit_identical && failures.is_empty() {
        failures.push("a response did not report status ok".to_string());
    }

    for &(index, ref graph) in &batch.unique_evaluates {
        let reference = kperiodic::optimal_throughput(graph).expect("reference evaluation");
        let expected = format!(
            "\"throughput\":\"{}\"",
            throughput_to_string(reference.throughput)
        );
        if !warm[index].contains(&expected) {
            failures.push(format!(
                "request {index}: daemon disagrees with optimal_throughput ({expected})"
            ));
        }
    }

    let pool = daemon.pool_stats();
    let cache = daemon.cache_stats();
    let hit_rate_floor = 0.5;
    if pool.warm_hit_rate() < hit_rate_floor {
        failures.push(format!(
            "warm hit rate {:.3} below floor {hit_rate_floor}",
            pool.warm_hit_rate()
        ));
    }
    let speedup = cold_ms / warm_ms.max(f64::MIN_POSITIVE);
    if gate && speedup < 2.0 {
        failures.push(format!("speedup {speedup:.2} below the 2x gate"));
    }

    let (lint_verify, transport_failures) = lint_verify_transport_check();
    let transport_identical = transport_failures.is_empty();
    failures.extend(transport_failures);

    println!(
        "{{\"table\":\"service_smoke\",\"requests\":{},\"unique_graphs\":{},\"warm_ms\":{:.1},\"cold_ms\":{:.1},\"speedup\":{:.2},\"checkouts\":{},\"warm_hit_rate\":{:.4},\"cache_hits\":{},\"cache_misses\":{},\"bit_identical\":{},\"lint_verify_requests\":{},\"transport_identical\":{},\"passed\":{}}}",
        batch.requests.len(),
        batch.unique_evaluates.len(),
        warm_ms,
        cold_ms,
        speedup,
        pool.checkouts,
        pool.warm_hit_rate(),
        cache.hits,
        cache.misses,
        bit_identical,
        lint_verify.len(),
        transport_identical,
        failures.is_empty(),
    );
    for failure in &failures {
        eprintln!("service_smoke: {failure}");
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
