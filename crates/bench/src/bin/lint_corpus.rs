//! CI gate: run the static analyzer over every generator category.
//!
//! For each category (the five hand-written DSP applications, the six
//! Table-1 SDF3 stand-in categories, the Table-2 industrial and synthetic
//! app specs, and the three random families) this bin lints a sample of
//! graphs and enforces the analyzer's contract:
//!
//! * no error-severity diagnostic on a graph the solver can evaluate — with
//!   one sanctioned exception: a *deadlock proof* (`L002`/`L003`/`L004`) is
//!   accepted iff [`kperiodic::optimal_throughput`] confirms the deadlock;
//! * every consistent graph gets a bounds bracket, and the bracket contains
//!   the exact K-periodic answer.
//!
//! With `--emit-dir DIR` every linted graph is also written to
//! `DIR/<category>_<index>.csdf` in the text format, so CI can replay the
//! same corpus through the `csdf-lint` CLI binary.
//!
//! Prints one JSON line per category plus a summary line; exits non-zero on
//! any violation.

use std::process::ExitCode;

use csdf::CsdfGraph;
use csdf_generators::{apps, dsp, random_graph, sdf3, RandomGraphConfig};
use csdf_lint::{analyze, Severity};
use kperiodic::optimal_throughput;

fn corpus() -> Vec<(String, Vec<CsdfGraph>)> {
    let mut corpus = Vec::new();
    corpus.push((
        "actual_dsp".to_string(),
        dsp::actual_dsp_suite().expect("dsp suite builds"),
    ));
    for category in sdf3::Sdf3Category::all() {
        let graphs = sdf3::generate_category(category, 4, 0xC0FFEE).expect("sdf3 category builds");
        corpus.push((
            format!("sdf3_{}", category.name().to_ascii_lowercase()),
            graphs,
        ));
    }
    let mut specs = apps::industrial_specs();
    specs.extend(apps::synthetic_specs());
    corpus.push((
        "table2_apps".to_string(),
        specs
            .iter()
            .map(|spec| apps::industrial_app(spec).expect("app spec builds"))
            .collect(),
    ));
    for (name, config) in [
        ("random_sdf", RandomGraphConfig::sdf(8)),
        ("random_small_csdf", RandomGraphConfig::small_csdf()),
        ("random_csdf", RandomGraphConfig::default()),
    ] {
        let graphs = (0..8u64)
            .map(|seed| random_graph(&config, seed).expect("random graph builds"))
            .collect();
        corpus.push((name.to_string(), graphs));
    }
    corpus
}

fn main() -> ExitCode {
    let mut arguments = std::env::args().skip(1);
    let mut emit_dir: Option<std::path::PathBuf> = None;
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "--emit-dir" => {
                let dir = arguments.next().expect("--emit-dir needs a path");
                emit_dir = Some(std::path::PathBuf::from(dir));
            }
            other => {
                eprintln!("lint_corpus: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &emit_dir {
        std::fs::create_dir_all(dir).expect("emit dir is creatable");
    }

    let mut failures = Vec::new();
    let mut total = 0usize;
    for (category, graphs) in corpus() {
        let mut diagnostics = 0usize;
        let mut confirmed_deadlocks = 0usize;
        for (index, graph) in graphs.iter().enumerate() {
            total += 1;
            if let Some(dir) = &emit_dir {
                let path = dir.join(format!("{category}_{index}.csdf"));
                std::fs::write(&path, csdf::text::to_text(graph)).expect("emit file writable");
            }
            let report = analyze(graph);
            diagnostics += report.diagnostics.len();
            let exact = match optimal_throughput(graph) {
                Ok(result) => result.throughput,
                Err(error) => {
                    failures.push(format!("{category}/{index}: solver failed: {error}"));
                    continue;
                }
            };
            if report.has_errors() {
                let all_deadlock_proofs = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.code.severity() == Severity::Error)
                    .all(|d| d.code.proves_deadlock());
                if all_deadlock_proofs && exact == csdf::Throughput::Deadlocked {
                    confirmed_deadlocks += 1;
                } else {
                    failures.push(format!(
                        "{category}/{index}: unexpected error diagnostics:\n{}",
                        report.render(None)
                    ));
                    continue;
                }
            }
            match &report.bounds {
                Some(bounds) if bounds.brackets(&exact) => {}
                Some(bounds) => failures.push(format!(
                    "{category}/{index}: exact {exact:?} escapes [{:?}, {:?}]",
                    bounds.lower, bounds.upper
                )),
                None => failures.push(format!("{category}/{index}: no bounds computed")),
            }
        }
        println!(
            "{{\"table\":\"lint_corpus\",\"category\":\"{category}\",\"graphs\":{},\"diagnostics\":{diagnostics},\"confirmed_deadlocks\":{confirmed_deadlocks}}}",
            graphs.len(),
        );
    }
    println!(
        "{{\"table\":\"lint_corpus\",\"category\":\"summary\",\"graphs\":{total},\"passed\":{}}}",
        failures.is_empty(),
    );
    for failure in &failures {
        eprintln!("lint_corpus: {failure}");
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
