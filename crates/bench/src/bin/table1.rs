//! Regenerates the paper's **Table 1**: average computation time of three
//! optimal throughput evaluation methods over the SDF3 benchmark categories
//! (the paper's four SDF categories, their cyclo-static counterparts
//! `MimicCSDF`/`LgCSDF`, and the sized-buffer variant of every category, so
//! the expansion method can be cross-checked on true CSDF as well).
//!
//! Run with `cargo run -p kiter-bench --bin table1 --release`.
//! The number of generated graphs per category defaults to 8 and can be
//! raised with `KITER_BENCH_GRAPHS=100` to match the paper's setup.
//! `--json` emits one JSON object per category row (the committed
//! `BENCH_TABLE1.json` reference file is produced this way); `--only <name>`
//! filters categories by name substring (e.g. `--only sized`).

use csdf::CsdfGraph;
use csdf_baselines::Budget;
use csdf_generators::sdf3::{generate_category, generate_category_sized, Sdf3Category};
use kiter_bench::{category_row, graphs_per_category, json_escape, Method, TableArgs};

fn main() {
    let budget = Budget::benchmark();
    let per_category = graphs_per_category();
    let methods = [Method::KIter, Method::Expansion, Method::SymbolicExecution];
    let args = TableArgs::parse();

    if !args.json {
        println!(
            "Table 1: average computation time of three optimal throughput evaluation methods"
        );
        println!("(synthetic reproduction of the SDF3 benchmark categories; see DESIGN.md §5)\n");
        println!(
            "{:<18} {:>7} {:>16} {:>16} {:>24} {:>24} | {:>14} {:>14} {:>14}",
            "Category",
            "graphs",
            "tasks min/avg/max",
            "chans min/avg/max",
            "sum(q) min/avg/max",
            "copies min/avg/max",
            "K-Iter",
            "[6] expansion",
            "[8] symbolic"
        );
    }

    let mut rows: Vec<(String, Vec<CsdfGraph>)> = Vec::new();
    for category in Sdf3Category::all() {
        let count = match category {
            Sdf3Category::ActualDsp => 5,
            _ => per_category,
        };
        if args.wants(category.name()) {
            rows.push((
                category.name().to_string(),
                generate_category(category, count, 0xDAC1).expect("generation succeeds"),
            ));
        }
        let sized_name = format!("{}+sized", category.name());
        if args.wants(&sized_name) {
            rows.push((
                sized_name,
                generate_category_sized(category, count, 0xDAC1).expect("generation succeeds"),
            ));
        }
    }

    for (name, graphs) in rows {
        let row = category_row(&name, &graphs, &methods, &budget);
        if args.json {
            let methods_json: Vec<String> = row
                .averages
                .iter()
                .map(|(method, avg, failures)| {
                    format!(
                        "\"{}\":{{\"avg_ms\":{:.3},\"failures\":{}}}",
                        json_escape(method.label()),
                        avg.as_secs_f64() * 1e3,
                        failures
                    )
                })
                .collect();
            println!(
                "{{\"table\":\"table1\",\"category\":\"{}\",\"graphs\":{},\"tasks\":[{},{},{}],\"buffers\":[{},{},{}],\"sum_q\":[{},{},{}],\"copies\":[{},{},{}],\"methods\":{{{}}}}}",
                json_escape(&row.name),
                row.graphs,
                row.tasks.0,
                row.tasks.1,
                row.tasks.2,
                row.buffers.0,
                row.buffers.1,
                row.buffers.2,
                row.repetition_sum.0,
                row.repetition_sum.1,
                row.repetition_sum.2,
                row.expansion_copies.0,
                row.expansion_copies.1,
                row.expansion_copies.2,
                methods_json.join(","),
            );
            continue;
        }
        let cells: Vec<String> = row
            .averages
            .iter()
            .map(|(_, avg, failures)| {
                if *failures > 0 {
                    format!("{:.2} ms ({}x)", avg.as_secs_f64() * 1e3, failures)
                } else {
                    format!("{:.2} ms", avg.as_secs_f64() * 1e3)
                }
            })
            .collect();
        println!(
            "{:<18} {:>7} {:>16} {:>16} {:>24} {:>24} | {:>14} {:>14} {:>14}",
            row.name,
            row.graphs,
            format!("{}/{}/{}", row.tasks.0, row.tasks.1, row.tasks.2),
            format!("{}/{}/{}", row.buffers.0, row.buffers.1, row.buffers.2),
            format!(
                "{}/{}/{}",
                row.repetition_sum.0, row.repetition_sum.1, row.repetition_sum.2
            ),
            format!(
                "{}/{}/{}",
                row.expansion_copies.0, row.expansion_copies.1, row.expansion_copies.2
            ),
            cells[0],
            cells[1],
            cells[2],
        );
    }
    if !args.json {
        println!("\n(NNx) marks the number of graphs a method failed to finish within its budget.");
    }
}
