//! Regenerates the paper's **Table 2**: optimality and computation time of
//! the periodic method, K-Iter and symbolic execution on industrial CSDF
//! applications (with and without buffer-size constraints) and on synthetic
//! graphs.
//!
//! Run with `cargo run -p kiter-bench --bin table2 --release`.
//! `KITER_TABLE2_FULL=1` additionally evaluates the largest instances
//! (H264Encoder, graph4, graph5), which take several minutes.

use csdf::CsdfGraph;
use csdf_baselines::Budget;
use csdf_generators::apps::{industrial_app, industrial_specs, synthetic_specs, AppSpec};
use csdf_generators::buffer_sized;
use kiter_bench::{run_method, Method};

fn main() {
    let budget = Budget::default();
    let full = std::env::var("KITER_TABLE2_FULL").is_ok();

    println!("Table 2: periodic [4] vs K-Iter vs symbolic execution [16]");
    println!("(synthetic reproductions of the IB+AG5CSDF applications; see DESIGN.md §5)\n");
    header();

    println!("-- no buffer size --------------------------------------------------------------");
    for spec in industrial_specs() {
        if skip_large(&spec, full) {
            continue;
        }
        match industrial_app(&spec) {
            Ok(graph) => row(spec.name, &graph, &budget),
            Err(err) => println!("{:<14} generation failed: {err}", spec.name),
        }
    }

    println!("-- fixed buffer size -----------------------------------------------------------");
    for spec in industrial_specs() {
        if skip_large(&spec, full) {
            continue;
        }
        match industrial_app(&spec).and_then(|g| buffer_sized(&g, 2)) {
            Ok(graph) => row(spec.name, &graph, &budget),
            Err(err) => println!("{:<14} generation failed: {err}", spec.name),
        }
    }

    println!("-- synthetic graphs ------------------------------------------------------------");
    for spec in synthetic_specs() {
        if skip_large(&spec, full) {
            continue;
        }
        match industrial_app(&spec) {
            Ok(graph) => row(spec.name, &graph, &budget),
            Err(err) => println!("{:<14} generation failed: {err}", spec.name),
        }
    }

    if !full {
        println!("\n(the largest instances were skipped; set KITER_TABLE2_FULL=1 to include them)");
    }
    println!("'N/S' = the method has no solution, '> budget' = resource budget exhausted.");
}

fn skip_large(spec: &AppSpec, full: bool) -> bool {
    !full && (spec.tasks > 700 || spec.name == "graph2" || spec.name == "graph3")
}

fn header() {
    println!(
        "{:<14} {:>6} {:>8} {:>14} | {:>6} {:>12} | {:>6} {:>12} | {:>6} {:>12}",
        "Application",
        "tasks",
        "buffers",
        "sum(q)",
        "[4]%",
        "[4] time",
        "KIt%",
        "K-Iter time",
        "[16]%",
        "[16] time"
    );
}

fn row(name: &str, graph: &CsdfGraph, budget: &Budget) {
    let sum = graph
        .repetition_vector()
        .map(|q| q.sum().to_string())
        .unwrap_or_else(|_| "?".to_string());

    let kiter = run_method(graph, Method::KIter, budget);
    let periodic = run_method(graph, Method::Periodic, budget);
    let symbolic = run_method(graph, Method::SymbolicExecution, budget);
    let reference = kiter.throughput;

    println!(
        "{:<14} {:>6} {:>8} {:>14} | {:>6} {:>12} | {:>6} {:>12} | {:>6} {:>12}",
        name,
        graph.task_count(),
        graph.buffer_count(),
        sum,
        periodic.optimality_cell(reference),
        periodic.time_cell(),
        kiter.optimality_cell(reference),
        kiter.time_cell(),
        symbolic.optimality_cell(reference),
        symbolic.time_cell(),
    );
}
