//! Regenerates the paper's **Table 2**: optimality and computation time of
//! the periodic method, K-Iter and symbolic execution on industrial CSDF
//! applications (with and without buffer-size constraints) and on synthetic
//! graphs.
//!
//! Run with `cargo run -p kiter-bench --bin table2 --release`.
//! `KITER_TABLE2_FULL=1` additionally evaluates the largest instances
//! (`H264Encoder`, graph4, graph5), which take several minutes.
//!
//! Options: `--json` emits one JSON object per row (the committed
//! `BENCH_TABLE2.json` reference file is produced this way), `--only <name>`
//! filters rows by name substring, and `--section <no-buffer|sized|synthetic>`
//! runs a single section — CI uses
//! `--section sized --only JPEG2000 --json` under a hard timeout to guard the
//! buffer-sized pathology that Howard's policy iteration fixed.

use csdf::CsdfGraph;
use csdf_baselines::Budget;
use csdf_generators::apps::{industrial_app, industrial_specs, synthetic_specs, AppSpec};
use csdf_generators::buffer_sized;
use kiter_bench::{json_escape, run_method, Method, TableArgs};

fn main() {
    let budget = Budget::default();
    let full = std::env::var("KITER_TABLE2_FULL").is_ok();
    let args = TableArgs::parse();

    if !args.json {
        println!("Table 2: periodic [4] vs K-Iter vs symbolic execution [16]");
        println!("(synthetic reproductions of the IB+AG5CSDF applications; see DESIGN.md §5)\n");
        header();
    }

    if args.wants_section("no-buffer") {
        if !args.json {
            println!(
                "-- no buffer size --------------------------------------------------------------"
            );
        }
        for spec in industrial_specs() {
            if skip_large(&spec, full) || !args.wants(spec.name) {
                continue;
            }
            match industrial_app(&spec) {
                Ok(graph) => row(&args, "no-buffer", spec.name, &graph, &budget),
                Err(err) => generation_failed(&args, "no-buffer", spec.name, &err),
            }
        }
    }

    if args.wants_section("sized") {
        if !args.json {
            println!(
                "-- fixed buffer size -----------------------------------------------------------"
            );
        }
        for spec in industrial_specs() {
            if skip_large(&spec, full) || !args.wants(spec.name) {
                continue;
            }
            match industrial_app(&spec).and_then(|g| buffer_sized(&g, 2)) {
                Ok(graph) => row(&args, "sized", spec.name, &graph, &budget),
                Err(err) => generation_failed(&args, "sized", spec.name, &err),
            }
        }
    }

    if args.wants_section("synthetic") {
        if !args.json {
            println!(
                "-- synthetic graphs ------------------------------------------------------------"
            );
        }
        for spec in synthetic_specs() {
            if skip_large(&spec, full) || !args.wants(spec.name) {
                continue;
            }
            match industrial_app(&spec) {
                Ok(graph) => row(&args, "synthetic", spec.name, &graph, &budget),
                Err(err) => generation_failed(&args, "synthetic", spec.name, &err),
            }
        }
    }

    if !args.json {
        if !full {
            println!(
                "\n(the largest instances were skipped; set KITER_TABLE2_FULL=1 to include them)"
            );
        }
        println!("'N/S' = the method has no solution, '> budget' = resource budget exhausted.");
    }
}

/// Reports a generator failure without corrupting the output stream: a
/// structured object in `--json` mode, the plain line otherwise.
fn generation_failed(args: &TableArgs, section: &str, name: &str, err: &impl std::fmt::Display) {
    if args.json {
        println!(
            "{{\"table\":\"table2\",\"section\":\"{}\",\"name\":\"{}\",\"error\":\"{}\"}}",
            json_escape(section),
            json_escape(name),
            json_escape(&err.to_string()),
        );
    } else {
        println!("{name:<14} generation failed: {err}");
    }
}

fn skip_large(spec: &AppSpec, full: bool) -> bool {
    !full && (spec.tasks > 700 || spec.name == "graph2" || spec.name == "graph3")
}

fn header() {
    println!(
        "{:<14} {:>6} {:>8} {:>14} | {:>6} {:>12} | {:>6} {:>12} | {:>6} {:>12}",
        "Application",
        "tasks",
        "buffers",
        "sum(q)",
        "[4]%",
        "[4] time",
        "KIt%",
        "K-Iter time",
        "[16]%",
        "[16] time"
    );
}

fn row(args: &TableArgs, section: &str, name: &str, graph: &CsdfGraph, budget: &Budget) {
    let sum = graph
        .repetition_vector()
        .map_or_else(|_| "?".to_string(), |q| q.sum().to_string());

    let kiter = run_method(graph, Method::KIter, budget);
    let periodic = run_method(graph, Method::Periodic, budget);
    let symbolic = run_method(graph, Method::SymbolicExecution, budget);
    let reference = kiter.throughput;

    if args.json {
        println!(
            "{{\"table\":\"table2\",\"section\":\"{}\",\"name\":\"{}\",\"tasks\":{},\"buffers\":{},\"sum_q\":\"{}\",\"periodic\":{},\"kiter\":{},\"symbolic\":{}}}",
            json_escape(section),
            json_escape(name),
            graph.task_count(),
            graph.buffer_count(),
            json_escape(&sum),
            periodic.json_fragment(),
            kiter.json_fragment(),
            symbolic.json_fragment(),
        );
        return;
    }

    println!(
        "{:<14} {:>6} {:>8} {:>14} | {:>6} {:>12} | {:>6} {:>12} | {:>6} {:>12}",
        name,
        graph.task_count(),
        graph.buffer_count(),
        sum,
        periodic.optimality_cell(reference),
        periodic.time_cell(),
        kiter.optimality_cell(reference),
        kiter.time_cell(),
        symbolic.optimality_cell(reference),
        symbolic.time_cell(),
    );
}
