//! Design-space-exploration smoke test: a 32-point uniform-slack capacity
//! sweep of the JPEG2000 and DSP applications through the `explore` /
//! `AnalysisSession` stack, validated point-by-point against 32 independent
//! cold `optimal_throughput` calls.
//!
//! Two properties are checked, mirroring the ISSUE-5 acceptance criteria:
//!
//! * **bit-identity** — every sweep point's `KIterResult` (throughput, K,
//!   iteration count, critical tasks) equals the cold evaluation of the same
//!   design point; any mismatch fails the process;
//! * **less work** — with `--gate <factor>` the total sweep wall-clock must
//!   stay at or below `factor ×` the cold baseline (CI uses `--gate 0.5`,
//!   summed across apps so the big JPEG2000 instance dominates and the tiny
//!   DSP rows cannot flake the gate).
//!
//! Run with `cargo run --release -p kiter-bench --bin explore_smoke --
//! [--json] [--gate 0.5]`. `KITER_EXPLORE_POINTS` overrides the point count
//! (default 32), `KITER_EXPLORE_WORKERS` the sweep worker count (default
//! `min(4, available_parallelism)`).

use std::time::Instant;

use csdf::transform::bound_all_buffers;
use csdf::CsdfGraph;
use csdf_explore::{uniform_slack_capacity, ExploreOptions, ParetoSweep};
use csdf_generators::{apps, dsp};
use kiter_bench::json_escape;
use kperiodic::{optimal_throughput, KIterResult};

struct AppRun {
    cold_ms: f64,
    sweep_ms: f64,
    identical: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut gate: Option<f64> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // JSON is the only output format; accepted for symmetry with the
            // other smoke binaries.
            "--json" => {}
            "--gate" => {
                let value = args.next().expect("--gate takes a factor");
                gate = Some(value.parse().expect("--gate takes a number"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let points: usize = std::env::var("KITER_EXPLORE_POINTS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(32);
    let workers: usize = std::env::var("KITER_EXPLORE_WORKERS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get().min(4)));
    let slacks: Vec<u64> = (1..=points as u64).collect();

    let applications: Vec<(&'static str, CsdfGraph)> = vec![
        (
            "JPEG2000",
            apps::industrial_app(&apps::jpeg2000()).expect("JPEG2000 generates"),
        ),
        (
            "samplerate",
            dsp::sample_rate_converter().expect("samplerate generates"),
        ),
    ];

    let mut runs = Vec::new();
    let mut all_identical = true;
    for (name, graph) in &applications {
        let run = run_app(name, graph, &slacks, workers);
        all_identical &= run.identical;
        runs.push(run);
    }

    let cold_total: f64 = runs.iter().map(|run| run.cold_ms).sum();
    let sweep_total: f64 = runs.iter().map(|run| run.sweep_ms).sum();
    let ratio = sweep_total / cold_total.max(f64::MIN_POSITIVE);
    println!(
        "{{\"table\":\"explore_smoke\",\"points\":{points},\"workers\":{workers},\"cold_ms\":{cold_total:.1},\
         \"sweep_ms\":{sweep_total:.1},\"ratio\":{ratio:.3},\"identical\":{all_identical},\"completed\":true}}",
    );

    if !all_identical {
        eprintln!("explore smoke failed: sweep results differ from cold evaluations");
        std::process::exit(1);
    }
    if let Some(factor) = gate {
        if ratio > factor {
            eprintln!(
                "explore gate failed: sweep took {sweep_total:.1} ms, {ratio:.2}x the \
                 {cold_total:.1} ms cold baseline (limit {factor}x)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "explore gate ok: sweep/cold ratio {ratio:.2} within the {factor} limit \
             ({workers} workers)"
        );
    }
}

fn run_app(name: &str, graph: &CsdfGraph, slacks: &[u64], workers: usize) -> AppRun {
    // Cold baseline: one independent evaluation per point, rebuilding the
    // bounded graph, the event-graph arena and the solver from scratch each
    // time — exactly what `examples/buffer_sizing.rs` did before the session
    // API existed.
    let cold_started = Instant::now();
    let cold_results: Vec<KIterResult> = slacks
        .iter()
        .map(|&slack| {
            let bounded =
                bound_all_buffers(graph, |_, buffer| uniform_slack_capacity(buffer, slack))
                    .expect("bounding succeeds");
            optimal_throughput(&bounded).expect("cold evaluation succeeds")
        })
        .collect();
    let cold_ms = cold_started.elapsed().as_secs_f64() * 1e3;

    // The sweep: same design points through worker-owned analysis sessions.
    let sweep = ParetoSweep::uniform_slack(graph, slacks).expect("sweep builds");
    let options = ExploreOptions {
        workers,
        ..ExploreOptions::default()
    };
    let sweep_started = Instant::now();
    let outcome = sweep.run(&options).expect("sweep succeeds");
    let sweep_ms = sweep_started.elapsed().as_secs_f64() * 1e3;

    let identical = outcome
        .points
        .iter()
        .zip(&cold_results)
        .all(|(point, cold)| &point.result == cold);
    let frontier = outcome.pareto_frontier().len();
    let stats = outcome.stats;
    println!(
        "{{\"table\":\"explore_smoke\",\"app\":\"{}\",\"tasks\":{},\"buffers\":{},\
         \"points\":{},\"workers\":{},\"sessions\":{},\"frontier\":{},\
         \"cold_ms\":{:.1},\"sweep_ms\":{:.1},\"construction_ms\":{:.1},\
         \"solve_ms\":{:.1},\"evaluations\":{},\"full_builds\":{},\"patched\":{},\
         \"identical\":{}}}",
        json_escape(name),
        graph.task_count(),
        graph.buffer_count(),
        outcome.points.len(),
        workers,
        outcome.sessions,
        frontier,
        cold_ms,
        sweep_ms,
        stats.total_construction_time().as_secs_f64() * 1e3,
        stats.total_solve_time().as_secs_f64() * 1e3,
        stats.evaluations,
        stats.full_builds,
        stats.patched,
        identical,
    );
    AppRun {
        cold_ms,
        sweep_ms,
        identical,
    }
}
