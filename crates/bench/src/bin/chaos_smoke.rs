//! CI chaos gate for the analysis daemon (`csdf-service`).
//!
//! Replays a 200-request adversarial mix — valid evaluations interleaved
//! with malformed JSON, unknown request types, oversize lines, graphs over
//! the admission caps, deadlocked rings, zero-deadline requests and faults
//! injected at every request-handling site (panics at parse / checkout /
//! patch / cache, an injected solver error) — and asserts the containment
//! contract of the robustness layer:
//!
//! 1. **Liveness**: the daemon answers every request of the mix, over the
//!    batch transport with a full worker pool; no request is lost to a
//!    panic, a poisoned lock or an admission rejection.
//! 2. **Transport identity**: with a single worker the serial batch
//!    transport and a single Unix-socket connection (each on a fresh daemon
//!    with an identical fault plan) produce bit-identical response streams.
//! 3. **No session leaks**: after the whole mix,
//!    `checkouts == returned + quarantined` on every daemon.
//! 4. **Deadlines hold**: a heavyweight graph with a 50 ms deadline is
//!    answered well before a 10 s liveness bound.
//!
//! Prints one JSON summary line. `KITER_CHAOS_REQUESTS` overrides the mix
//! size (default 200).
//!
//! Run with `cargo run --release -p kiter-bench --bin chaos_smoke`.

use std::process::ExitCode;
use std::time::Instant;

use csdf::{CsdfGraph, CsdfGraphBuilder};
use csdf_service::{Daemon, FaultAction, FaultPlan, FaultSite, Json, ServiceConfig};

/// A two-task SDF ring; `tokens = 0` deadlocks it.
fn ring(duration: u64, tokens: u64) -> CsdfGraph {
    let mut builder = CsdfGraphBuilder::new();
    let x = builder.add_sdf_task("x", duration);
    let y = builder.add_sdf_task("y", 1);
    builder.add_sdf_buffer(x, y, 1, 1, 0);
    builder.add_sdf_buffer(y, x, 1, 1, tokens);
    builder.build().expect("ring is consistent")
}

/// An SDF cycle of `tasks` tasks with a 2↔1 rate ladder: cheap to encode,
/// non-trivial to evaluate (the repetition vector is non-uniform).
fn chain_ring(tasks: usize, tokens: u64) -> CsdfGraph {
    let mut builder = CsdfGraphBuilder::new();
    let ids: Vec<_> = (0..tasks)
        .map(|index| builder.add_sdf_task(format!("t{index}"), 1 + (index as u64 % 4)))
        .collect();
    for index in 0..tasks {
        let next = (index + 1) % tasks;
        let (produce, consume) = if index % 2 == 0 { (2, 1) } else { (1, 2) };
        let initial = if next == 0 { tokens } else { 0 };
        builder.add_sdf_buffer(ids[index], ids[next], produce, consume, initial);
    }
    builder.build().expect("chain ring is consistent")
}

fn graph_spec(graph: &CsdfGraph) -> Json {
    Json::Object(vec![
        ("format".to_string(), Json::Str("text".to_string())),
        ("source".to_string(), Json::Str(csdf::text::to_text(graph))),
    ])
}

/// The adversarial mix: request `id` equals its index, so any lost or
/// reordered response is visible.
fn build_mix(total: usize, max_line_bytes: usize, max_tasks: usize) -> Vec<String> {
    (0..total)
        .map(|id| match id % 10 {
            // Valid evaluations over a few structures and markings — the
            // healthy traffic the daemon must keep serving throughout.
            0..=2 => format!(
                r#"{{"id":{id},"type":"evaluate","graph":{}}}"#,
                graph_spec(&ring(2 + (id % 3) as u64, 1 + (id % 5) as u64))
            ),
            // A deadlocked design: a valid `ok` answer of "deadlock".
            3 => format!(
                r#"{{"id":{id},"type":"evaluate","graph":{}}}"#,
                graph_spec(&ring(2, 0))
            ),
            // Malformed JSON.
            4 => format!(r#"{{"id":{id},"type":"evaluate","graph"::::"#),
            // Unknown request type.
            5 => format!(r#"{{"id":{id},"type":"explode"}}"#),
            // A line over the admission cap (ASCII junk, id up front so the
            // rejection can still echo it).
            6 => format!(
                r#"{{"id":{id},"type":"evaluate","junk":"{}"}}"#,
                "x".repeat(max_line_bytes)
            ),
            // A graph over the task-count cap.
            7 => format!(
                r#"{{"id":{id},"type":"evaluate","graph":{}}}"#,
                graph_spec(&chain_ring(max_tasks + 2, 4))
            ),
            // A zero deadline: cancelled before the solve, deterministically.
            8 => format!(
                r#"{{"id":{id},"deadline_ms":0,"type":"evaluate","graph":{}}}"#,
                graph_spec(&ring(2, 3))
            ),
            // Lint and verify traffic (verify exercises the cache site too).
            _ if id % 20 == 9 => format!(
                r#"{{"id":{id},"type":"lint","graph":{}}}"#,
                graph_spec(&ring(2, 2))
            ),
            _ => format!(
                r#"{{"id":{id},"type":"verify","graph":{}}}"#,
                graph_spec(&ring(2, 2))
            ),
        })
        .collect()
}

/// One fault plan instance: panics and an injected error scattered across
/// every site. Fresh per daemon, so two daemons replaying the same serial
/// mix fire the same faults at the same occurrences.
fn fresh_plan() -> FaultPlan {
    FaultPlan::new()
        .inject_window(FaultSite::Parse, 12, 1, FaultAction::Panic)
        .inject_window(FaultSite::Checkout, 9, 1, FaultAction::Panic)
        .inject_window(FaultSite::Patch, 17, 1, FaultAction::Panic)
        .inject_window(FaultSite::Cache, 21, 1, FaultAction::Panic)
        .inject_window(
            // Solve polls happen only on cache misses, so keep the window
            // early enough that the mix actually reaches it.
            FaultSite::Solve,
            7,
            1,
            FaultAction::Error("injected solver fault".to_string()),
        )
}

fn config(workers: usize, max_line_bytes: usize, max_tasks: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        max_line_bytes,
        max_tasks,
        ..ServiceConfig::default()
    }
}

/// Replays the mix over one Unix-socket connection and returns the response
/// stream.
#[cfg(unix)]
fn socket_replay(daemon: &Daemon, requests: &[String]) -> Vec<String> {
    use std::io::{BufRead, BufReader, Write};
    let path = std::env::temp_dir().join(format!("csdf-chaos-{}.sock", std::process::id()));
    let responses = std::thread::scope(|scope| {
        let server = scope.spawn(|| daemon.serve_unix(&path, Some(1)));
        let stream = (0..200)
            .find_map(|_| {
                std::os::unix::net::UnixStream::connect(&path)
                    .ok()
                    .or_else(|| {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        None
                    })
            })
            .expect("daemon socket comes up");
        for request in requests {
            writeln!(&stream, "{request}").expect("socket write");
        }
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("socket shutdown");
        let responses: Vec<String> = BufReader::new(&stream)
            .lines()
            .map(|line| line.expect("socket read"))
            .collect();
        drop(stream);
        server.join().expect("server thread").expect("serve_unix");
        responses
    });
    let _ = std::fs::remove_file(&path);
    responses
}

fn main() -> ExitCode {
    // Injected panics are part of the plan; keep them off stderr.
    std::panic::set_hook(Box::new(|_| {}));

    let total = std::env::var("KITER_CHAOS_REQUESTS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(200)
        .max(40);
    let max_line_bytes = 2048;
    let max_tasks = 64;
    let requests = build_mix(total, max_line_bytes, max_tasks);
    let mut failures = Vec::new();

    // Phase 1 — liveness under a full worker pool: every request answered,
    // every response well-formed, faults fired, no session leaked.
    let daemon = Daemon::new(config(8, max_line_bytes, max_tasks)).with_fault_plan(fresh_plan());
    let responses = daemon.run_batch(&requests.join("\n"));
    if responses.len() != requests.len() {
        failures.push(format!(
            "liveness: {} responses for {} requests",
            responses.len(),
            requests.len()
        ));
    }
    for (index, line) in responses.iter().enumerate() {
        match Json::parse(line) {
            Err(error) => failures.push(format!("response {index} is not JSON ({error}): {line}")),
            Ok(json) => {
                let status = json.get("status").and_then(Json::as_str);
                if status != Some("ok") && status != Some("error") {
                    failures.push(format!("response {index} has no status: {line}"));
                }
            }
        }
    }
    let pool = daemon.pool_stats();
    let service = daemon.service_stats();
    let leaked = pool.checkouts != pool.returned + pool.quarantined;
    if leaked {
        failures.push(format!("liveness: session leak ({pool:?})"));
    }
    if service.panics_caught == 0 {
        failures.push("liveness: injected panics were never caught".to_string());
    }
    if service.rejected == 0 {
        failures.push("liveness: admission control never fired".to_string());
    }
    if service.deadline_exceeded == 0 {
        failures.push("liveness: zero-deadline requests were not cancelled".to_string());
    }

    // Phase 2 — transport identity: fresh daemons, identical fault plans,
    // strictly serial processing on both sides.
    let batch_daemon =
        Daemon::new(config(1, max_line_bytes, max_tasks)).with_fault_plan(fresh_plan());
    let batch = batch_daemon.run_batch(&requests.join("\n"));
    #[cfg(unix)]
    let transport_identical = {
        let socket_daemon =
            Daemon::new(config(1, max_line_bytes, max_tasks)).with_fault_plan(fresh_plan());
        let socket = socket_replay(&socket_daemon, &requests);
        let mut identical = batch.len() == socket.len();
        if !identical {
            failures.push(format!(
                "transport: {} batch responses vs {} socket responses",
                batch.len(),
                socket.len()
            ));
        }
        for (index, (batch_line, socket_line)) in batch.iter().zip(&socket).enumerate() {
            if batch_line != socket_line {
                identical = false;
                failures.push(format!(
                    "transport: response {index} differs\n  batch:  {batch_line}\n  socket: {socket_line}"
                ));
            }
        }
        let socket_pool = socket_daemon.pool_stats();
        if socket_pool.checkouts != socket_pool.returned + socket_pool.quarantined {
            failures.push(format!("transport: socket session leak ({socket_pool:?})"));
        }
        identical
    };
    #[cfg(not(unix))]
    let transport_identical = true;

    // Phase 3 — deadlines hold on a heavyweight graph: the answer (whether
    // it beat the deadline or was cancelled) must arrive well before the
    // liveness bound.
    let heavy = chain_ring(60, 8);
    let heavy_line = format!(
        r#"{{"id":9999,"deadline_ms":50,"type":"evaluate","graph":{}}}"#,
        graph_spec(&heavy)
    );
    let deadline_daemon = Daemon::new(config(1, 1 << 20, 1 << 20));
    let start = Instant::now();
    let heavy_response = deadline_daemon.handle_line(&heavy_line);
    let heavy_ms = start.elapsed().as_secs_f64() * 1e3;
    if heavy_ms > 10_000.0 {
        failures.push(format!("deadline: heavy request took {heavy_ms:.0} ms"));
    }
    if !heavy_response.contains("\"status\":") {
        failures.push(format!(
            "deadline: malformed heavy response: {heavy_response}"
        ));
    }

    println!(
        "{{\"table\":\"chaos_smoke\",\"requests\":{},\"all_answered\":{},\"transport_identical\":{},\"panics_caught\":{},\"rejected\":{},\"deadline_exceeded\":{},\"quarantined\":{},\"pool_poison_recoveries\":{},\"cache_poison_recoveries\":{},\"session_leaks\":{},\"heavy_ms\":{:.1},\"passed\":{}}}",
        requests.len(),
        responses.len() == requests.len(),
        transport_identical,
        service.panics_caught,
        service.rejected,
        service.deadline_exceeded,
        pool.quarantined,
        service.pool_poison_recoveries,
        service.cache_poison_recoveries,
        if leaked { 1 } else { 0 },
        heavy_ms,
        failures.is_empty(),
    );
    for failure in &failures {
        eprintln!("chaos_smoke: {failure}");
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
