//! Scalability smoke test: one large locality-bounded random CSDF graph
//! through K-Iter, printing a JSON line per thread count with the outcome
//! and the pipeline's construction/solve time split.
//!
//! CI runs this under a hard `timeout`, asserts a non-vacuous (finite)
//! throughput, and — via `--check BENCH_TABLE1.json` — fails the build if
//! the 10k-task MCR-solve split regresses more than [`CHECK_FACTOR`]× over
//! the committed baseline (the `"table":"scale_smoke"` line of that file),
//! mirroring the JPEG2000 sized-buffer guard: any regression of the
//! event-graph construction path or the MCR solver at scale fails the build
//! instead of silently slowing it down.
//!
//! Sweeping more than one thread count additionally enforces the intra-SCC
//! determinism contract: every run must report byte-identical throughput,
//! iteration count and event-graph size, or the binary exits non-zero. The
//! parallel solver is contractually bit-identical to the serial one (see the
//! `mcr::chunked` module), so any divergence here is a correctness bug, not
//! noise.
//!
//! Run with `cargo run -p kiter-bench --bin scale_smoke --release -- [--json]
//! [--threads 1,2,4] [--check BENCH_TABLE1.json]`.
//! `KITER_SMOKE_TASKS` overrides the task count (default 10000, 100k+ is
//! supported and CI-exercised); `KITER_SMOKE_THREADS` is the default thread
//! sweep (default `1`).

use std::time::Instant;

use csdf::Throughput;
use csdf_generators::{random_graph, RandomGraphConfig};
use kiter_bench::json_escape;
use kperiodic::{kiter_with_pipeline, AnalysisOptions, EvaluationPipeline, KIterOptions};

/// A solve split slower than `baseline × CHECK_FACTOR` fails `--check`.
/// Generous on purpose: CI machines are noisy; a real regression (losing the
/// integer kernel, re-deriving the event graph per iteration) is >4×.
const CHECK_FACTOR: f64 = 3.0;

struct RunStats {
    threads: usize,
    total_ms: f64,
    build_ms: f64,
    patch_ms: f64,
    solve_ms: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut check_path: Option<String> = None;
    let mut threads_arg: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // JSON is the only output format; the flag is accepted for
            // symmetry with the table binaries.
            "--json" => {}
            "--check" => check_path = args.next(),
            "--threads" => threads_arg = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let tasks: usize = std::env::var("KITER_SMOKE_TASKS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(10_000);
    let threads: Vec<usize> = threads_arg
        .or_else(|| std::env::var("KITER_SMOKE_THREADS").ok())
        .map_or_else(
            || vec![1],
            |list| {
                list.split(',')
                    .map(|value| value.trim().parse().expect("--threads takes integers"))
                    .collect()
            },
        );

    let graph = random_graph(&RandomGraphConfig::large(tasks), 0xD0C5)
        .expect("large random graph generates");

    let mut runs = Vec::new();
    let mut first_outcome: Option<(usize, (String, usize, usize, usize))> = None;
    for &thread_count in &threads {
        let options = AnalysisOptions {
            threads: thread_count,
            ..AnalysisOptions::default()
        };
        let started = Instant::now();
        let mut pipeline = EvaluationPipeline::new(options);
        let result = kiter_with_pipeline(&graph, &KIterOptions::default(), &mut pipeline);
        let total_ms = started.elapsed().as_secs_f64() * 1e3;

        match result {
            Ok(result) => {
                let stats = pipeline.stats();
                let (nodes, arcs) = pipeline
                    .arena()
                    .map_or((0, 0), |arena| (arena.node_count(), arena.arc_count()));
                let run = RunStats {
                    threads: thread_count,
                    total_ms,
                    build_ms: stats.build_time.as_secs_f64() * 1e3,
                    patch_ms: stats.patch_time.as_secs_f64() * 1e3,
                    solve_ms: stats.solve_time.as_secs_f64() * 1e3,
                };
                println!(
                    "{{\"tasks\":{},\"buffers\":{},\"threads\":{},\"throughput\":\"{}\",\
                     \"iterations\":{},\"event_graph\":[{},{}],\"total_ms\":{:.1},\
                     \"build_ms\":{:.1},\"patch_ms\":{:.1},\"solve_ms\":{:.1},\
                     \"last_solve_ms\":{:.2},\"patched\":{},\"rebuilt_buffers\":{},\
                     \"reused_buffers\":{},\"completed\":true}}",
                    graph.task_count(),
                    graph.buffer_count(),
                    run.threads,
                    json_escape(&result.throughput.to_string()),
                    result.iterations,
                    nodes,
                    arcs,
                    run.total_ms,
                    run.build_ms,
                    run.patch_ms,
                    run.solve_ms,
                    stats.last_solve_time.as_secs_f64() * 1e3,
                    stats.patched,
                    stats.rebuilt_buffers,
                    stats.reused_buffers,
                );
                // Non-vacuous outcome: the generated graph is strongly
                // connected and serialised, so its throughput must be finite.
                if !matches!(result.throughput, Throughput::Finite(_)) {
                    eprintln!("smoke failed: expected a finite throughput");
                    std::process::exit(1);
                }
                // Determinism gate: the parallel solver must be bit-identical
                // to the serial one, so every sweep entry has to agree on the
                // outcome and the K-Iter trajectory length.
                let outcome = (
                    result.throughput.to_string(),
                    result.iterations,
                    nodes,
                    arcs,
                );
                if let Some((first_threads, first)) = &first_outcome {
                    if *first != outcome {
                        eprintln!(
                            "determinism gate failed: threads={thread_count} produced \
                             {outcome:?} but threads={first_threads} produced {first:?}"
                        );
                        std::process::exit(1);
                    }
                } else {
                    first_outcome = Some((thread_count, outcome));
                }
                runs.push(run);
            }
            Err(err) => {
                println!(
                    "{{\"tasks\":{},\"threads\":{},\"error\":\"{}\",\"total_ms\":{:.1},\
                     \"completed\":false}}",
                    graph.task_count(),
                    thread_count,
                    json_escape(&err.to_string()),
                    total_ms,
                );
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = check_path {
        check_against_baseline(&path, tasks, &runs);
    }
}

/// Compares the best measured solve split against the committed baseline
/// (the `"table":"scale_smoke"` JSON line whose `"tasks"` matches), failing
/// the process on a regression beyond [`CHECK_FACTOR`].
fn check_against_baseline(path: &str, tasks: usize, runs: &[RunStats]) {
    let contents = match std::fs::read_to_string(path) {
        Ok(contents) => contents,
        Err(err) => {
            eprintln!("check failed: cannot read {path}: {err}");
            std::process::exit(1);
        }
    };
    let Some(baseline_solve_ms) = baseline_solve_ms(&contents, tasks) else {
        eprintln!(
            "check failed: no \"table\":\"scale_smoke\" baseline for {tasks} tasks in {path}"
        );
        std::process::exit(1);
    };
    let best_solve_ms = runs
        .iter()
        .map(|run| run.solve_ms)
        .fold(f64::INFINITY, f64::min);
    let limit = baseline_solve_ms * CHECK_FACTOR;
    if best_solve_ms > limit {
        eprintln!(
            "perf-smoke gate failed: solve split {best_solve_ms:.1} ms exceeds \
             {CHECK_FACTOR}x the committed baseline ({baseline_solve_ms:.1} ms -> limit \
             {limit:.1} ms) at {tasks} tasks"
        );
        std::process::exit(1);
    }
    eprintln!(
        "perf-smoke gate ok: solve split {best_solve_ms:.1} ms within {CHECK_FACTOR}x of \
         the {baseline_solve_ms:.1} ms baseline"
    );
}

/// Minimal JSONL scan (the stand-in environment has no serde): finds the
/// `scale_smoke` line for `tasks` and extracts its `solve_ms` number.
fn baseline_solve_ms(contents: &str, tasks: usize) -> Option<f64> {
    contents
        .lines()
        .filter(|line| line.contains("\"table\":\"scale_smoke\""))
        .filter(|line| line.contains(&format!("\"tasks\":{tasks},")))
        .find_map(|line| extract_number(line, "solve_ms"))
}

fn extract_number(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
