//! Scalability smoke test: one 10k-task locality-bounded random CSDF graph
//! through K-Iter, printing a single JSON line with the outcome and the
//! pipeline's construction/solve time split.
//!
//! CI runs this under a hard `timeout` and asserts a non-vacuous (finite)
//! throughput, mirroring the JPEG2000 sized-buffer guard: any regression of
//! the event-graph construction path or the MCR solver at scale fails the
//! build instead of silently slowing it down.
//!
//! Run with `cargo run -p kiter-bench --bin scale_smoke --release`.
//! `KITER_SMOKE_TASKS` overrides the task count (default 10000).

use std::time::Instant;

use csdf::Throughput;
use csdf_generators::{random_graph, RandomGraphConfig};
use kiter_bench::json_escape;
use kperiodic::{kiter_with_pipeline, AnalysisOptions, EvaluationPipeline, KIterOptions};

fn main() {
    let tasks: usize = std::env::var("KITER_SMOKE_TASKS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(10_000);
    let graph = random_graph(&RandomGraphConfig::large(tasks), 0xD0C5)
        .expect("large random graph generates");

    let started = Instant::now();
    let mut pipeline = EvaluationPipeline::new(AnalysisOptions::default());
    let result = kiter_with_pipeline(&graph, &KIterOptions::default(), &mut pipeline);
    let total_ms = started.elapsed().as_secs_f64() * 1e3;

    match result {
        Ok(result) => {
            let stats = pipeline.stats();
            let (nodes, arcs) = pipeline
                .arena()
                .map(|arena| (arena.node_count(), arena.arc_count()))
                .unwrap_or((0, 0));
            println!(
                "{{\"tasks\":{},\"buffers\":{},\"throughput\":\"{}\",\"iterations\":{},\
                 \"event_graph\":[{},{}],\"total_ms\":{:.1},\"build_ms\":{:.1},\
                 \"patch_ms\":{:.1},\"solve_ms\":{:.1},\"patched\":{},\
                 \"rebuilt_buffers\":{},\"reused_buffers\":{},\"completed\":true}}",
                graph.task_count(),
                graph.buffer_count(),
                json_escape(&result.throughput.to_string()),
                result.iterations,
                nodes,
                arcs,
                total_ms,
                stats.build_time.as_secs_f64() * 1e3,
                stats.patch_time.as_secs_f64() * 1e3,
                stats.solve_time.as_secs_f64() * 1e3,
                stats.patched,
                stats.rebuilt_buffers,
                stats.reused_buffers,
            );
            // Non-vacuous outcome: the generated graph is strongly connected
            // and serialised, so its throughput must be finite.
            if !matches!(result.throughput, Throughput::Finite(_)) {
                eprintln!("smoke failed: expected a finite throughput");
                std::process::exit(1);
            }
        }
        Err(err) => {
            println!(
                "{{\"tasks\":{},\"error\":\"{}\",\"total_ms\":{:.1},\"completed\":false}}",
                graph.task_count(),
                json_escape(&err.to_string()),
                total_ms,
            );
            std::process::exit(1);
        }
    }
}
