//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The actual entry points are the binaries `table1` and `table2` (one row
//! per line, mirroring the layout of the paper's tables) and the Criterion
//! benches under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use csdf::{CsdfGraph, Throughput};
use csdf_baselines::{
    expansion_throughput, periodic_throughput, symbolic_execution_throughput, Budget,
    EvaluationStatus,
};
use kperiodic::{kiter_with_options, AnalysisError, KIterOptions};

/// The throughput-evaluation methods compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's K-Iter algorithm (exact).
    KIter,
    /// (C)SDF → HSDF expansion + maximum cycle ratio (exact) — the `[6]`
    /// column of Table 1.
    Expansion,
    /// Self-timed state-space exploration (exact) — the `[8]`/`[16]` columns.
    SymbolicExecution,
    /// 1-periodic scheduling (approximate) — the `[4]` column of Table 2.
    Periodic,
}

impl Method {
    /// Short label used in table headers.
    pub fn label(&self) -> &'static str {
        match self {
            Method::KIter => "K-Iter",
            Method::Expansion => "expansion[6]",
            Method::SymbolicExecution => "symbolic[8/16]",
            Method::Periodic => "periodic[4]",
        }
    }
}

/// Outcome of running one method on one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodOutcome {
    /// The method that ran.
    pub method: Method,
    /// Wall-clock time of the evaluation.
    pub duration: Duration,
    /// The throughput found, if any.
    pub throughput: Option<Throughput>,
    /// `true` when the method completed within its resource budget.
    pub completed: bool,
}

impl MethodOutcome {
    /// Formats the duration like the paper (milliseconds, or a budget
    /// marker).
    pub fn time_cell(&self) -> String {
        if self.completed {
            format!("{:.2} ms", self.duration.as_secs_f64() * 1e3)
        } else {
            "> budget".to_string()
        }
    }

    /// Formats the optimality of this method relative to an exact reference,
    /// like the percentage column of Table 2.
    pub fn optimality_cell(&self, reference: Option<Throughput>) -> String {
        match (self.throughput, reference) {
            (Some(Throughput::Finite(mine)), Some(Throughput::Finite(exact))) => {
                let ratio = 100.0 * mine.to_f64() / exact.to_f64().max(f64::MIN_POSITIVE);
                format!("{ratio:.0}%")
            }
            (Some(Throughput::Deadlocked), Some(Throughput::Deadlocked)) => "100%".to_string(),
            (Some(_), None) => "??%".to_string(),
            (None, _) if !self.completed => "-".to_string(),
            (None, _) => "N/S".to_string(),
            _ => "??%".to_string(),
        }
    }
}

/// Runs one evaluation method on a graph under a budget.
///
/// Errors from the analysis (event-graph limits, overflow) are folded into a
/// "did not complete" outcome so that a benchmark sweep never aborts.
pub fn run_method(graph: &CsdfGraph, method: Method, budget: &Budget) -> MethodOutcome {
    let start = Instant::now();
    let (throughput, completed) = match method {
        Method::KIter => match run_kiter(graph) {
            Ok(result) => (Some(result.throughput), true),
            Err(AnalysisError::EventGraphTooLarge { .. })
            | Err(AnalysisError::IterationLimitReached { .. }) => (None, false),
            Err(_) => (None, false),
        },
        Method::Expansion => match expansion_throughput(graph, budget) {
            Ok(result) => {
                let completed = result.status != EvaluationStatus::BudgetExhausted;
                (result.throughput, completed)
            }
            Err(_) => (None, false),
        },
        Method::SymbolicExecution => match symbolic_execution_throughput(graph, budget) {
            Ok(result) => {
                let completed = result.status != EvaluationStatus::BudgetExhausted;
                (result.throughput, completed)
            }
            Err(_) => (None, false),
        },
        Method::Periodic => match periodic_throughput(graph) {
            Ok(result) => (result.throughput, true),
            Err(_) => (None, false),
        },
    };
    MethodOutcome {
        method,
        duration: start.elapsed(),
        throughput,
        completed,
    }
}

fn run_kiter(graph: &CsdfGraph) -> Result<kperiodic::KIterResult, AnalysisError> {
    // Tighter event-graph limits than the library default: benchmark sweeps
    // must fail fast (reported as "> budget") on instances whose periodicity
    // vectors explode, instead of building multi-million-node event graphs.
    let options = KIterOptions {
        analysis: kperiodic::AnalysisOptions {
            limits: kperiodic::EventGraphLimits {
                max_nodes: 200_000,
                max_arcs: 2_000_000,
            },
            max_iterations: 64,
            ..kperiodic::AnalysisOptions::default()
        },
        ..KIterOptions::default()
    };
    kiter_with_options(graph, &options)
}

/// Aggregate statistics over a category of graphs (one row of Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoryRow {
    /// Category name.
    pub name: String,
    /// Number of graphs evaluated.
    pub graphs: usize,
    /// min/avg/max task count.
    pub tasks: (usize, usize, usize),
    /// min/avg/max buffer count.
    pub buffers: (usize, usize, usize),
    /// min/avg/max repetition-vector sum.
    pub repetition_sum: (u128, u128, u128),
    /// min/avg/max HSDF copy count `Σ_t q_t·φ_t` — the actor count of the
    /// expansion method's graph (the paper's Table 1 reports this growth as
    /// the reason the `[6]` column blows up on multi-rate categories). Equals
    /// `repetition_sum` exactly on the plain SDF categories (`φ_t = 1`).
    pub expansion_copies: (u128, u128, u128),
    /// Average wall-clock time per method (only over completed runs), plus
    /// the number of graphs that method failed to finish.
    pub averages: Vec<(Method, Duration, usize)>,
}

/// Computes the min/avg/max statistics and average method times for a set of
/// graphs (one Table-1 category).
pub fn category_row(
    name: &str,
    graphs: &[CsdfGraph],
    methods: &[Method],
    budget: &Budget,
) -> CategoryRow {
    let mut tasks = Vec::new();
    let mut buffers = Vec::new();
    let mut sums = Vec::new();
    let mut copies = Vec::new();
    let mut per_method: Vec<(Method, Vec<Duration>, usize)> =
        methods.iter().map(|&m| (m, Vec::new(), 0usize)).collect();
    for graph in graphs {
        tasks.push(graph.task_count());
        buffers.push(graph.buffer_count());
        sums.push(graph.repetition_vector().map_or(0, |q| q.sum()));
        copies.push(hsdf_copy_count(graph));
        for (method, times, failures) in &mut per_method {
            let outcome = run_method(graph, *method, budget);
            if outcome.completed {
                times.push(outcome.duration);
            } else {
                *failures += 1;
            }
        }
    }
    CategoryRow {
        name: name.to_string(),
        graphs: graphs.len(),
        tasks: min_avg_max(&tasks),
        buffers: min_avg_max(&buffers),
        repetition_sum: min_avg_max_u128(&sums),
        expansion_copies: min_avg_max_u128(&copies),
        averages: per_method
            .into_iter()
            .map(|(method, times, failures)| {
                let avg = if times.is_empty() {
                    Duration::ZERO
                } else {
                    times.iter().sum::<Duration>() / times.len() as u32
                };
                (method, avg, failures)
            })
            .collect(),
    }
}

/// Actor count of the HSDF expansion of `graph`, computed analytically as
/// `Σ_t q_t·φ_t` without building the expansion (inconsistent graphs count
/// 0). Kept in lock-step with the real expansion:
/// [`csdf::transform::expand_to_hsdf`]'s `copy_count()` returns exactly this
/// number (asserted in this crate's tests), so Table 1 can report the `[6]`
/// column's graph growth even for categories where materialising the
/// expansion would be slow.
pub fn hsdf_copy_count(graph: &CsdfGraph) -> u128 {
    let Ok(q) = graph.repetition_vector() else {
        return 0;
    };
    graph
        .tasks()
        .map(|(id, task)| u128::from(q.get(id)) * task.phase_count() as u128)
        .sum()
}

fn min_avg_max(values: &[usize]) -> (usize, usize, usize) {
    if values.is_empty() {
        return (0, 0, 0);
    }
    let min = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    let avg = values.iter().sum::<usize>() / values.len();
    (min, avg, max)
}

fn min_avg_max_u128(values: &[u128]) -> (u128, u128, u128) {
    if values.is_empty() {
        return (0, 0, 0);
    }
    let min = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    let avg = values.iter().sum::<u128>() / values.len() as u128;
    (min, avg, max)
}

/// Command-line options shared by the `table1`/`table2` binaries.
///
/// * `--json` — emit one JSON object per row (JSON Lines) instead of the
///   human-readable table, for committing reference numbers and for CI
///   assertions;
/// * `--only <substring>` — evaluate only rows whose name contains the
///   (case-insensitive) substring;
/// * `--section <name>` — evaluate only the named section of `table2`
///   (`no-buffer`, `sized` or `synthetic`).
#[derive(Debug, Clone, Default)]
pub struct TableArgs {
    /// Emit JSON Lines instead of the aligned text table.
    pub json: bool,
    /// Case-insensitive substring filter on row names.
    pub only: Option<String>,
    /// Section filter (`table2` only).
    pub section: Option<String>,
}

impl TableArgs {
    /// Parses the process arguments, ignoring anything unknown.
    pub fn parse() -> Self {
        let mut args = TableArgs::default();
        let mut iterator = std::env::args().skip(1);
        while let Some(argument) = iterator.next() {
            match argument.as_str() {
                "--json" => args.json = true,
                "--only" => args.only = iterator.next().map(|v| v.to_lowercase()),
                "--section" => args.section = iterator.next().map(|v| v.to_lowercase()),
                _ => {}
            }
        }
        args
    }

    /// Whether a row with this name passes the `--only` filter.
    pub fn wants(&self, name: &str) -> bool {
        self.only
            .as_deref()
            .map_or(true, |filter| name.to_lowercase().contains(filter))
    }

    /// Whether this section passes the `--section` filter.
    pub fn wants_section(&self, section: &str) -> bool {
        self.section
            .as_deref()
            .map_or(true, |filter| filter == section)
    }
}

/// Minimal JSON string escaping (the emitted names are plain ASCII, but stay
/// correct regardless).
pub fn json_escape(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for character in text.chars() {
        match character {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            control if (control as u32) < 0x20 => {
                escaped.push_str(&format!("\\u{:04x}", control as u32));
            }
            other => escaped.push(other),
        }
    }
    escaped
}

impl MethodOutcome {
    /// JSON fragment describing this outcome, e.g.
    /// `{"throughput":"1/42","time_ms":3.14,"completed":true}`.
    pub fn json_fragment(&self) -> String {
        let throughput = match self.throughput {
            Some(value) => format!("\"{}\"", json_escape(&value.to_string())),
            None => "null".to_string(),
        };
        format!(
            "{{\"throughput\":{},\"time_ms\":{:.3},\"completed\":{}}}",
            throughput,
            self.duration.as_secs_f64() * 1e3,
            self.completed
        )
    }
}

/// Number of graphs per generated category, overridable with the
/// `KITER_BENCH_GRAPHS` environment variable (the paper uses 100; the default
/// here keeps a full table run under a minute).
pub fn graphs_per_category() -> usize {
    std::env::var("KITER_BENCH_GRAPHS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    fn ring() -> CsdfGraph {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn run_method_reports_all_methods() {
        let g = ring();
        let budget = Budget::small();
        for method in [
            Method::KIter,
            Method::Expansion,
            Method::SymbolicExecution,
            Method::Periodic,
        ] {
            let outcome = run_method(&g, method, &budget);
            assert!(outcome.completed, "{method:?} should complete");
            assert!(outcome.throughput.is_some());
            assert!(!outcome.time_cell().is_empty());
        }
    }

    #[test]
    fn optimality_cell_formats() {
        let g = ring();
        let exact = run_method(&g, Method::KIter, &Budget::small());
        let periodic = run_method(&g, Method::Periodic, &Budget::small());
        assert_eq!(periodic.optimality_cell(exact.throughput), "100%");
    }

    #[test]
    fn category_row_aggregates() {
        let graphs = vec![ring(), ring()];
        let row = category_row("demo", &graphs, &[Method::KIter], &Budget::small());
        assert_eq!(row.graphs, 2);
        assert_eq!(row.tasks, (2, 2, 2));
        assert_eq!(row.averages.len(), 1);
        assert_eq!(row.averages[0].2, 0);
    }

    #[test]
    fn graphs_per_category_has_a_default() {
        assert!(graphs_per_category() >= 1);
    }

    #[test]
    fn analytic_copy_count_matches_the_real_expansion() {
        // Multi-rate CSDF: q = [3, 2] with 2 phases on `b` -> 3·1 + 2·2 = 7.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("a", 1);
        let y = b.add_task("b", vec![1, 1]);
        b.add_buffer(x, y, vec![2], vec![1, 2], 0);
        let multirate = b.build().unwrap();
        for graph in [ring(), multirate] {
            let expansion = csdf::transform::expand_to_hsdf(&graph).unwrap();
            assert_eq!(hsdf_copy_count(&graph), expansion.copy_count() as u128);
            assert_eq!(
                hsdf_copy_count(&graph),
                expansion.graph.task_count() as u128
            );
        }
    }
}
