//! Criterion bench regenerating the shape of the paper's Table 1: each SDF3
//! category is represented by one generated graph, evaluated by the three
//! optimal methods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf_baselines::Budget;
use csdf_generators::sdf3::{generate_category, Sdf3Category};
use kiter_bench::{run_method, Method};

fn bench_table1(c: &mut Criterion) {
    let budget = Budget::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for category in Sdf3Category::all() {
        let graphs = generate_category(category, 1, 0xDAC1).expect("generation succeeds");
        let graph = &graphs[0];
        for method in [Method::KIter, Method::Expansion, Method::SymbolicExecution] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), category.name()),
                graph,
                |b, graph| b.iter(|| run_method(graph, method, &budget)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
