//! Micro-benchmarks for the exact-arithmetic kernels behind the MCR solvers,
//! on *solver-shaped* operand distributions — the numbers the K-Iter hot
//! path actually reduces are products of small event-graph denominators
//! (`i_b · q_t`, phase counts, durations) times the running numerators of
//! Bellman–Ford / policy-iteration sums, not uniform random bit patterns.
//!
//! Three GCD kernels run head-to-head on a narrow (u64-range) and a wide
//! (> 64-bit) distribution:
//!
//! * `width` — the shipped `csdf::gcd_u128`: Euclid that drops from 128-bit
//!   library division to hardware 64-bit division as soon as operands fit;
//! * `euclid128` — the pre-PR-4 schoolbook loop, all divisions 128-bit;
//! * `stein` — a binary GCD, kept as the reference that motivated the
//!   experiment: on x86-64 its one-iteration-per-bit loop *loses* to
//!   hardware division on these distributions, which is why the shipped
//!   kernel is width-specialised Euclid rather than Stein.
//!
//! The second group measures the `Rational` fast lane: the i64 add/mul lane
//! and the unreduced accumulation helper against the reduce-per-step fold.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use csdf::{gcd_u128, Rational};

/// The pre-PR-4 schoolbook loop: every division 128-bit.
fn euclid_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Binary (Stein) GCD — the division-free alternative.
fn stein_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Solver-shaped operand pairs: smooth denominators (products of small
/// primes, like `i_b·q_t` and lcm-of-K values) scaled by pseudo-random
/// numerators of the magnitude Bellman–Ford distances reach. All pairs fit
/// `u64`; `widen` shifts them past 64 bits (integer-kernel circuit sums).
fn solver_shaped_operands(count: usize, widen: bool) -> Vec<(u128, u128)> {
    const SMOOTH: [u128; 12] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 36, 60, 120];
    let mut state = 0x5EED_CAFE_F00Du64 | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|_| {
            let numerator = (next() % 1_000_000) as u128;
            let denominator = SMOOTH[(next() % SMOOTH.len() as u64) as usize]
                * SMOOTH[(next() % SMOOTH.len() as u64) as usize];
            let pair = (
                numerator * denominator,
                denominator * SMOOTH[(next() % 12) as usize],
            );
            if widen {
                (pair.0 << 40 | 0xabcdef, pair.1 << 40 | 0x12345)
            } else {
                pair
            }
        })
        .collect()
}

type GcdKernel = fn(u128, u128) -> u128;

fn bench_gcd(c: &mut Criterion) {
    for (label, widen) in [("narrow", false), ("wide", true)] {
        let operands = solver_shaped_operands(4096, widen);
        let mut group = c.benchmark_group(format!("gcd_{label}"));
        let kernels: [(&str, GcdKernel); 3] = [
            ("width", gcd_u128),
            ("euclid128", euclid_u128),
            ("stein", stein_u128),
        ];
        for (name, kernel) in kernels {
            // Sanity: all kernels agree before being timed.
            for &(x, y) in &operands {
                assert_eq!(kernel(x, y), euclid_u128(x, y));
            }
            group.bench_function(name, |b| {
                b.iter(|| {
                    let mut acc = 0u128;
                    for &(x, y) in &operands {
                        acc ^= kernel(black_box(x), black_box(y));
                    }
                    acc
                });
            });
        }
        group.finish();
    }
}

/// The rational operations the scalar solver path leans on: additions and
/// multiplications of solver-shaped fractions (i64 fast lane), plus the
/// unreduced accumulation helper against the reduce-per-step fold.
fn bench_rational_ops(c: &mut Criterion) {
    let operands = solver_shaped_operands(512, false);
    let fractions: Vec<Rational> = operands
        .iter()
        .map(|&(n, d)| {
            Rational::new((n % 100_000) as i128, (d as i128).max(1)).expect("nonzero denominator")
        })
        .collect();
    let mut group = c.benchmark_group("rational");
    group.bench_function("add_chain", |b| {
        b.iter(|| {
            let mut acc = Rational::ZERO;
            for f in &fractions {
                acc = acc.checked_add(black_box(f)).expect("no overflow");
            }
            acc
        });
    });
    group.bench_function("sum_unreduced", |b| {
        b.iter(|| Rational::sum_unreduced(black_box(&fractions)).expect("no overflow"));
    });
    group.bench_function("mul_chain", |b| {
        b.iter(|| {
            let mut acc = Rational::ONE;
            for f in &fractions {
                if !f.is_zero() {
                    acc = Rational::new(f.numer().signum(), 1)
                        .unwrap()
                        .checked_mul(black_box(f))
                        .expect("no overflow");
                }
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gcd, bench_rational_ops);
criterion_main!(benches);
