//! Scalability sweep: K-Iter and the 1-periodic method as the task count of
//! random SDF graphs grows (supporting figure; the paper's LgTransient
//! category probes the same axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf_baselines::Budget;
use csdf_generators::{random_graph, RandomGraphConfig};
use kiter_bench::{run_method, Method};

fn bench_scalability(c: &mut Criterion) {
    let budget = Budget::default();
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for tasks in [10usize, 20, 40, 80, 160] {
        let config = RandomGraphConfig {
            tasks,
            extra_edges: tasks / 2,
            feedback_edges: 2,
            repetition_choices: vec![1, 2, 3, 4],
            max_phases: 2,
            duration_range: (1, 20),
            marking_factor: 2,
            serialize: true,
        };
        let graph = random_graph(&config, 0xCAFE).expect("generation succeeds");
        for method in [Method::KIter, Method::Periodic] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), tasks),
                &graph,
                |b, graph| b.iter(|| run_method(graph, method, &budget)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
