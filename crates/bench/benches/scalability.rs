//! Scalability sweep: K-Iter and the 1-periodic method as the task count of
//! random SDF graphs grows (supporting figure; the paper's `LgTransient`
//! category probes the same axis), extended to 10k+-task locality-bounded
//! random CSDF graphs with a construction-vs-patch split of the event-graph
//! work:
//!
//! * `event_graph/full/<n>` — a from-scratch [`EventGraph::build`] at a
//!   periodicity vector K-Iter reached after one update;
//! * `event_graph/patch/<n>` — one in-place [`EventGraphArena::apply_update`]
//!   between that vector and the unitary one (the arena ping-pongs between
//!   the two, so every measured iteration patches the same dirty set the
//!   K-Iter loop would).
//!
//! The two paths produce bit-identical ratio graphs (asserted here and
//! property-tested in `tests/properties.rs`), plus a `kiter_threads` group
//! sweeping the MCR solver's per-SCC worker pool over 1/2/4 threads at
//! 1k/10k tasks (identical results at every width, asserted per width).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf::TaskId;
use csdf_baselines::Budget;
use csdf_generators::{random_graph, RandomGraphConfig};
use kiter_bench::{run_method, Method};
use kperiodic::{
    kiter_with_pipeline, AnalysisOptions, EvaluationPipeline, EventGraph, EventGraphArena,
    EventGraphLimits, KIterOptions, PeriodicityVector,
};

fn bench_scalability(c: &mut Criterion) {
    let budget = Budget::default();
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for tasks in [10usize, 20, 40, 80, 160] {
        let config = RandomGraphConfig {
            tasks,
            extra_edges: tasks / 2,
            feedback_edges: 2,
            repetition_choices: vec![1, 2, 3, 4],
            max_phases: 2,
            duration_range: (1, 20),
            marking_factor: 2,
            serialize: true,
            locality: None,
        };
        let graph = random_graph(&config, 0xCAFE).expect("generation succeeds");
        for method in [Method::KIter, Method::Periodic] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), tasks),
                &graph,
                |b, graph| b.iter(|| run_method(graph, method, &budget)),
            );
        }
    }
    // Locality-bounded large graphs: only the exact methods that stay
    // tractable at this scale.
    for tasks in [1_000usize, 10_000] {
        let graph =
            random_graph(&RandomGraphConfig::large(tasks), 0xD0C5).expect("generation succeeds");
        for method in [Method::KIter, Method::Periodic] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), tasks),
                &graph,
                |b, graph| b.iter(|| run_method(graph, method, &budget)),
            );
        }
    }
    group.finish();
}

/// Thread sweep over the incremental K-Iter pipeline at 1k/10k tasks: the
/// MCR solver distributes independent cyclic strongly connected components
/// over `AnalysisOptions::threads` scoped workers (results byte-identical at
/// every width — asserted here per width against the single-thread run).
fn bench_kiter_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("kiter_threads");
    group.sample_size(10);
    for tasks in [1_000usize, 10_000] {
        let graph =
            random_graph(&RandomGraphConfig::large(tasks), 0xD0C5).expect("generation succeeds");
        let reference = {
            let mut pipeline = EvaluationPipeline::new(AnalysisOptions::default());
            kiter_with_pipeline(&graph, &KIterOptions::default(), &mut pipeline)
                .expect("k-iter completes")
        };
        for threads in [1usize, 2, 4] {
            let options = AnalysisOptions {
                threads,
                ..AnalysisOptions::default()
            };
            let mut pipeline = EvaluationPipeline::new(options);
            let result = kiter_with_pipeline(&graph, &KIterOptions::default(), &mut pipeline)
                .expect("k-iter completes");
            assert_eq!(result.throughput, reference.throughput);
            assert_eq!(result.iterations, reference.iterations);
            group.bench_with_input(
                BenchmarkId::new(format!("{threads}T"), tasks),
                &graph,
                |b, graph| {
                    b.iter(|| {
                        let mut pipeline = EvaluationPipeline::new(options);
                        kiter_with_pipeline(graph, &KIterOptions::default(), &mut pipeline)
                            .expect("k-iter completes")
                            .iterations
                    });
                },
            );
        }
    }
    group.finish();
}

/// Construction-vs-patch split: how much of a K-Iter iteration's event-graph
/// work the arena saves relative to a from-scratch rebuild.
fn bench_event_graph_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_graph");
    group.sample_size(10);
    let limits = EventGraphLimits::default();
    for tasks in [1_000usize, 10_000] {
        let graph =
            random_graph(&RandomGraphConfig::large(tasks), 0xD0C5).expect("generation succeeds");
        let q = graph.repetition_vector().expect("consistent");
        let base = PeriodicityVector::unitary(&graph);
        // A K-Iter-shaped update: raise the periodicity of a few scattered
        // tasks (a critical circuit touches a handful of tasks, not all).
        let mut target = base.clone();
        for index in 0..8 {
            let task = TaskId::new((index * tasks / 8 + 3) % tasks);
            target.raise(task, 4).expect("valid K");
        }
        let arena = EventGraphArena::build(&graph, &q, &base, &limits).expect("base arena builds");

        // Sanity: the patched arena is bit-identical to the scratch build.
        let mut patched = arena.clone();
        patched
            .apply_update(&graph, &target, None)
            .expect("patch succeeds");
        let scratch =
            EventGraph::build(&graph, &q, &target, &limits).expect("scratch build succeeds");
        assert_eq!(patched.ratio_graph(), scratch.ratio_graph());

        group.bench_with_input(BenchmarkId::new("full", tasks), &graph, |b, graph| {
            b.iter(|| EventGraph::build(graph, &q, &target, &limits).expect("builds"));
        });
        group.bench_with_input(BenchmarkId::new("patch", tasks), &graph, |b, graph| {
            let mut arena = arena.clone();
            let mut at_target = false;
            b.iter(|| {
                at_target = !at_target;
                let next = if at_target { &target } else { &base };
                arena
                    .apply_update(graph, next, None)
                    .expect("patch succeeds");
                arena.arc_count()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scalability,
    bench_kiter_threads,
    bench_event_graph_updates
);
criterion_main!(benches);
