//! Criterion bench regenerating the shape of the paper's Table 2 on the
//! small and medium industrial applications (the full sweep including the
//! largest graphs lives in the `table2` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf_baselines::Budget;
use csdf_generators::apps::{black_scholes, industrial_app, jpeg2000};
use csdf_generators::buffer_sized;
use kiter_bench::{run_method, Method};

fn bench_table2(c: &mut Criterion) {
    let budget = Budget::default();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for spec in [black_scholes(), jpeg2000()] {
        let graph = industrial_app(&spec).expect("generation succeeds");
        for method in [Method::KIter, Method::Periodic] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), spec.name),
                &graph,
                |b, graph| b.iter(|| run_method(graph, method, &budget)),
            );
        }
    }
    // Fixed-buffer-size variant (the bottom half of Table 2).
    let bounded = buffer_sized(
        &industrial_app(&black_scholes()).expect("generation succeeds"),
        2,
    )
    .expect("bounding succeeds");
    group.bench_with_input(
        BenchmarkId::new("K-Iter/fixed-buffers", "BlackScholes"),
        &bounded,
        |b, graph| b.iter(|| run_method(graph, Method::KIter, &budget)),
    );
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
