//! Micro-benchmark of the maximum-cycle-ratio solvers on event graphs of
//! growing size (the inner kernel of every K-Iter iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf_generators::{random_graph, RandomGraphConfig};
use kperiodic::{EventGraph, EventGraphLimits, PeriodicityVector};
use mcr::{maximum_cycle_mean, maximum_cycle_ratio};

fn bench_mcr(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcr_solvers");
    group.sample_size(10);
    for tasks in [10usize, 40, 160] {
        let config = RandomGraphConfig {
            tasks,
            extra_edges: tasks,
            feedback_edges: 3,
            repetition_choices: vec![1, 2, 3, 4],
            max_phases: 2,
            duration_range: (1, 50),
            marking_factor: 2,
            serialize: true,
        };
        let graph = random_graph(&config, 7).expect("generation succeeds");
        let q = graph.repetition_vector().expect("consistent");
        let k = PeriodicityVector::unitary(&graph);
        let event_graph =
            EventGraph::build(&graph, &q, &k, &EventGraphLimits::default()).expect("event graph");
        group.bench_with_input(
            BenchmarkId::new("parametric_ratio", tasks),
            event_graph.ratio_graph(),
            |b, ratio_graph| b.iter(|| maximum_cycle_ratio(ratio_graph).expect("solve")),
        );
        group.bench_with_input(
            BenchmarkId::new("karp_cycle_mean", tasks),
            event_graph.ratio_graph(),
            |b, ratio_graph| b.iter(|| maximum_cycle_mean(ratio_graph).expect("solve")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mcr);
criterion_main!(benches);
