//! Micro-benchmark of the maximum-cycle-ratio solvers on event graphs of
//! growing size (the inner kernel of every K-Iter iteration), head-to-head
//! across [`mcr::SolverChoice`]s, plus the buffer-sized JPEG2000 reproducer
//! whose infeasible event graphs made the parametric method run for minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf_generators::apps::{industrial_app, jpeg2000};
use csdf_generators::{buffer_sized, random_graph, RandomGraphConfig};
use kperiodic::{
    kiter_with_options, EventGraph, EventGraphLimits, KIterOptions, PeriodicityVector,
};
use mcr::{maximum_cycle_mean, maximum_cycle_ratio_with, RatioGraph, SolverChoice};

fn solver_choices() -> [(&'static str, SolverChoice); 3] {
    [
        ("parametric", SolverChoice::Parametric),
        ("howard", SolverChoice::Howard),
        ("auto", SolverChoice::Auto),
    ]
}

fn bench_mcr(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcr_solvers");
    group.sample_size(10);
    for tasks in [10usize, 40, 160] {
        let config = RandomGraphConfig {
            tasks,
            extra_edges: tasks,
            feedback_edges: 3,
            repetition_choices: vec![1, 2, 3, 4],
            max_phases: 2,
            duration_range: (1, 50),
            marking_factor: 2,
            serialize: true,
            locality: None,
        };
        let graph = random_graph(&config, 7).expect("generation succeeds");
        let q = graph.repetition_vector().expect("consistent");
        let k = PeriodicityVector::unitary(&graph);
        let event_graph =
            EventGraph::build(&graph, &q, &k, &EventGraphLimits::default()).expect("event graph");
        for (label, choice) in solver_choices() {
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_ratio"), tasks),
                event_graph.ratio_graph(),
                |b, ratio_graph| {
                    b.iter(|| maximum_cycle_ratio_with(ratio_graph, choice).expect("solve"));
                },
            );
        }
        // Integer vs scalar Howard kernel, on a long-lived solver (the
        // K-Iter-shaped usage): same results, different inner loops.
        for (label, integer) in [("howard_int_kernel", true), ("howard_scalar_kernel", false)] {
            let mut solver = mcr::Solver::new(SolverChoice::Howard).with_integer_kernel(integer);
            group.bench_with_input(
                BenchmarkId::new(label, tasks),
                event_graph.ratio_graph(),
                |b, ratio_graph| b.iter(|| solver.solve(ratio_graph).expect("solve")),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("karp_cycle_mean", tasks),
            event_graph.ratio_graph(),
            |b, ratio_graph| b.iter(|| maximum_cycle_mean(ratio_graph).expect("solve")),
        );
    }
    group.finish();
}

/// The pathological instance from the ROADMAP: the buffer-sized JPEG2000
/// application (sum(q) = 18129, capacity factor 2). Its early K-Iter
/// iterations produce *infeasible* event graphs on which the parametric
/// solver needs Θ(n) exact-rational Bellman–Ford rounds to expose the
/// non-positive-time circuit, while Howard's policy iteration finds it in a
/// few policy evaluations.
fn jpeg2000_sized_event_graphs() -> Vec<(&'static str, RatioGraph)> {
    let graph = industrial_app(&jpeg2000()).expect("generator");
    let sized = buffer_sized(&graph, 2).expect("bounded");
    let q = sized.repetition_vector().expect("consistent");

    let unitary = PeriodicityVector::unitary(&sized);
    let first = EventGraph::build(&sized, &q, &unitary, &EventGraphLimits::default())
        .expect("unitary event graph");

    // Let K-Iter itself produce the second periodicity vector (via its
    // recorded history), so the "grown" stage always benchmarks exactly the
    // event graph the real algorithm solves on its second iteration.
    let result = kiter_with_options(
        &sized,
        &KIterOptions {
            record_history: true,
            ..KIterOptions::default()
        },
    )
    .expect("kiter");
    let grown = result
        .history
        .get(1)
        .map(|iteration| iteration.periodicity.clone())
        .expect("sized JPEG2000 needs more than one K-Iter iteration");
    let second = EventGraph::build(&sized, &q, &grown, &EventGraphLimits::default())
        .expect("grown event graph");

    vec![
        ("unitary", first.ratio_graph().clone()),
        ("grown", second.ratio_graph().clone()),
    ]
}

fn bench_jpeg2000_sized(c: &mut Criterion) {
    let mut group = c.benchmark_group("jpeg2000_sized");
    group.sample_size(10);
    for (stage, ratio_graph) in jpeg2000_sized_event_graphs() {
        for (label, choice) in solver_choices() {
            if stage == "grown" && choice == SolverChoice::Parametric {
                // ~14 s per solve: benchmarking it would dominate the whole
                // suite. The unitary stage already captures the comparison.
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(label, stage),
                &ratio_graph,
                |b, ratio_graph| {
                    b.iter(|| maximum_cycle_ratio_with(ratio_graph, choice).expect("solve"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mcr, bench_jpeg2000_sized);
criterion_main!(benches);
