//! Ablation of the K-Iter design choices: the paper's critical-circuit lcm
//! update against jumping straight to the full repetition vector (the
//! "expansion-sized" extreme discussed in the paper's introduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf_generators::{random_graph, RandomGraphConfig};
use kperiodic::{kiter_with_options, KIterOptions, KUpdatePolicy};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_update_policy");
    group.sample_size(10);
    let config = RandomGraphConfig {
        tasks: 12,
        extra_edges: 6,
        feedback_edges: 3,
        repetition_choices: vec![2, 3, 4, 6, 8, 12],
        max_phases: 3,
        duration_range: (1, 10),
        marking_factor: 1,
        serialize: true,
        locality: None,
    };
    for seed in [1u64, 2, 3] {
        let graph = random_graph(&config, seed).expect("generation succeeds");
        for (label, policy) in [
            ("critical-circuit-lcm", KUpdatePolicy::CriticalCircuitLcm),
            ("full-repetition", KUpdatePolicy::FullRepetition),
        ] {
            let options = KIterOptions {
                update_policy: policy,
                ..KIterOptions::default()
            };
            group.bench_with_input(BenchmarkId::new(label, seed), &graph, |b, graph| {
                b.iter(|| kiter_with_options(graph, &options).expect("kiter"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
