//! Design-space-exploration benchmark: an 8-point uniform-slack capacity
//! sweep evaluated as 8 independent cold `optimal_throughput` calls versus
//! one `explore::ParetoSweep` over worker-owned `AnalysisSession`s (arena,
//! caches and solver scratch reused across the points; results bit-identical
//! by construction, asserted here once per graph).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use csdf::transform::bound_all_buffers;
use csdf::CsdfGraph;
use csdf_explore::{uniform_slack_capacity, ExploreOptions, ParetoSweep};
use csdf_generators::{apps, dsp};
use kperiodic::optimal_throughput;

const SLACKS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn cold_sweep(graph: &CsdfGraph) -> usize {
    SLACKS
        .iter()
        .map(|&slack| {
            let bounded =
                bound_all_buffers(graph, |_, buffer| uniform_slack_capacity(buffer, slack))
                    .expect("bounding succeeds");
            optimal_throughput(&bounded)
                .expect("evaluation succeeds")
                .iterations
        })
        .sum()
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);
    let applications: Vec<(&str, CsdfGraph)> = vec![
        ("modem", dsp::modem().expect("modem generates")),
        (
            "JPEG2000",
            apps::industrial_app(&apps::jpeg2000()).expect("JPEG2000 generates"),
        ),
    ];
    for (name, graph) in &applications {
        let sweep = ParetoSweep::uniform_slack(graph, &SLACKS).expect("sweep builds");
        // Pin bit-identity once per graph before timing anything.
        let outcome = sweep.run(&ExploreOptions::default()).expect("sweep runs");
        let cold: Vec<_> = SLACKS
            .iter()
            .map(|&slack| {
                let bounded =
                    bound_all_buffers(graph, |_, buffer| uniform_slack_capacity(buffer, slack))
                        .expect("bounding succeeds");
                optimal_throughput(&bounded).expect("evaluation succeeds")
            })
            .collect();
        assert!(outcome
            .points
            .iter()
            .zip(&cold)
            .all(|(point, cold)| &point.result == cold));

        group.bench_with_input(BenchmarkId::new("cold", name), graph, |b, graph| {
            b.iter(|| cold_sweep(graph));
        });
        for workers in [1usize, 4] {
            let options = ExploreOptions {
                workers,
                ..ExploreOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("session_x{workers}"), name),
                &sweep,
                |b, sweep| b.iter(|| sweep.run(&options).expect("sweep runs").points.len()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
