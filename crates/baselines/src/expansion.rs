//! Expansion-based throughput evaluation for (C)SDF graphs.
//!
//! This baseline follows the classical route of references [10] and [6] of
//! the paper: expand the (C)SDF graph into an equivalent Homogeneous SDF
//! graph (one node per phase firing inside a graph iteration), then compute
//! the maximum cycle ratio `Σ durations / Σ tokens` of that expansion. The
//! expansion size is `Σ_t q_t · φ_t` nodes, so the method degrades quickly
//! when repetition vectors grow — which is the effect Table 1 of the paper
//! measures.

use std::time::Instant;

use csdf::transform::expand_to_hsdf;
use csdf::{CsdfError, CsdfGraph, Rational, Throughput};
use mcr::{maximum_cycle_ratio, CycleRatioOutcome, NodeId, RatioGraph};

use crate::budget::Budget;
use crate::{EvaluationStatus, MethodResult};

/// Evaluates the maximum throughput of a (C)SDF graph through HSDF expansion
/// and maximum cycle ratio resolution.
///
/// # Errors
///
/// Returns the usual consistency / overflow errors.
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, Rational, Throughput};
/// use csdf_baselines::{expansion_throughput, Budget};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 1, 1, 0);
/// builder.add_sdf_buffer(b, a, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let result = expansion_throughput(&graph, &Budget::default())?;
/// assert_eq!(result.throughput(), Some(Throughput::Finite(Rational::new(1, 2)?)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expansion_throughput(graph: &CsdfGraph, budget: &Budget) -> Result<MethodResult, CsdfError> {
    let start = Instant::now();
    let repetition = graph.repetition_vector()?;
    let expansion_nodes: u128 = graph
        .tasks()
        .map(|(task_id, task)| repetition.get(task_id) as u128 * task.phase_count() as u128)
        .sum();
    if expansion_nodes > budget.max_events as u128 {
        return Ok(MethodResult {
            status: EvaluationStatus::BudgetExhausted,
            throughput: None,
            events: budget.max_events,
            states: 0,
            wall_time: start.elapsed(),
        });
    }

    let expansion = expand_to_hsdf(graph)?;
    if start.elapsed() > budget.max_wall_time {
        return Ok(MethodResult {
            status: EvaluationStatus::BudgetExhausted,
            throughput: None,
            events: expansion.graph.buffer_count() as u64,
            states: expansion.copy_count(),
            wall_time: start.elapsed(),
        });
    }

    // Build the ratio graph of the expansion: cost = firing duration of the
    // source copy, time = tokens on the HSDF edge.
    let mut ratio_graph = RatioGraph::new(expansion.graph.task_count());
    for (_, buffer) in expansion.graph.buffers() {
        let duration = expansion.graph.task(buffer.source()).duration(0);
        ratio_graph.add_arc(
            NodeId::new(buffer.source().index()),
            NodeId::new(buffer.target().index()),
            Rational::from_integer(duration as i128),
            Rational::from_integer(buffer.initial_tokens() as i128),
        );
    }

    let throughput = match maximum_cycle_ratio(&ratio_graph).map_err(|_| CsdfError::Overflow)? {
        CycleRatioOutcome::Acyclic | CycleRatioOutcome::NonPositive => Throughput::Unbounded,
        CycleRatioOutcome::Infinite { .. } => Throughput::Deadlocked,
        CycleRatioOutcome::Finite { ratio, .. } => {
            // The ratio is the period of one *graph iteration* of the HSDF
            // expansion, which corresponds to one iteration of the original
            // graph, so no further normalisation is required.
            Throughput::from_period(ratio)?
        }
    };

    Ok(MethodResult {
        status: EvaluationStatus::Exact,
        throughput: Some(throughput),
        events: expansion.graph.buffer_count() as u64,
        states: expansion.copy_count(),
        wall_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    #[test]
    fn multirate_ring_matches_symbolic_execution() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 2, 4);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let expansion = expansion_throughput(&g, &Budget::default()).unwrap();
        let symbolic = crate::symbolic_execution_throughput(&g, &Budget::default()).unwrap();
        assert_eq!(expansion.throughput(), symbolic.throughput());
        assert_eq!(expansion.status, EvaluationStatus::Exact);
    }

    #[test]
    fn deadlocked_graph_is_reported() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        let result = expansion_throughput(&g, &Budget::default()).unwrap();
        assert_eq!(result.throughput(), Some(Throughput::Deadlocked));
    }

    #[test]
    fn csdf_graphs_match_symbolic_execution() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![2, 1]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![1, 1], vec![2], 0);
        b.add_buffer(y, x, vec![2], vec![1, 1], 4);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let expansion = expansion_throughput(&g, &Budget::default()).unwrap();
        let symbolic = crate::symbolic_execution_throughput(&g, &Budget::default()).unwrap();
        assert_eq!(expansion.throughput(), symbolic.throughput());
        assert_eq!(expansion.status, EvaluationStatus::Exact);
    }

    #[test]
    fn huge_repetition_vectors_exhaust_the_budget() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 7919, 104729, 0);
        b.add_sdf_buffer(y, x, 104729, 7919, 104729 * 7919);
        let g = b.build().unwrap();
        let tiny = Budget {
            max_wall_time: std::time::Duration::from_millis(100),
            max_events: 1_000,
        };
        let result = expansion_throughput(&g, &tiny).unwrap();
        assert_eq!(result.status, EvaluationStatus::BudgetExhausted);
    }

    #[test]
    fn acyclic_sdf_is_limited_by_its_serialized_bottleneck() {
        // The expansion serialises tasks that have no self-loop (see
        // `expand_to_hsdf`), so an acyclic 3:2 rate change with unit durations
        // is bound by the consumer, which fires three times per iteration.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 3, 2, 0);
        let g = b.build().unwrap();
        let result = expansion_throughput(&g, &Budget::default()).unwrap();
        assert_eq!(
            result.throughput(),
            Some(Throughput::Finite(Rational::new(1, 3).unwrap()))
        );
    }
}
