//! The 1-periodic approximate baseline (reference [4] of the paper).
//!
//! A 1-periodic schedule fixes a single starting time and a period per task.
//! Computing its best throughput is fast (one MCRP on a small event graph)
//! but the result is only a lower bound of the maximum throughput — Table 2
//! of the paper reports how far off it can be (down to 0.1 % of the optimum
//! on synthetic graphs, or no solution at all).

use std::time::Instant;

use csdf::{CsdfGraph, Throughput};
use kperiodic::{evaluate_periodic, AnalysisError, AnalysisOptions, EvaluationOutcome};

use crate::{EvaluationStatus, MethodResult};

/// Evaluates the best throughput reachable by a 1-periodic schedule.
///
/// The result is a *lower bound* of the maximum throughput, reported with
/// [`EvaluationStatus::LowerBound`]. Graphs that admit no periodic schedule at
/// all (the paper's "N/S" cells) yield [`EvaluationStatus::NoSolution`].
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying fixed-K evaluation.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
/// use csdf_baselines::periodic_throughput;
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 2, 1, 0);
/// builder.add_sdf_buffer(b, a, 1, 2, 4);
/// builder.add_serializing_self_loop(a);
/// builder.add_serializing_self_loop(b);
/// let graph = builder.build()?;
///
/// let result = periodic_throughput(&graph)?;
/// assert!(result.throughput().is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn periodic_throughput(graph: &CsdfGraph) -> Result<MethodResult, AnalysisError> {
    periodic_throughput_with_options(graph, &AnalysisOptions::default())
}

/// Same as [`periodic_throughput`] with explicit analysis options.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying fixed-K evaluation.
pub fn periodic_throughput_with_options(
    graph: &CsdfGraph,
    options: &AnalysisOptions,
) -> Result<MethodResult, AnalysisError> {
    let start = Instant::now();
    let evaluation = evaluate_periodic(graph, options)?;
    let (status, throughput) = match evaluation.outcome {
        EvaluationOutcome::Feasible { throughput, .. } => {
            (EvaluationStatus::LowerBound, Some(throughput))
        }
        EvaluationOutcome::Infeasible { .. } => (EvaluationStatus::NoSolution, None),
        EvaluationOutcome::Unconstrained => (EvaluationStatus::Exact, Some(Throughput::Unbounded)),
    };
    Ok(MethodResult {
        status,
        throughput,
        events: evaluation.event_graph_size.1 as u64,
        states: evaluation.event_graph_size.0,
        wall_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::{CsdfGraphBuilder, Rational};

    #[test]
    fn periodic_bound_is_below_the_optimum() {
        // A multirate ring where the 1-periodic schedule is pessimistic.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 3, 1);
        b.add_sdf_buffer(y, x, 3, 2, 3);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let periodic = periodic_throughput(&g).unwrap();
        let optimal = kperiodic::optimal_throughput(&g).unwrap();
        if let (Some(bound), Throughput::Finite(_)) = (periodic.throughput(), optimal.throughput) {
            assert!(bound <= optimal.throughput);
        }
    }

    #[test]
    fn no_solution_is_reported_for_infeasible_periodic_instances() {
        // Deadlocked ring: not even a periodic schedule exists.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        let result = periodic_throughput(&g).unwrap();
        assert_eq!(result.status, EvaluationStatus::NoSolution);
        assert_eq!(result.throughput(), None);
    }

    #[test]
    fn exact_simple_case() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        let g = b.build().unwrap();
        let result = periodic_throughput(&g).unwrap();
        assert_eq!(
            result.throughput(),
            Some(Throughput::Finite(Rational::new(1, 2).unwrap()))
        );
    }
}
