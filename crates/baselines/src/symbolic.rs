//! Symbolic (state-space) throughput evaluation by as-soon-as-possible
//! self-timed execution.
//!
//! This is the exact baseline the paper compares against (references [8] for
//! SDF and [16] for CSDF, both implemented in the SDF3 tool): execute every
//! task as soon as its input buffers hold enough tokens, and detect when a
//! previously seen state recurs. The execution between two occurrences of the
//! same state is a cyclic pattern, so the throughput is the number of graph
//! iterations completed in the pattern divided by its duration.
//!
//! The state space of a consistent CSDF graph is finite (for bounded initial
//! markings), but its size is not polynomial in the graph description — which
//! is exactly why the paper's K-Iter outperforms this method by orders of
//! magnitude on multirate graphs. A [`Budget`] caps the exploration.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{Hash, Hasher};
use std::time::Instant;

use csdf::{CsdfError, CsdfGraph, Rational, Throughput};

use crate::budget::Budget;
use crate::{EvaluationStatus, MethodResult};

/// Evaluates the maximum throughput of `graph` by self-timed execution with
/// recurrence detection.
///
/// Tasks are executed "as soon as possible": a firing starts the moment every
/// input buffer holds enough tokens for its current phase (tokens are
/// consumed at the start of a firing and produced at its completion, as in
/// the paper's model). Firings of one task follow the cyclo-static phase
/// order; simultaneous firings of the same task are possible when tokens
/// allow it, so graphs should carry self-loop buffers if tasks must be
/// serialised (see [`csdf::transform::serialize_tasks`]).
///
/// # Errors
///
/// Returns [`CsdfError`] when the graph is inconsistent or overflows.
///
/// # Panics
///
/// Panics only if an internal scheduling invariant breaks (the completion
/// heap empties while firings are pending).
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, Rational, Throughput};
/// use csdf_baselines::{symbolic_execution_throughput, Budget};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let ping = builder.add_sdf_task("ping", 1);
/// let pong = builder.add_sdf_task("pong", 1);
/// builder.add_sdf_buffer(ping, pong, 1, 1, 0);
/// builder.add_sdf_buffer(pong, ping, 1, 1, 1);
/// let graph = builder.build()?;
///
/// let result = symbolic_execution_throughput(&graph, &Budget::default())?;
/// assert_eq!(result.throughput(), Some(Throughput::Finite(Rational::new(1, 2)?)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn symbolic_execution_throughput(
    graph: &CsdfGraph,
    budget: &Budget,
) -> Result<MethodResult, CsdfError> {
    let start_instant = Instant::now();
    let repetition = graph.repetition_vector()?;
    let task_count = graph.task_count();
    let buffer_count = graph.buffer_count();
    let phase_counts: Vec<usize> = graph.tasks().map(|(_, t)| t.phase_count()).collect();
    // Per-task number of *phase firings* in one graph iteration: q_t · ϕ(t).
    let firings_per_iteration: Vec<u64> = (0..task_count)
        .map(|index| repetition.get(csdf::TaskId::new(index)) * phase_counts[index] as u64)
        .collect();
    let reference_task = 0usize;
    let reference_quota = firings_per_iteration[reference_task];

    // Mutable simulation state.
    let mut tokens: Vec<i128> = graph
        .buffers()
        .map(|(_, b)| b.initial_tokens() as i128)
        .collect();
    let mut next_phase: Vec<usize> = vec![0; task_count];
    let mut started: Vec<u64> = vec![0; task_count];
    let mut completed: Vec<u64> = vec![0; task_count];
    // Min-heap of pending completions: (time, task, phase).
    let mut completions: BinaryHeap<std::cmp::Reverse<(u64, usize, usize)>> = BinaryHeap::new();

    // Recurrence detection: snapshots taken whenever the reference task
    // completes a whole multiple of its repetition count.
    let mut snapshots: HashMap<u64, (u64, u64)> = HashMap::new(); // hash -> (iteration, time)

    let mut now: u64 = 0;
    let mut events: u64 = 0;
    let mut states_stored = 0usize;

    loop {
        // Start every firing that can start at the current instant.
        loop {
            let mut started_any = false;
            for task_index in 0..task_count {
                loop {
                    let phase = next_phase[task_index];
                    if !can_fire(graph, &tokens, task_index, phase) {
                        break;
                    }
                    consume(graph, &mut tokens, task_index, phase);
                    let duration = graph.task(csdf::TaskId::new(task_index)).duration(phase);
                    completions.push(std::cmp::Reverse((now + duration, task_index, phase)));
                    next_phase[task_index] = (phase + 1) % phase_counts[task_index];
                    started[task_index] += 1;
                    started_any = true;
                    events += 1;
                    if events > budget.max_events {
                        return Ok(timeout_result(events, states_stored, start_instant));
                    }
                    // Defensive cap: a task with no inputs would fire forever
                    // at the same instant.
                    if started[task_index] - completed[task_index] > 1_000_000 {
                        return Ok(timeout_result(events, states_stored, start_instant));
                    }
                }
            }
            if !started_any {
                break;
            }
        }

        if completions.is_empty() {
            // Nothing runs and nothing can start: deadlock.
            return Ok(MethodResult {
                status: EvaluationStatus::Exact,
                throughput: Some(Throughput::Deadlocked),
                events,
                states: states_stored,
                wall_time: start_instant.elapsed(),
            });
        }

        if start_instant.elapsed() > budget.max_wall_time {
            return Ok(timeout_result(events, states_stored, start_instant));
        }

        // Advance to the next completion time and apply every completion
        // scheduled at that instant.
        let std::cmp::Reverse((completion_time, _, _)) =
            *completions.peek().expect("non-empty heap");
        now = completion_time;
        let mut reference_completed_boundary = false;
        while let Some(&std::cmp::Reverse((time, task_index, phase))) = completions.peek() {
            if time != now {
                break;
            }
            completions.pop();
            produce(graph, &mut tokens, task_index, phase);
            completed[task_index] += 1;
            events += 1;
            if task_index == reference_task && completed[task_index] % reference_quota == 0 {
                reference_completed_boundary = true;
            }
        }

        if reference_completed_boundary {
            let completed_iterations = completed[reference_task] / reference_quota;
            let hash = snapshot_hash(
                &tokens,
                &next_phase,
                &started,
                &completed,
                &firings_per_iteration,
                completed_iterations,
                &completions,
                now,
                buffer_count,
            );
            if let Some(&(previous_iteration, previous_time)) = snapshots.get(&hash) {
                let iteration_delta = completed_iterations - previous_iteration;
                let time_delta = now - previous_time;
                let throughput = if time_delta == 0 {
                    Throughput::Unbounded
                } else {
                    Throughput::Finite(
                        Rational::new(iteration_delta as i128, time_delta as i128)
                            .expect("time delta is non-zero"),
                    )
                };
                return Ok(MethodResult {
                    status: EvaluationStatus::Exact,
                    throughput: Some(throughput),
                    events,
                    states: states_stored,
                    wall_time: start_instant.elapsed(),
                });
            }
            snapshots.insert(hash, (completed_iterations, now));
            states_stored += 1;
        }
    }
}

fn can_fire(graph: &CsdfGraph, tokens: &[i128], task_index: usize, phase: usize) -> bool {
    let task_id = csdf::TaskId::new(task_index);
    graph.incoming(task_id).iter().all(|&buffer_id| {
        let buffer = graph.buffer(buffer_id);
        tokens[buffer_id.index()] >= buffer.consumption_at(phase) as i128
    })
}

fn consume(graph: &CsdfGraph, tokens: &mut [i128], task_index: usize, phase: usize) {
    let task_id = csdf::TaskId::new(task_index);
    for &buffer_id in graph.incoming(task_id) {
        let buffer = graph.buffer(buffer_id);
        tokens[buffer_id.index()] -= buffer.consumption_at(phase) as i128;
    }
}

fn produce(graph: &CsdfGraph, tokens: &mut [i128], task_index: usize, phase: usize) {
    let task_id = csdf::TaskId::new(task_index);
    for &buffer_id in graph.outgoing(task_id) {
        let buffer = graph.buffer(buffer_id);
        tokens[buffer_id.index()] += buffer.production_at(phase) as i128;
    }
}

#[allow(clippy::too_many_arguments)]
fn snapshot_hash(
    tokens: &[i128],
    next_phase: &[usize],
    started: &[u64],
    completed: &[u64],
    firings_per_iteration: &[u64],
    iterations: u64,
    completions: &BinaryHeap<std::cmp::Reverse<(u64, usize, usize)>>,
    now: u64,
    _buffer_count: usize,
) -> u64 {
    let mut hasher = DefaultHasher::new();
    tokens.hash(&mut hasher);
    next_phase.hash(&mut hasher);
    // Progress counters are normalised by the iteration index so the state is
    // position-independent.
    for (index, (&s, &c)) in started.iter().zip(completed.iter()).enumerate() {
        let quota = firings_per_iteration[index];
        let base = iterations.saturating_mul(quota);
        (s as i128 - base as i128).hash(&mut hasher);
        (c as i128 - base as i128).hash(&mut hasher);
    }
    // Remaining execution times, sorted for a canonical representation.
    let mut remaining: Vec<(u64, usize, usize)> = completions
        .iter()
        .map(|&std::cmp::Reverse((time, task, phase))| (time - now, task, phase))
        .collect();
    remaining.sort_unstable();
    remaining.hash(&mut hasher);
    hasher.finish()
}

fn timeout_result(events: u64, states: usize, start: Instant) -> MethodResult {
    MethodResult {
        status: EvaluationStatus::BudgetExhausted,
        throughput: None,
        events,
        states,
        wall_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::CsdfGraphBuilder;

    #[test]
    fn simple_ring_throughput() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 2);
        let y = b.add_sdf_task("y", 3);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 1);
        let g = b.build().unwrap();
        let result = symbolic_execution_throughput(&g, &Budget::default()).unwrap();
        assert_eq!(
            result.throughput(),
            Some(Throughput::Finite(Rational::new(1, 5).unwrap()))
        );
        assert_eq!(result.status, EvaluationStatus::Exact);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0);
        let g = b.build().unwrap();
        let result = symbolic_execution_throughput(&g, &Budget::default()).unwrap();
        assert_eq!(result.throughput(), Some(Throughput::Deadlocked));
    }

    #[test]
    fn multirate_graph_matches_hand_computation() {
        // x (duration 1) feeds y (duration 3) with 2 tokens per firing;
        // y fires twice per iteration, serialised: period 6. A feedback buffer
        // provides back-pressure so that the self-timed state space stays
        // finite (without it x would run ahead of y without bound).
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 3);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 2, 4);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let result = symbolic_execution_throughput(&g, &Budget::default()).unwrap();
        assert_eq!(
            result.throughput(),
            Some(Throughput::Finite(Rational::new(1, 6).unwrap()))
        );
    }

    #[test]
    fn cyclo_static_phases_are_respected() {
        // A 2-phase producer that emits [2, 0]; the consumer needs 1 token per
        // firing. Serialised tasks, ample feedback.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![2, 0], vec![1], 0);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let result = symbolic_execution_throughput(&g, &Budget::default()).unwrap();
        // One graph iteration = 1 firing of each x phase (2 time units) and 2
        // firings of y; x is the bottleneck: throughput 1/2.
        assert_eq!(
            result.throughput(),
            Some(Throughput::Finite(Rational::new(1, 2).unwrap()))
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 7919, 104729, 0);
        b.add_sdf_buffer(y, x, 104729, 7919, 104729 * 3);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let tiny = Budget {
            max_wall_time: std::time::Duration::from_millis(50),
            max_events: 10_000,
        };
        let result = symbolic_execution_throughput(&g, &tiny).unwrap();
        assert_eq!(result.status, EvaluationStatus::BudgetExhausted);
        assert_eq!(result.throughput(), None);
    }

    #[test]
    fn source_only_graph_hits_the_defensive_cap() {
        // A task with no inputs fires unboundedly at time zero; the simulator
        // must bail out instead of diverging.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        let g = b.build().unwrap();
        let result = symbolic_execution_throughput(&g, &Budget::small()).unwrap();
        assert_eq!(result.status, EvaluationStatus::BudgetExhausted);
    }
}
