//! # csdf-baselines — reference throughput evaluators
//!
//! The DAC 2016 K-Iter paper compares its algorithm against three families of
//! methods; this crate implements all of them so that the workspace can
//! regenerate the paper's Tables 1 and 2 and cross-validate the core
//! `kperiodic` crate:
//!
//! * [`symbolic_execution_throughput`] — the exact state-space method of SDF3
//!   (references [8] and [16]): as-soon-as-possible self-timed execution with
//!   recurrence detection;
//! * [`expansion_throughput`] — the exact SDF → HSDF expansion + maximum
//!   cycle ratio method (references [10] and [6]);
//! * [`periodic_throughput`] — the approximate 1-periodic method
//!   (reference [4]), a thin wrapper over `kperiodic::evaluate_periodic`.
//!
//! All evaluators return a [`MethodResult`] carrying the throughput, a
//! status ([`EvaluationStatus`]) and the work performed, under an explicit
//! [`Budget`] so that intractable instances surface as `BudgetExhausted`
//! instead of hanging — mirroring the "> 1 d" cells of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod expansion;
mod periodic;
mod symbolic;

use std::time::Duration;

use csdf::Throughput;

pub use budget::Budget;
pub use expansion::expansion_throughput;
pub use periodic::{periodic_throughput, periodic_throughput_with_options};
pub use symbolic::symbolic_execution_throughput;

/// How trustworthy the throughput reported by a baseline is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvaluationStatus {
    /// The method proved the value exactly.
    Exact,
    /// The method produced a feasible schedule, i.e. a lower bound of the
    /// maximum throughput (the periodic baseline).
    LowerBound,
    /// The method proved that it has no solution of its own class (e.g. no
    /// periodic schedule exists) — the paper's "N/S" entries.
    NoSolution,
    /// The method ran out of its [`Budget`] — the paper's "> 1 d" entries.
    BudgetExhausted,
}

/// Outcome of one baseline evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodResult {
    /// Confidence of the reported value.
    pub status: EvaluationStatus,
    /// The throughput found, when any.
    pub throughput: Option<Throughput>,
    /// Number of simulation events / constraints processed.
    pub events: u64,
    /// Number of states stored / expansion nodes created / event-graph nodes.
    pub states: usize,
    /// Wall-clock time spent.
    pub wall_time: Duration,
}

impl MethodResult {
    /// The throughput found, when any.
    pub fn throughput(&self) -> Option<Throughput> {
        self.throughput
    }

    /// Returns `true` when the method finished within its budget (whether or
    /// not it found a solution).
    pub fn completed(&self) -> bool {
        self.status != EvaluationStatus::BudgetExhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csdf::{CsdfGraphBuilder, Rational};

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MethodResult>();
        assert_send_sync::<EvaluationStatus>();
        assert_send_sync::<Budget>();
    }

    #[test]
    fn all_three_methods_agree_on_a_simple_ring() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 3);
        let y = b.add_sdf_task("y", 4);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 2);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        // The ring cycle allows one iteration every 7/2 time units, but the
        // serialised slow task y caps the rate at one firing every 4.
        let expected = Some(Throughput::Finite(Rational::new(1, 4).unwrap()));
        assert_eq!(
            symbolic_execution_throughput(&g, &Budget::default())
                .unwrap()
                .throughput(),
            expected
        );
        assert_eq!(
            expansion_throughput(&g, &Budget::default())
                .unwrap()
                .throughput(),
            expected
        );
        let kiter = kperiodic::optimal_throughput(&g).unwrap();
        assert_eq!(Some(kiter.throughput), expected);
    }
}
