//! Resource budgets for the baseline evaluators.
//!
//! The paper reports "> 1 d" (more than a day) and "N/S" (no solution) cells
//! for the state-space and periodic baselines on the hardest benchmarks. This
//! workspace reproduces those cells with explicit budgets: a baseline that
//! exhausts its budget reports [`BudgetExhausted`](crate::EvaluationStatus::BudgetExhausted)
//! instead of blocking the whole experiment for a day.

use std::time::Duration;

/// Resource limits applied to a baseline evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum wall-clock time the evaluation may spend.
    pub max_wall_time: Duration,
    /// Maximum number of simulation events (firing starts and completions)
    /// or expansion nodes the evaluation may process.
    pub max_events: u64,
}

impl Budget {
    /// A budget suitable for unit tests and small graphs.
    pub fn small() -> Self {
        Budget {
            max_wall_time: Duration::from_millis(500),
            max_events: 200_000,
        }
    }

    /// A budget suitable for benchmark runs (a few seconds per instance).
    pub fn benchmark() -> Self {
        Budget {
            max_wall_time: Duration::from_secs(10),
            max_events: 50_000_000,
        }
    }

    /// An effectively unlimited budget (use with care).
    pub fn unlimited() -> Self {
        Budget {
            max_wall_time: Duration::from_secs(u64::MAX / 4),
            max_events: u64::MAX,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_wall_time: Duration::from_secs(2),
            max_events: 5_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        assert!(Budget::small().max_events < Budget::default().max_events);
        assert!(Budget::default().max_events < Budget::benchmark().max_events);
        assert!(Budget::benchmark().max_events < Budget::unlimited().max_events);
        assert!(Budget::small().max_wall_time < Budget::benchmark().max_wall_time);
    }
}
