//! Buffers (channels) of a cyclo-static dataflow graph.

use std::fmt;

use crate::rational::gcd_u64;
use crate::task::TaskId;

/// Index of a buffer within a [`crate::CsdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub(crate) usize);

impl BufferId {
    /// Creates a buffer id from a raw index.
    pub fn new(index: usize) -> Self {
        BufferId(index)
    }

    /// The raw dense index of this buffer.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A FIFO buffer `b = (t, t')` carrying tokens from a producer task to a
/// consumer task.
///
/// `production[p]` tokens are written at the end of each execution of the
/// producer's phase `p`; `consumption[p']` tokens are read before each
/// execution of the consumer's phase `p'`. `initial_tokens` is the marking
/// `M0(b)`.
///
/// The paper's Figure 1 example — a buffer with production `[2,3,1]`,
/// consumption `[2,5]` and empty marking — is reproduced in the unit tests of
/// this module.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Buffer {
    source: TaskId,
    target: TaskId,
    production: Vec<u64>,
    consumption: Vec<u64>,
    initial_tokens: u64,
}

impl Buffer {
    /// Creates a buffer between two tasks.
    ///
    /// The rate vectors are validated against the task phase counts by the
    /// [`crate::CsdfGraphBuilder`]; this constructor only checks that neither
    /// vector is empty.
    ///
    /// # Panics
    ///
    /// Panics if `production` or `consumption` is empty.
    pub fn new(
        source: TaskId,
        target: TaskId,
        production: Vec<u64>,
        consumption: Vec<u64>,
        initial_tokens: u64,
    ) -> Self {
        assert!(!production.is_empty(), "production rates must not be empty");
        assert!(
            !consumption.is_empty(),
            "consumption rates must not be empty"
        );
        Buffer {
            source,
            target,
            production,
            consumption,
            initial_tokens,
        }
    }

    /// The producing task `t`.
    pub fn source(&self) -> TaskId {
        self.source
    }

    /// The consuming task `t'`.
    pub fn target(&self) -> TaskId {
        self.target
    }

    /// Per-phase production rates `in_b`.
    pub fn production(&self) -> &[u64] {
        &self.production
    }

    /// Per-phase consumption rates `out_b`.
    pub fn consumption(&self) -> &[u64] {
        &self.consumption
    }

    /// Tokens produced by the producer phase with 0-based index `phase`.
    pub fn production_at(&self, phase: usize) -> u64 {
        self.production[phase]
    }

    /// Tokens consumed by the consumer phase with 0-based index `phase`.
    pub fn consumption_at(&self, phase: usize) -> u64 {
        self.consumption[phase]
    }

    /// Initial marking `M0(b)`.
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Replaces the initial marking `M0(b)` — the mutation primitive behind
    /// [`crate::CsdfGraph::set_initial_tokens`].
    pub(crate) fn set_initial_tokens(&mut self, tokens: u64) {
        self.initial_tokens = tokens;
    }

    /// Returns `true` when `other` is the *reverse* of this buffer: the
    /// endpoints swapped and the rate vectors mirrored. This is the shape of
    /// the back-pressure buffer that models a bounded capacity (see
    /// [`crate::transform::bound_buffers`]); the initial markings are
    /// unconstrained, since the reverse marking encodes the capacity slack.
    pub fn is_reverse_of(&self, other: &Buffer) -> bool {
        self.source == other.target
            && self.target == other.source
            && self.production == other.consumption
            && self.consumption == other.production
    }

    /// Total tokens `i_b` written during one full iteration of the producer.
    pub fn total_production(&self) -> u64 {
        self.production.iter().sum()
    }

    /// Total tokens `o_b` read during one full iteration of the consumer.
    pub fn total_consumption(&self) -> u64 {
        self.consumption.iter().sum()
    }

    /// `gcd(i_b, o_b)`, written `gcd_a` in the paper; used by the Theorem-2
    /// constraint strengthening.
    pub fn rate_gcd(&self) -> u64 {
        gcd_u64(self.total_production(), self.total_consumption())
    }

    /// Returns `true` when the buffer connects a task to itself.
    pub fn is_self_loop(&self) -> bool {
        self.source == self.target
    }

    /// Cumulative tokens produced into this buffer at the completion of the
    /// producer phase with 0-based index `phase` of iteration `n` (1-based):
    /// `Ia⟨t_{phase+1}, n⟩` of the paper.
    pub fn cumulative_production(&self, phase: usize, n: u64) -> u64 {
        let within: u64 = self.production[..=phase].iter().sum();
        within + (n - 1) * self.total_production()
    }

    /// Cumulative tokens consumed from this buffer at the completion of the
    /// consumer phase with 0-based index `phase` of iteration `n` (1-based):
    /// `Oa⟨t'_{phase+1}, n⟩` of the paper.
    pub fn cumulative_consumption(&self, phase: usize, n: u64) -> u64 {
        let within: u64 = self.consumption[..=phase].iter().sum();
        within + (n - 1) * self.total_consumption()
    }
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -{:?}/{:?}[{}]-> {}",
            self.source, self.production, self.consumption, self.initial_tokens, self.target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_buffer() -> Buffer {
        // Paper Figure 1: in_b = [2,3,1], out_b = [2,5], M0 = 0.
        Buffer::new(TaskId::new(0), TaskId::new(1), vec![2, 3, 1], vec![2, 5], 0)
    }

    #[test]
    fn paper_figure1() {
        let b = figure1_buffer();
        assert_eq!(b.total_production(), 6);
        assert_eq!(b.total_consumption(), 7);
        assert_eq!(b.rate_gcd(), 1);
        assert_eq!(b.initial_tokens(), 0);
        assert!(!b.is_self_loop());
    }

    #[test]
    fn cumulative_counters_match_paper_example() {
        // The paper checks that ⟨t'_2, 1⟩ may complete at the completion of
        // ⟨t_1, 2⟩ because M0 + Ia⟨t_1,2⟩ − Oa⟨t'_2,1⟩ = 0 + 8 − 7 ≥ 0.
        let b = figure1_buffer();
        assert_eq!(b.cumulative_production(0, 2), 8);
        assert_eq!(b.cumulative_consumption(1, 1), 7);
        assert_eq!(b.cumulative_production(2, 1), 6);
        assert_eq!(b.cumulative_consumption(0, 3), 2 + 2 * 7);
    }

    #[test]
    fn accessors() {
        let b = figure1_buffer();
        assert_eq!(b.source().index(), 0);
        assert_eq!(b.target().index(), 1);
        assert_eq!(b.production(), &[2, 3, 1]);
        assert_eq!(b.consumption(), &[2, 5]);
        assert_eq!(b.production_at(1), 3);
        assert_eq!(b.consumption_at(1), 5);
    }

    #[test]
    fn self_loop_detection() {
        let b = Buffer::new(TaskId::new(3), TaskId::new(3), vec![1], vec![1], 1);
        assert!(b.is_self_loop());
    }

    #[test]
    #[should_panic(expected = "production rates")]
    fn empty_production_panics() {
        let _ = Buffer::new(TaskId::new(0), TaskId::new(1), vec![], vec![1], 0);
    }

    #[test]
    fn buffer_id_roundtrip() {
        let id = BufferId::new(2);
        assert_eq!(id.index(), 2);
        assert_eq!(id.to_string(), "b2");
    }
}
