//! Error types shared by the CSDF model crate.

use std::fmt;

use crate::rational::RationalError;

/// Names locating a buffer in error messages and diagnostics: the buffer
/// index plus the *names* of its endpoint tasks, so a consumer never has to
/// map bare indices back to the model by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferRef {
    /// Index of the buffer in its graph.
    pub index: usize,
    /// Name of the producing task.
    pub source: String,
    /// Name of the consuming task.
    pub target: String,
}

impl BufferRef {
    /// Builds a reference from an index and the endpoint task names.
    pub fn new(index: usize, source: impl Into<String>, target: impl Into<String>) -> BufferRef {
        BufferRef {
            index,
            source: source.into(),
            target: target.into(),
        }
    }
}

impl fmt::Display for BufferRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer {} (`{}` -> `{}`)",
            self.index, self.source, self.target
        )
    }
}

/// Errors raised while constructing or analysing a CSDF graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsdfError {
    /// A task name was used twice in a builder.
    DuplicateTaskName(String),
    /// A task was referenced that does not exist in the graph.
    UnknownTask(String),
    /// A task was declared with zero phases.
    EmptyPhases(String),
    /// A buffer rate vector length does not match the task phase count.
    RateLengthMismatch {
        /// Name of the offending task.
        task: String,
        /// Number of phases declared for the task.
        phases: usize,
        /// Length of the rate vector attached to the buffer.
        rate_len: usize,
    },
    /// A buffer produces or consumes zero tokens over a full iteration.
    ZeroRateBuffer {
        /// The offending buffer.
        buffer: BufferRef,
    },
    /// The graph is not consistent: no repetition vector exists.
    Inconsistent {
        /// The buffer whose balance equation is violated.
        buffer: BufferRef,
    },
    /// The graph contains no tasks.
    EmptyGraph,
    /// An arithmetic overflow occurred (rates or repetition vector too large).
    Overflow,
    /// A task id was out of range for this graph.
    TaskIndexOutOfRange(usize),
    /// A buffer id was out of range for this graph.
    BufferIndexOutOfRange(usize),
    /// A buffer capacity is too small to hold its initial tokens.
    CapacityBelowMarking {
        /// The offending buffer.
        buffer: BufferRef,
        /// Requested capacity.
        capacity: u64,
        /// Initial tokens already stored.
        marking: u64,
    },
    /// The same buffer was given more than one capacity in a single
    /// `bound_buffers` call (each duplicate would add its own reverse buffer
    /// and silently over-constrain the graph).
    DuplicateBufferCapacity {
        /// The buffer that appeared more than once.
        buffer: BufferRef,
    },
    /// A capacity assignment over a bounded design did not line up with the
    /// design's forward/reverse pairing: the named buffer either has no
    /// reverse (back-pressure) buffer, or is bounded but was missing from
    /// the assignment.
    MissingBufferCapacity {
        /// The buffer without a usable capacity assignment.
        buffer: BufferRef,
    },
    /// A capacity mutation named a buffer pair that is not a
    /// forward/reverse pair (the reverse buffer must have the endpoints
    /// swapped and the rate vectors mirrored).
    NotAReverseBuffer {
        /// The buffer whose capacity was being set.
        forward: BufferRef,
        /// The buffer that was claimed to be its reverse.
        reverse: BufferRef,
    },
    /// The requested periodicity vector has the wrong length or a zero entry.
    InvalidPeriodicityVector {
        /// Number of tasks in the graph.
        expected: usize,
        /// Length of the provided vector.
        actual: usize,
    },
    /// A zero entry was found in a periodicity vector for the given task.
    ZeroPeriodicity {
        /// Index of the task with the zero entry.
        task: usize,
        /// Name of the task, when the failing call had the graph at hand.
        name: Option<String>,
    },
    /// Wrapper for rational arithmetic failures.
    Rational(RationalError),
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for CsdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsdfError::DuplicateTaskName(name) => write!(f, "duplicate task name `{name}`"),
            CsdfError::UnknownTask(name) => write!(f, "unknown task `{name}`"),
            CsdfError::EmptyPhases(name) => write!(f, "task `{name}` has zero phases"),
            CsdfError::RateLengthMismatch {
                task,
                phases,
                rate_len,
            } => write!(
                f,
                "rate vector of length {rate_len} attached to task `{task}` which has {phases} phases"
            ),
            CsdfError::ZeroRateBuffer { buffer } => {
                write!(f, "{buffer} produces or consumes zero tokens per iteration")
            }
            CsdfError::Inconsistent { buffer } => {
                write!(f, "graph is inconsistent: balance equation violated on {buffer}")
            }
            CsdfError::EmptyGraph => write!(f, "graph contains no tasks"),
            CsdfError::Overflow => write!(f, "arithmetic overflow in graph analysis"),
            CsdfError::TaskIndexOutOfRange(index) => write!(f, "task index {index} out of range"),
            CsdfError::BufferIndexOutOfRange(index) => {
                write!(f, "buffer index {index} out of range")
            }
            CsdfError::CapacityBelowMarking {
                buffer,
                capacity,
                marking,
            } => write!(
                f,
                "{buffer} capacity {capacity} is smaller than its initial marking {marking}"
            ),
            CsdfError::DuplicateBufferCapacity { buffer } => {
                write!(f, "{buffer} was assigned more than one capacity")
            }
            CsdfError::MissingBufferCapacity { buffer } => write!(
                f,
                "{buffer} has no usable capacity assignment (unbounded, or bounded but missing from the list)"
            ),
            CsdfError::NotAReverseBuffer { forward, reverse } => write!(
                f,
                "{reverse} is not the reverse of {forward} (endpoints swapped, rates mirrored)"
            ),
            CsdfError::InvalidPeriodicityVector { expected, actual } => write!(
                f,
                "periodicity vector has length {actual}, expected {expected}"
            ),
            CsdfError::ZeroPeriodicity { task, name } => match name {
                Some(name) => write!(
                    f,
                    "periodicity vector entry for task `{name}` (index {task}) is zero"
                ),
                None => write!(f, "periodicity vector entry for task {task} is zero"),
            },
            CsdfError::Rational(err) => write!(f, "{err}"),
            CsdfError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsdfError::Rational(err) => Some(err),
            _ => None,
        }
    }
}

impl From<RationalError> for CsdfError {
    fn from(err: RationalError) -> Self {
        CsdfError::Rational(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CsdfError::RateLengthMismatch {
            task: "fft".to_string(),
            phases: 3,
            rate_len: 2,
        };
        let text = err.to_string();
        assert!(text.contains("fft"));
        assert!(text.contains('3'));
        assert!(text.contains('2'));
    }

    #[test]
    fn rational_errors_convert() {
        let err: CsdfError = RationalError::Overflow.into();
        assert!(matches!(err, CsdfError::Rational(RationalError::Overflow)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn buffer_errors_name_both_endpoints() {
        let err = CsdfError::Inconsistent {
            buffer: BufferRef::new(3, "src", "dst"),
        };
        let text = err.to_string();
        assert!(text.contains("buffer 3"));
        assert!(text.contains("`src`"));
        assert!(text.contains("`dst`"));
    }

    #[test]
    fn zero_periodicity_prefers_the_task_name() {
        let named = CsdfError::ZeroPeriodicity {
            task: 2,
            name: Some("fft".to_string()),
        };
        assert!(named.to_string().contains("`fft`"));
        let anonymous = CsdfError::ZeroPeriodicity {
            task: 2,
            name: None,
        };
        assert!(anonymous.to_string().contains("task 2"));
    }

    #[test]
    fn parse_error_reports_line() {
        let err = CsdfError::Parse {
            line: 7,
            message: "expected `->`".to_string(),
        };
        assert!(err.to_string().contains("line 7"));
    }
}
