//! Exact rational arithmetic used for throughputs, periods and cycle ratios.
//!
//! All analyses in this workspace compare periods and throughputs *exactly*;
//! floating point would make the Theorem-4 optimality test of the K-Iter
//! algorithm unreliable. [`Rational`] is a reduced fraction of two `i128`
//! values with checked arithmetic: overflow is reported through
//! [`RationalError`] instead of panicking or wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Error raised by checked rational constructors and arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RationalError {
    /// The denominator of a fraction was zero.
    ZeroDenominator,
    /// An intermediate product or sum exceeded the `i128` range.
    Overflow,
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::ZeroDenominator => write!(f, "zero denominator in rational"),
            RationalError::Overflow => write!(f, "rational arithmetic overflow"),
        }
    }
}

impl std::error::Error for RationalError {}

/// Greatest common divisor of two non-negative `i128` values.
///
/// `gcd_i128(0, 0) == 0` by convention.
pub fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Greatest common divisor of two `u64` values (`gcd_u64(0, 0) == 0`).
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two `u64` values with overflow checking.
///
/// # Errors
///
/// Returns [`RationalError::Overflow`] if the result does not fit in `u64`.
pub fn lcm_u64(a: u64, b: u64) -> Result<u64, RationalError> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd_u64(a, b);
    (a / g).checked_mul(b).ok_or(RationalError::Overflow)
}

/// An exact, always-reduced fraction `num / den` with `den > 0`.
///
/// # Examples
///
/// ```
/// use csdf::Rational;
///
/// let a = Rational::new(3, 4)?;
/// let b = Rational::new(1, 4)?;
/// assert_eq!((a + b)?, Rational::from_integer(1));
/// assert!(a > b);
/// # Ok::<(), csdf::RationalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a reduced rational from a numerator and a denominator.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::ZeroDenominator`] if `den == 0`.
    pub fn new(num: i128, den: i128) -> Result<Self, RationalError> {
        if den == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        Ok(Self::reduced(num, den))
    }

    /// Creates a rational from an integer value.
    pub fn from_integer(value: i128) -> Self {
        Rational { num: value, den: 1 }
    }

    fn reduced(num: i128, den: i128) -> Self {
        debug_assert!(den != 0);
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let g = gcd_i128(num, den);
        Rational {
            num: sign * (num / g).abs(),
            den: (den / g).abs(),
        }
    }

    /// Numerator of the reduced fraction (carries the sign).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced fraction (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::ZeroDenominator`] when inverting zero.
    pub fn recip(&self) -> Result<Rational, RationalError> {
        Rational::new(self.den, self.num)
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_add(&self, other: &Rational) -> Result<Rational, RationalError> {
        let g = gcd_i128(self.den, other.den);
        let lhs_scale = other.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| {
                other
                    .num
                    .checked_mul(rhs_scale)
                    .and_then(|b| a.checked_add(b))
            })
            .ok_or(RationalError::Overflow)?;
        let den = self
            .den
            .checked_mul(lhs_scale)
            .ok_or(RationalError::Overflow)?;
        Ok(Self::reduced(num, den))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_sub(&self, other: &Rational) -> Result<Rational, RationalError> {
        self.checked_add(&other.checked_neg()?)
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] when negating `i128::MIN`.
    pub fn checked_neg(&self) -> Result<Rational, RationalError> {
        let num = self.num.checked_neg().ok_or(RationalError::Overflow)?;
        Ok(Rational { num, den: self.den })
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_mul(&self, other: &Rational) -> Result<Rational, RationalError> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd_i128(self.num, other.den);
        let g2 = gcd_i128(other.num, self.den);
        let (a, d) = (self.num / g1, other.den / g1);
        let (c, b) = (other.num / g2, self.den / g2);
        let num = a.checked_mul(c).ok_or(RationalError::Overflow)?;
        let den = b.checked_mul(d).ok_or(RationalError::Overflow)?;
        Ok(Self::reduced(num, den))
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::ZeroDenominator`] when dividing by zero and
    /// [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_div(&self, other: &Rational) -> Result<Rational, RationalError> {
        self.checked_mul(&other.recip()?)
    }

    /// Returns the smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Approximate `f64` value, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_integer(value as i128)
    }
}

impl From<u64> for Rational {
    fn from(value: u64) -> Self {
        Rational::from_integer(value as i128)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b and c/d by comparing a*d and c*b; reduce first to limit
        // the magnitude of the products, then fall back to f64 ordering only
        // if i128 overflows (which cannot happen after reduction because both
        // fractions fit in i128 and share no common factors > 1 with the
        // opposite denominator in the common case; the checked path keeps us
        // honest anyway).
        let lhs = self.num.checked_mul(other.den);
        let rhs = other.num.checked_mul(self.den);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

// Operator impls return `Result` through the checked methods; panicking
// operators are intentionally not provided for `Rational` itself. For
// ergonomic in-crate use, `Add`/`Sub`/`Mul`/`Div` are implemented returning
// `Result`.

impl Add for Rational {
    type Output = Result<Rational, RationalError>;
    fn add(self, rhs: Rational) -> Self::Output {
        self.checked_add(&rhs)
    }
}

impl Sub for Rational {
    type Output = Result<Rational, RationalError>;
    fn sub(self, rhs: Rational) -> Self::Output {
        self.checked_sub(&rhs)
    }
}

impl Mul for Rational {
    type Output = Result<Rational, RationalError>;
    fn mul(self, rhs: Rational) -> Self::Output {
        self.checked_mul(&rhs)
    }
}

impl Div for Rational {
    type Output = Result<Rational, RationalError>;
    fn div(self, rhs: Rational) -> Self::Output {
        self.checked_div(&rhs)
    }
}

impl Neg for Rational {
    type Output = Result<Rational, RationalError>;
    fn neg(self) -> Self::Output {
        self.checked_neg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_on_construction() {
        let r = Rational::new(6, 4).unwrap();
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn sign_is_carried_by_numerator() {
        let r = Rational::new(3, -6).unwrap();
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
        let r = Rational::new(-3, -6).unwrap();
        assert_eq!(r.numer(), 1);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn zero_denominator_is_an_error() {
        assert_eq!(Rational::new(1, 0), Err(RationalError::ZeroDenominator));
    }

    #[test]
    fn zero_is_canonical() {
        let r = Rational::new(0, 17).unwrap();
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.denom(), 1);
        assert!(r.is_zero());
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(1, 6).unwrap();
        assert_eq!((a + b).unwrap(), Rational::new(1, 2).unwrap());
        assert_eq!((a - b).unwrap(), Rational::new(1, 6).unwrap());
    }

    #[test]
    fn multiplication_and_division() {
        let a = Rational::new(2, 3).unwrap();
        let b = Rational::new(9, 4).unwrap();
        assert_eq!((a * b).unwrap(), Rational::new(3, 2).unwrap());
        assert_eq!((a / b).unwrap(), Rational::new(8, 27).unwrap());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let a = Rational::ONE;
        assert_eq!((a / Rational::ZERO), Err(RationalError::ZeroDenominator));
    }

    #[test]
    fn ordering_is_exact() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(333_333_333, 1_000_000_000).unwrap();
        assert!(b < a);
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn recip_swaps_numerator_and_denominator() {
        let a = Rational::new(-2, 5).unwrap();
        assert_eq!(a.recip().unwrap(), Rational::new(-5, 2).unwrap());
        assert_eq!(Rational::ZERO.recip(), Err(RationalError::ZeroDenominator));
    }

    #[test]
    fn overflow_is_reported() {
        let big = Rational::from_integer(i128::MAX);
        assert_eq!(big.checked_mul(&big), Err(RationalError::Overflow));
        assert_eq!(big.checked_add(&big), Err(RationalError::Overflow));
    }

    #[test]
    fn gcd_and_lcm_helpers() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(0, 7), 7);
        assert_eq!(gcd_u64(0, 0), 0);
        assert_eq!(lcm_u64(4, 6).unwrap(), 12);
        assert_eq!(lcm_u64(0, 6).unwrap(), 0);
        assert!(lcm_u64(u64::MAX, u64::MAX - 1).is_err());
        assert_eq!(gcd_i128(-12, 18), 6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rational::new(3, 2).unwrap().to_string(), "3/2");
        assert_eq!(Rational::from_integer(5).to_string(), "5");
    }

    #[test]
    fn conversion_from_primitive_integers() {
        assert_eq!(Rational::from(4u64), Rational::from_integer(4));
        assert_eq!(Rational::from(-4i64), Rational::from_integer(-4));
    }
}
