//! Exact rational arithmetic used for throughputs, periods and cycle ratios.
//!
//! All analyses in this workspace compare periods and throughputs *exactly*;
//! floating point would make the Theorem-4 optimality test of the K-Iter
//! algorithm unreliable. [`Rational`] is a reduced fraction of two `i128`
//! values with checked arithmetic: overflow is reported through
//! [`RationalError`] instead of panicking or wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Error raised by checked rational constructors and arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RationalError {
    /// The denominator of a fraction was zero.
    ZeroDenominator,
    /// An intermediate product or sum exceeded the `i128` range.
    Overflow,
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::ZeroDenominator => write!(f, "zero denominator in rational"),
            RationalError::Overflow => write!(f, "rational arithmetic overflow"),
        }
    }
}

impl std::error::Error for RationalError {}

/// Greatest common divisor of two `i128` values (by absolute value).
///
/// `gcd_i128(0, 0) == 0` by convention. See [`gcd_u128`] for the kernel.
#[inline]
pub fn gcd_i128(a: i128, b: i128) -> i128 {
    gcd_u128(a.unsigned_abs(), b.unsigned_abs()) as i128
}

/// Width-specialised Euclid GCD on `u128` (`gcd_u128(0, 0) == 0`).
///
/// 128-bit divisions (a `__udivti3` library call) run only while an operand
/// exceeds `u64`; the loop then drops to hardware 64-bit division, which the
/// `benches/rational` head-to-head shows beating both the plain `u128`
/// Euclid loop and a binary (Stein) GCD on solver-shaped operands — the
/// fractions the MCR hot paths reduce have products of small event-graph
/// denominators for operands, where Euclid converges in a handful of
/// divisions while Stein pays one iteration per bit.
#[inline]
pub fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b > u64::MAX as u128 {
        let r = a % b;
        a = b;
        b = r;
    }
    if b == 0 {
        return a;
    }
    // `a mod b < b ≤ u64::MAX`: the rest runs on hardware division.
    let narrow = gcd_u64((a % b) as u64, b as u64);
    narrow as u128
}

/// Greatest common divisor of two `u64` values (`gcd_u64(0, 0) == 0`),
/// Euclid over hardware division (see [`gcd_u128`] for why not Stein).
#[inline]
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple of two `u64` values with overflow checking.
///
/// # Errors
///
/// Returns [`RationalError::Overflow`] if the result does not fit in `u64`.
pub fn lcm_u64(a: u64, b: u64) -> Result<u64, RationalError> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd_u64(a, b);
    (a / g).checked_mul(b).ok_or(RationalError::Overflow)
}

/// An exact, always-reduced fraction `num / den` with `den > 0`.
///
/// # Examples
///
/// ```
/// use csdf::Rational;
///
/// let a = Rational::new(3, 4)?;
/// let b = Rational::new(1, 4)?;
/// assert_eq!((a + b)?, Rational::from_integer(1));
/// assert!(a > b);
/// # Ok::<(), csdf::RationalError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a reduced rational from a numerator and a denominator.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::ZeroDenominator`] if `den == 0`.
    pub fn new(num: i128, den: i128) -> Result<Self, RationalError> {
        if den == 0 {
            return Err(RationalError::ZeroDenominator);
        }
        Ok(Self::reduced(num, den))
    }

    /// Creates a rational from an integer value.
    pub fn from_integer(value: i128) -> Self {
        Rational { num: value, den: 1 }
    }

    fn reduced(num: i128, den: i128) -> Self {
        debug_assert!(den != 0);
        if num == 0 {
            return Rational { num: 0, den: 1 };
        }
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let g = gcd_i128(num, den);
        Rational {
            num: sign * (num / g).abs(),
            den: (den / g).abs(),
        }
    }

    /// `true` when both components fit in `i64`: products of two such values
    /// cannot overflow `i128`, so arithmetic on them needs no checked
    /// operations and no pre-reduction. Reduced fractions built from
    /// event-graph quantities (durations, `−β/(i_b·q_t)` times) live here.
    #[inline]
    fn in_i64_range(&self) -> bool {
        const MAX: i128 = i64::MAX as i128;
        self.num >= -MAX && self.num <= MAX && self.den <= MAX
    }

    /// Numerator of the reduced fraction (carries the sign).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator of the reduced fraction (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::ZeroDenominator`] when inverting zero.
    pub fn recip(&self) -> Result<Rational, RationalError> {
        Rational::new(self.den, self.num)
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_add(&self, other: &Rational) -> Result<Rational, RationalError> {
        // Fast lane: with i64-magnitude components every product fits i128
        // and the sum of two such products fits as well, so skip the
        // denominator pre-reduction and checked arithmetic entirely and
        // reduce once at the end (one GCD instead of two).
        if self.in_i64_range() && other.in_i64_range() {
            let num = self.num * other.den + other.num * self.den;
            let den = self.den * other.den;
            return Ok(Self::reduced(num, den));
        }
        let g = gcd_i128(self.den, other.den);
        let lhs_scale = other.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| {
                other
                    .num
                    .checked_mul(rhs_scale)
                    .and_then(|b| a.checked_add(b))
            })
            .ok_or(RationalError::Overflow)?;
        let den = self
            .den
            .checked_mul(lhs_scale)
            .ok_or(RationalError::Overflow)?;
        Ok(Self::reduced(num, den))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_sub(&self, other: &Rational) -> Result<Rational, RationalError> {
        self.checked_add(&other.checked_neg()?)
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] when negating `i128::MIN`.
    pub fn checked_neg(&self) -> Result<Rational, RationalError> {
        let num = self.num.checked_neg().ok_or(RationalError::Overflow)?;
        Ok(Rational { num, den: self.den })
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_mul(&self, other: &Rational) -> Result<Rational, RationalError> {
        // Fast lane, as in `checked_add`: i64-magnitude operands cannot
        // overflow an i128 product, so multiply straight through and reduce
        // once instead of running the two cross-GCDs first.
        if self.in_i64_range() && other.in_i64_range() {
            let num = self.num * other.num;
            let den = self.den * other.den;
            return Ok(Self::reduced(num, den));
        }
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd_i128(self.num, other.den);
        let g2 = gcd_i128(other.num, self.den);
        let (a, d) = (self.num / g1, other.den / g1);
        let (c, b) = (other.num / g2, self.den / g2);
        let num = a.checked_mul(c).ok_or(RationalError::Overflow)?;
        let den = b.checked_mul(d).ok_or(RationalError::Overflow)?;
        Ok(Self::reduced(num, den))
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::ZeroDenominator`] when dividing by zero and
    /// [`RationalError::Overflow`] on `i128` overflow.
    pub fn checked_div(&self, other: &Rational) -> Result<Rational, RationalError> {
        self.checked_mul(&other.recip()?)
    }

    /// Returns the smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Approximate `f64` value, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Sums an iterator of rationals without reducing intermediate results,
    /// reducing exactly once at the end.
    ///
    /// The accumulator keeps an unreduced `num/den` pair; each step is two
    /// multiplications and an addition — no GCD. When an intermediate would
    /// overflow `i128` the accumulator is reduced once and the step retried,
    /// so the helper is exact on everything the fully-reduced fold accepts.
    /// This is the solvers' preferred way of forming circuit cost/time sums.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] if the sum overflows `i128` even
    /// after reduction.
    pub fn sum_unreduced<'a, I>(terms: I) -> Result<Rational, RationalError>
    where
        I: IntoIterator<Item = &'a Rational>,
    {
        let mut sum = RationalSum::new();
        for term in terms {
            sum.add(term)?;
        }
        Ok(sum.finish())
    }
}

/// Unreduced rational accumulator behind [`Rational::sum_unreduced`]:
/// GCD-free additions, one reduction at the end ([`RationalSum::finish`]).
#[derive(Debug, Clone, Copy)]
pub struct RationalSum {
    num: i128,
    den: i128,
}

impl Default for RationalSum {
    fn default() -> Self {
        RationalSum::new()
    }
}

impl RationalSum {
    /// Creates an accumulator holding zero.
    pub fn new() -> Self {
        RationalSum { num: 0, den: 1 }
    }

    /// Adds one term without reducing.
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] if the term cannot be folded in
    /// even after reducing the accumulator.
    pub fn add(&mut self, term: &Rational) -> Result<(), RationalError> {
        if self.add_step(term).is_ok() {
            return Ok(());
        }
        // Reduce the accumulator once and retry before giving up.
        let reduced = self.finish();
        self.num = reduced.num;
        self.den = reduced.den;
        self.add_step(term)
    }

    fn add_step(&mut self, term: &Rational) -> Result<(), RationalError> {
        let num = self
            .num
            .checked_mul(term.den)
            .and_then(|a| {
                term.num
                    .checked_mul(self.den)
                    .and_then(|b| a.checked_add(b))
            })
            .ok_or(RationalError::Overflow)?;
        let den = self
            .den
            .checked_mul(term.den)
            .ok_or(RationalError::Overflow)?;
        self.num = num;
        self.den = den;
        Ok(())
    }

    /// The reduced value of the sum so far (the accumulator keeps running).
    pub fn finish(&self) -> Rational {
        Rational::reduced(self.num, self.den)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_integer(value as i128)
    }
}

impl From<u64> for Rational {
    fn from(value: u64) -> Self {
        Rational::from_integer(value as i128)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b and c/d by comparing a*d and c*b; reduce first to limit
        // the magnitude of the products, then fall back to f64 ordering only
        // if i128 overflows (which cannot happen after reduction because both
        // fractions fit in i128 and share no common factors > 1 with the
        // opposite denominator in the common case; the checked path keeps us
        // honest anyway).
        let lhs = self.num.checked_mul(other.den);
        let rhs = other.num.checked_mul(self.den);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

// Operator impls return `Result` through the checked methods; panicking
// operators are intentionally not provided for `Rational` itself. For
// ergonomic in-crate use, `Add`/`Sub`/`Mul`/`Div` are implemented returning
// `Result`.

impl Add for Rational {
    type Output = Result<Rational, RationalError>;
    fn add(self, rhs: Rational) -> Self::Output {
        self.checked_add(&rhs)
    }
}

impl Sub for Rational {
    type Output = Result<Rational, RationalError>;
    fn sub(self, rhs: Rational) -> Self::Output {
        self.checked_sub(&rhs)
    }
}

impl Mul for Rational {
    type Output = Result<Rational, RationalError>;
    fn mul(self, rhs: Rational) -> Self::Output {
        self.checked_mul(&rhs)
    }
}

impl Div for Rational {
    type Output = Result<Rational, RationalError>;
    fn div(self, rhs: Rational) -> Self::Output {
        self.checked_div(&rhs)
    }
}

impl Neg for Rational {
    type Output = Result<Rational, RationalError>;
    fn neg(self) -> Self::Output {
        self.checked_neg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_on_construction() {
        let r = Rational::new(6, 4).unwrap();
        assert_eq!(r.numer(), 3);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn sign_is_carried_by_numerator() {
        let r = Rational::new(3, -6).unwrap();
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
        let r = Rational::new(-3, -6).unwrap();
        assert_eq!(r.numer(), 1);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn zero_denominator_is_an_error() {
        assert_eq!(Rational::new(1, 0), Err(RationalError::ZeroDenominator));
    }

    #[test]
    fn zero_is_canonical() {
        let r = Rational::new(0, 17).unwrap();
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.denom(), 1);
        assert!(r.is_zero());
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(1, 6).unwrap();
        assert_eq!((a + b).unwrap(), Rational::new(1, 2).unwrap());
        assert_eq!((a - b).unwrap(), Rational::new(1, 6).unwrap());
    }

    #[test]
    fn multiplication_and_division() {
        let a = Rational::new(2, 3).unwrap();
        let b = Rational::new(9, 4).unwrap();
        assert_eq!((a * b).unwrap(), Rational::new(3, 2).unwrap());
        assert_eq!((a / b).unwrap(), Rational::new(8, 27).unwrap());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let a = Rational::ONE;
        assert_eq!((a / Rational::ZERO), Err(RationalError::ZeroDenominator));
    }

    #[test]
    fn ordering_is_exact() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(333_333_333, 1_000_000_000).unwrap();
        assert!(b < a);
        assert!(a > b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn recip_swaps_numerator_and_denominator() {
        let a = Rational::new(-2, 5).unwrap();
        assert_eq!(a.recip().unwrap(), Rational::new(-5, 2).unwrap());
        assert_eq!(Rational::ZERO.recip(), Err(RationalError::ZeroDenominator));
    }

    #[test]
    fn overflow_is_reported() {
        let big = Rational::from_integer(i128::MAX);
        assert_eq!(big.checked_mul(&big), Err(RationalError::Overflow));
        assert_eq!(big.checked_add(&big), Err(RationalError::Overflow));
    }

    #[test]
    fn gcd_and_lcm_helpers() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(0, 7), 7);
        assert_eq!(gcd_u64(0, 0), 0);
        assert_eq!(lcm_u64(4, 6).unwrap(), 12);
        assert_eq!(lcm_u64(0, 6).unwrap(), 0);
        assert!(lcm_u64(u64::MAX, u64::MAX - 1).is_err());
        assert_eq!(gcd_i128(-12, 18), 6);
    }

    #[test]
    fn width_specialised_gcd_matches_plain_euclid_on_random_operands() {
        fn euclid(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            a
        }
        let mut state = 0x1234_5678_9abc_def1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2_000 {
            let a = (next() as u128) << (next() % 5) | next() as u128;
            let b = (next() as u128) << (next() % 5) | next() as u128;
            assert_eq!(gcd_u128(a, b), euclid(a, b), "a={a} b={b}");
            let (x, y) = (a as u64, b as u64);
            assert_eq!(gcd_u64(x, y), euclid(x as u128, y as u128) as u64);
        }
        assert_eq!(gcd_u128(0, 0), 0);
        assert_eq!(gcd_u128(0, 42), 42);
        assert_eq!(gcd_u128(42, 0), 42);
        assert_eq!(gcd_i128(i128::MIN, 2), 2);
    }

    #[test]
    fn fast_lane_and_slow_lane_agree() {
        // Values straddling the i64 boundary exercise both lanes.
        let big = Rational::new(i64::MAX as i128 * 3, 7).unwrap();
        let small = Rational::new(-5, 9).unwrap();
        let slow = {
            // Slow lane reference computed via the generic formula.
            let num = big.numer() * small.denom() + small.numer() * big.denom();
            let den = big.denom() * small.denom();
            Rational::new(num, den).unwrap()
        };
        assert_eq!(big.checked_add(&small).unwrap(), slow);
        assert_eq!(
            small.checked_mul(&small).unwrap(),
            Rational::new(25, 81).unwrap()
        );
    }

    #[test]
    fn unreduced_sum_matches_reduced_fold() {
        let terms = [
            Rational::new(1, 3).unwrap(),
            Rational::new(-2, 5).unwrap(),
            Rational::new(7, 15).unwrap(),
            Rational::from_integer(4),
        ];
        let folded = terms
            .iter()
            .try_fold(Rational::ZERO, |acc, t| acc.checked_add(t))
            .unwrap();
        assert_eq!(Rational::sum_unreduced(terms.iter()).unwrap(), folded);

        // Overflow-pressure case: denominators whose unreduced product blows
        // past i128 forces the mid-flight reduction path.
        let huge = Rational::new(1, i64::MAX as i128).unwrap();
        let many = [huge; 6];
        let folded = many
            .iter()
            .try_fold(Rational::ZERO, |acc, t| acc.checked_add(t))
            .unwrap();
        assert_eq!(Rational::sum_unreduced(many.iter()).unwrap(), folded);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rational::new(3, 2).unwrap().to_string(), "3/2");
        assert_eq!(Rational::from_integer(5).to_string(), "5");
    }

    #[test]
    fn conversion_from_primitive_integers() {
        assert_eq!(Rational::from(4u64), Rational::from_integer(4));
        assert_eq!(Rational::from(-4i64), Rational::from_integer(-4));
    }
}
