//! Throughput and period result types shared by all evaluators.

use std::cmp::Ordering;
use std::fmt;

use crate::rational::{Rational, RationalError};

/// The throughput of a CSDF graph under some schedule, normalised per graph
/// iteration (the paper's `Th_G = Th_t / q_t`).
///
/// Three situations are distinguished:
///
/// * [`Throughput::Finite`] — the usual case; the graph completes one
///   iteration every `1 / value` time units.
/// * [`Throughput::Unbounded`] — the constraint graph has no cycle at all
///   (e.g. an acyclic graph with auto-concurrency allowed): iterations can be
///   pipelined without bound and the steady-state throughput grows without
///   limit.
/// * [`Throughput::Deadlocked`] — the graph cannot run forever (a dependency
///   cycle has too few initial tokens); the long-run throughput is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Throughput {
    /// A finite, strictly positive throughput.
    Finite(Rational),
    /// No cyclic constraint bounds the schedule: infinite throughput.
    Unbounded,
    /// The graph deadlocks: zero throughput.
    Deadlocked,
}

impl Throughput {
    /// Builds a throughput from a period `Ω` (time per graph iteration).
    ///
    /// A zero period maps to [`Throughput::Unbounded`].
    ///
    /// # Errors
    ///
    /// Returns [`RationalError::Overflow`] if inverting the period overflows.
    pub fn from_period(period: Rational) -> Result<Self, RationalError> {
        if period.is_zero() {
            Ok(Throughput::Unbounded)
        } else {
            Ok(Throughput::Finite(period.recip()?))
        }
    }

    /// The period `Ω = 1 / Th`, when finite.
    ///
    /// Returns `None` for [`Throughput::Unbounded`] (period zero would lose
    /// information) and for [`Throughput::Deadlocked`] (infinite period).
    pub fn period(&self) -> Option<Rational> {
        match self {
            Throughput::Finite(value) => value.recip().ok(),
            _ => None,
        }
    }

    /// The finite throughput value, if any.
    pub fn value(&self) -> Option<Rational> {
        match self {
            Throughput::Finite(value) => Some(*value),
            _ => None,
        }
    }

    /// Returns `true` for the [`Throughput::Finite`] variant.
    pub fn is_finite(&self) -> bool {
        matches!(self, Throughput::Finite(_))
    }

    /// Returns `true` for the [`Throughput::Deadlocked`] variant.
    pub fn is_deadlocked(&self) -> bool {
        matches!(self, Throughput::Deadlocked)
    }

    /// Approximate `f64` value for reporting; `f64::INFINITY` when unbounded
    /// and `0.0` when deadlocked.
    pub fn to_f64(&self) -> f64 {
        match self {
            Throughput::Finite(value) => value.to_f64(),
            Throughput::Unbounded => f64::INFINITY,
            Throughput::Deadlocked => 0.0,
        }
    }
}

impl PartialOrd for Throughput {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Throughput {
    fn cmp(&self, other: &Self) -> Ordering {
        use Throughput::*;
        match (self, other) {
            (Deadlocked, Deadlocked) | (Unbounded, Unbounded) => Ordering::Equal,
            (Deadlocked, _) => Ordering::Less,
            (_, Deadlocked) => Ordering::Greater,
            (Unbounded, _) => Ordering::Greater,
            (_, Unbounded) => Ordering::Less,
            (Finite(a), Finite(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Throughput::Finite(value) => write!(f, "{value}"),
            Throughput::Unbounded => write!(f, "unbounded"),
            Throughput::Deadlocked => write!(f, "0 (deadlock)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_and_value_roundtrip() {
        let th = Throughput::from_period(Rational::new(36, 1).unwrap()).unwrap();
        assert_eq!(th.value(), Some(Rational::new(1, 36).unwrap()));
        assert_eq!(th.period(), Some(Rational::from_integer(36)));
        assert!(th.is_finite());
        assert!(!th.is_deadlocked());
    }

    #[test]
    fn zero_period_is_unbounded() {
        let th = Throughput::from_period(Rational::ZERO).unwrap();
        assert_eq!(th, Throughput::Unbounded);
        assert_eq!(th.period(), None);
        assert_eq!(th.value(), None);
        assert!(th.to_f64().is_infinite());
    }

    #[test]
    fn ordering_places_deadlock_below_everything() {
        let finite = Throughput::Finite(Rational::new(1, 10).unwrap());
        assert!(Throughput::Deadlocked < finite);
        assert!(finite < Throughput::Unbounded);
        assert!(Throughput::Deadlocked < Throughput::Unbounded);
        let faster = Throughput::Finite(Rational::new(1, 5).unwrap());
        assert!(finite < faster);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Throughput::Deadlocked.to_string(), "0 (deadlock)");
        assert_eq!(Throughput::Unbounded.to_string(), "unbounded");
        assert_eq!(
            Throughput::Finite(Rational::new(1, 36).unwrap()).to_string(),
            "1/36"
        );
    }
}
