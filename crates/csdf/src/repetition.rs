//! Repetition vectors and consistency of CSDF graphs.
//!
//! A CSDF graph is *consistent* when there is a vector `q` of positive
//! integers such that for every buffer `b = (t, t')`,
//! `q_t · i_b = q_{t'} · o_b`. The smallest such vector (component-wise, per
//! weakly-connected component) is the repetition vector; it gives the number
//! of iterations of every task inside one graph iteration.

use std::collections::VecDeque;

use crate::error::CsdfError;
use crate::graph::CsdfGraph;
use crate::rational::{gcd_i128, Rational};
use crate::task::TaskId;

/// The repetition vector `q` of a consistent CSDF graph.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 3, 2, 0);
/// let graph = builder.build()?;
/// let q = graph.repetition_vector()?;
/// assert_eq!(q.get(a), 2);
/// assert_eq!(q.get(b), 3);
/// assert_eq!(q.sum(), 5);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepetitionVector {
    entries: Vec<u64>,
}

impl RepetitionVector {
    /// Computes the repetition vector of `graph`.
    ///
    /// # Errors
    ///
    /// * [`CsdfError::Inconsistent`] when the balance equations admit no
    ///   positive solution.
    /// * [`CsdfError::Overflow`] when an entry exceeds `u64`.
    ///
    /// # Panics
    ///
    /// Panics only if the component traversal invariant breaks (a task is
    /// dequeued before its fraction is assigned).
    pub fn compute(graph: &CsdfGraph) -> Result<Self, CsdfError> {
        let n = graph.task_count();
        let mut fractions: Vec<Option<Rational>> = vec![None; n];
        // Undirected adjacency over buffers for component traversal.
        let mut component = vec![usize::MAX; n];
        let mut component_count = 0usize;

        for start in 0..n {
            if fractions[start].is_some() {
                continue;
            }
            let component_id = component_count;
            component_count += 1;
            fractions[start] = Some(Rational::ONE);
            component[start] = component_id;
            let mut queue = VecDeque::new();
            queue.push_back(TaskId::new(start));
            while let Some(task) = queue.pop_front() {
                let task_fraction = fractions[task.index()].expect("assigned before queueing");
                let neighbours = graph
                    .outgoing(task)
                    .iter()
                    .chain(graph.incoming(task).iter())
                    .copied();
                for buffer_id in neighbours {
                    let buffer = graph.buffer(buffer_id);
                    let (other, ratio) = if buffer.source() == task {
                        // q_other = q_task * i_b / o_b
                        (
                            buffer.target(),
                            Rational::new(
                                buffer.total_production() as i128,
                                buffer.total_consumption() as i128,
                            )?,
                        )
                    } else {
                        (
                            buffer.source(),
                            Rational::new(
                                buffer.total_consumption() as i128,
                                buffer.total_production() as i128,
                            )?,
                        )
                    };
                    let expected = task_fraction.checked_mul(&ratio)?;
                    match fractions[other.index()] {
                        None => {
                            fractions[other.index()] = Some(expected);
                            component[other.index()] = component_id;
                            queue.push_back(other);
                        }
                        Some(existing) => {
                            if existing != expected {
                                return Err(CsdfError::Inconsistent {
                                    buffer: graph.buffer_ref(buffer_id),
                                });
                            }
                        }
                    }
                }
            }
        }

        // Scale each component independently so that all entries are positive
        // integers with overall gcd 1 within the component.
        let mut entries = vec![0u64; n];
        for component_id in 0..component_count {
            let members: Vec<usize> = (0..n).filter(|&t| component[t] == component_id).collect();
            let mut denominator_lcm: i128 = 1;
            for &t in &members {
                let f = fractions[t].expect("all tasks assigned");
                let d = f.denom();
                let g = gcd_i128(denominator_lcm, d);
                denominator_lcm = denominator_lcm
                    .checked_div(g)
                    .and_then(|x| x.checked_mul(d))
                    .ok_or(CsdfError::Overflow)?;
            }
            let mut scaled: Vec<i128> = Vec::with_capacity(members.len());
            for &t in &members {
                let f = fractions[t].expect("all tasks assigned");
                let value = f
                    .numer()
                    .checked_mul(denominator_lcm / f.denom())
                    .ok_or(CsdfError::Overflow)?;
                scaled.push(value);
            }
            let mut overall_gcd: i128 = 0;
            for &value in &scaled {
                overall_gcd = gcd_i128(overall_gcd, value);
            }
            if overall_gcd == 0 {
                overall_gcd = 1;
            }
            for (&t, &value) in members.iter().zip(&scaled) {
                let reduced = value / overall_gcd;
                if reduced <= 0 {
                    // Fractions are products of positive ratios, so a
                    // non-positive entry can only mean sign corruption from
                    // an undetected arithmetic failure.
                    return Err(CsdfError::Overflow);
                }
                entries[t] = u64::try_from(reduced).map_err(|_| CsdfError::Overflow)?;
            }
        }

        Ok(RepetitionVector { entries })
    }

    /// Repetition count `q_t` of a task.
    ///
    /// # Panics
    ///
    /// Panics if `task` does not belong to the graph this vector was computed
    /// from.
    pub fn get(&self, task: TaskId) -> u64 {
        self.entries[task.index()]
    }

    /// Number of entries (equals the task count of the graph).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in task-id order.
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }

    /// Sum of all entries `Σ_t q_t` — the figure the paper reports as a size
    /// indicator of every benchmark.
    pub fn sum(&self) -> u128 {
        self.entries.iter().map(|&q| q as u128).sum()
    }

    /// Verifies the balance equation `q_t · i_b = q_{t'} · o_b` on every
    /// buffer of `graph`.
    pub fn validates(&self, graph: &CsdfGraph) -> bool {
        graph.buffers().all(|(_, b)| {
            let lhs = self.get(b.source()) as u128 * b.total_production() as u128;
            let rhs = self.get(b.target()) as u128 * b.total_consumption() as u128;
            lhs == rhs
        })
    }
}

impl FromIterator<u64> for RepetitionVector {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        RepetitionVector {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    #[test]
    fn simple_sdf_chain() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let z = b.add_sdf_task("z", 1);
        b.add_sdf_buffer(x, y, 2, 3, 0);
        b.add_sdf_buffer(y, z, 5, 2, 0);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        // x:y = 3:2 ; y:z = 2:5  =>  q = [3, 2, 5]
        assert_eq!(q.as_slice(), &[3, 2, 5]);
        assert!(q.validates(&g));
        assert_eq!(q.sum(), 10);
    }

    #[test]
    fn cyclo_static_rates_use_totals() {
        let mut b = CsdfGraphBuilder::new();
        let t = b.add_task("t", vec![1, 1, 1]);
        let u = b.add_task("u", vec![1, 1]);
        // i_b = 6, o_b = 7  =>  q = [7, 6]
        b.add_buffer(t, u, vec![2, 3, 1], vec![2, 5], 0);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!(q.get(t), 7);
        assert_eq!(q.get(u), 6);
    }

    #[test]
    fn inconsistent_cycle_is_detected() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_sdf_buffer(y, x, 1, 1, 0); // would force q_x = 2 q_y and q_y = q_x
        let g = b.build().unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(CsdfError::Inconsistent { .. })
        ));
        assert!(!g.is_consistent());
    }

    #[test]
    fn disconnected_components_are_scaled_independently() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let lone = b.add_sdf_task("lone", 1);
        b.add_sdf_buffer(x, y, 4, 6, 0);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!(q.get(x), 3);
        assert_eq!(q.get(y), 2);
        assert_eq!(q.get(lone), 1);
    }

    #[test]
    fn self_loops_do_not_disturb_the_vector() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 2, 0);
        b.add_serializing_self_loop(x);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        assert_eq!(q.get(x), 2);
        assert_eq!(q.get(y), 1);
    }

    #[test]
    fn paperlike_multirate_cycle_is_consistent() {
        // A small cycle with non-trivial repetition vector.
        let mut b = CsdfGraphBuilder::new();
        let a = b.add_task("a", vec![1, 1]);
        let c = b.add_task("c", vec![1, 1, 1]);
        let d = b.add_sdf_task("d", 1);
        b.add_buffer(a, c, vec![1, 1], vec![1, 1, 2], 0);
        b.add_buffer(c, d, vec![1, 1, 1], vec![6], 0);
        b.add_buffer(d, a, vec![12], vec![1, 2], 6);
        let g = b.build().unwrap();
        let q = g.repetition_vector().unwrap();
        assert!(q.validates(&g));
        // Balance: 2·q_a = 4·q_c, 3·q_c = 6·q_d, 12·q_d = 3·q_a  =>  q = [4, 2, 1]
        assert_eq!(q.get(a), 4);
        assert_eq!(q.get(c), 2);
        assert_eq!(q.get(d), 1);
    }

    #[test]
    fn collecting_from_iterator() {
        let q: RepetitionVector = vec![1u64, 2, 3].into_iter().collect();
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.get(TaskId::new(2)), 3);
    }
}
