//! Minimal importer for the SDF3 XML format.
//!
//! The paper's benchmarks ship as [SDF3](https://www.es.ele.tue.nl/sdf3/)
//! `<sdf>`/`<csdf>` application graphs. This module parses the subset that
//! carries the throughput-relevant information — actors, ports with (phased)
//! rates, channels with initial tokens, and execution times — into a
//! [`CsdfGraph`], so real benchmark files can be replayed through the
//! analysis-session API. It is a hand-rolled scanner (the build environment
//! is offline, no XML crate), deliberately strict: anything outside the
//! recognised subset is a [`CsdfError::Parse`] with a line number rather than
//! a silent guess.
//!
//! Recognised shape (attribute order free, namespaces ignored):
//!
//! ```xml
//! <sdf3 type="csdf">
//!   <applicationGraph name="app">
//!     <csdf name="app" type="G">
//!       <actor name="a" type="A">
//!         <port name="out0" type="out" rate="2,3,1"/>
//!       </actor>
//!       <actor name="b" type="B">
//!         <port name="in0" type="in" rate="2,5"/>
//!       </actor>
//!       <channel name="ch0" srcActor="a" srcPort="out0"
//!                dstActor="b" dstPort="in0" initialTokens="0"/>
//!     </csdf>
//!     <csdfProperties>
//!       <actorProperties actor="a">
//!         <processor type="cpu" default="true">
//!           <executionTime time="1,1,1"/>
//!         </processor>
//!       </actorProperties>
//!     </csdfProperties>
//!   </applicationGraph>
//! </sdf3>
//! ```
//!
//! Per-actor phase counts are inferred as the longest rate/execution-time
//! vector attached to the actor; length-1 vectors are broadcast across the
//! phases (the SDF-in-CSDF convention), any other mismatch is an error.
//! Actors without an `executionTime` default to duration 1 per phase.

use crate::builder::CsdfGraphBuilder;
use crate::error::CsdfError;
use crate::graph::CsdfGraph;
use crate::source::SourceMap;
use crate::BufferId;

/// One scanned XML tag: `<name attr="v" ...>`, `</name>` or `<name ... />`.
#[derive(Debug)]
struct Tag<'a> {
    name: &'a str,
    attributes: Vec<(&'a str, &'a str)>,
    closing: bool,
    /// `<name ... />`: opens and immediately closes, so container elements
    /// scanned this way must not leave their context dangling open.
    self_closing: bool,
    line: usize,
}

impl<'a> Tag<'a> {
    fn attribute(&self, key: &str) -> Option<&'a str> {
        self.attributes
            .iter()
            .find(|(name, _)| *name == key)
            .map(|&(_, value)| value)
    }

    fn required(&self, key: &str) -> Result<&'a str, CsdfError> {
        self.attribute(key).ok_or_else(|| {
            parse_error(
                self.line,
                &format!("<{}> is missing the `{key}` attribute", self.name),
            )
        })
    }
}

/// A streaming scanner over the tags of an XML document. Comments,
/// processing instructions, doctypes, character data and self-closing
/// markers are consumed; only opening/closing tags are yielded.
struct TagScanner<'a> {
    input: &'a str,
    position: usize,
    line: usize,
}

impl<'a> TagScanner<'a> {
    fn new(input: &'a str) -> Self {
        TagScanner {
            input,
            position: 0,
            line: 1,
        }
    }

    /// Advances past `count` bytes, keeping the line counter in sync.
    fn advance(&mut self, count: usize) {
        let consumed = &self.input[self.position..self.position + count];
        self.line += consumed.bytes().filter(|&b| b == b'\n').count();
        self.position += count;
    }

    /// Consumes input until after the first occurrence of `marker`.
    fn skip_past(&mut self, marker: &str, what: &str) -> Result<(), CsdfError> {
        match self.input[self.position..].find(marker) {
            Some(offset) => {
                self.advance(offset + marker.len());
                Ok(())
            }
            None => Err(parse_error(self.line, &format!("unterminated {what}"))),
        }
    }

    fn next_tag(&mut self) -> Result<Option<Tag<'a>>, CsdfError> {
        loop {
            let Some(offset) = self.input[self.position..].find('<') else {
                return Ok(None);
            };
            self.advance(offset);
            let rest = &self.input[self.position..];
            if rest.starts_with("<!--") {
                self.skip_past("-->", "comment")?;
            } else if rest.starts_with("<?") {
                self.skip_past("?>", "processing instruction")?;
            } else if rest.starts_with("<!") {
                self.skip_past(">", "declaration")?;
            } else {
                return self.scan_tag().map(Some);
            }
        }
    }

    fn scan_tag(&mut self) -> Result<Tag<'a>, CsdfError> {
        let line = self.line;
        let end = self.input[self.position..]
            .find('>')
            .ok_or_else(|| parse_error(line, "unterminated tag"))?;
        let raw = &self.input[self.position + 1..self.position + end];
        self.advance(end + 1);

        let (closing, self_closing, body) = match raw.strip_prefix('/') {
            Some(body) => (true, false, body),
            None => match raw.strip_suffix('/') {
                Some(body) => (false, true, body),
                None => (false, false, raw),
            },
        };
        let body = body.trim();
        let name_end = body.find(|c: char| c.is_whitespace()).unwrap_or(body.len());
        let name = &body[..name_end];
        if name.is_empty() {
            return Err(parse_error(line, "tag without a name"));
        }

        let mut attributes = Vec::new();
        let mut rest = body[name_end..].trim_start();
        while !rest.is_empty() {
            let eq = rest
                .find('=')
                .ok_or_else(|| parse_error(line, &format!("malformed attribute in <{name}>")))?;
            let key = rest[..eq].trim_end();
            let after = rest[eq + 1..].trim_start();
            let quote = after.chars().next().filter(|&q| q == '"' || q == '\'');
            let Some(quote) = quote else {
                return Err(parse_error(
                    line,
                    &format!("unquoted attribute in <{name}>"),
                ));
            };
            let value_end = after[1..]
                .find(quote)
                .ok_or_else(|| parse_error(line, &format!("unterminated attribute in <{name}>")))?;
            attributes.push((key, &after[1..1 + value_end]));
            rest = after[value_end + 2..].trim_start();
        }
        Ok(Tag {
            name,
            attributes,
            closing,
            self_closing,
            line,
        })
    }
}

#[derive(Debug)]
struct XmlPort {
    name: String,
    is_output: bool,
    rate: Vec<u64>,
}

#[derive(Debug)]
struct XmlActor {
    name: String,
    line: usize,
    ports: Vec<XmlPort>,
    execution_times: Option<Vec<u64>>,
}

impl XmlActor {
    fn port(&self, name: &str, output: bool, line: usize) -> Result<&XmlPort, CsdfError> {
        self.ports
            .iter()
            .find(|port| port.name == name && port.is_output == output)
            .ok_or_else(|| {
                let direction = if output { "output" } else { "input" };
                parse_error(
                    line,
                    &format!("actor `{}` has no {direction} port `{name}`", self.name),
                )
            })
    }
}

#[derive(Debug)]
struct XmlChannel {
    line: usize,
    name: Option<String>,
    src_actor: String,
    src_port: String,
    dst_actor: String,
    dst_port: String,
    initial_tokens: u64,
    buffer_size: Option<u64>,
}

/// The result of a full SDF3 import: the graph plus the side-band
/// annotations the graph itself cannot carry.
///
/// Buffer capacities come from `<channelProperties channel="...">` /
/// `<bufferSize sz="..."/>` annotations. They are *requests*, not part of
/// the dataflow semantics: feed them to
/// [`crate::transform::bound_buffers_tracked`] (or an explicit reverse
/// channel) to actually constrain the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sdf3Import {
    /// The imported graph, ids in document order (see [`parse_sdf3_xml`]).
    pub graph: CsdfGraph,
    /// `(buffer, capacity)` for every channel with a `bufferSize`
    /// annotation, in channel document order.
    pub buffer_capacities: Vec<(BufferId, u64)>,
    /// The `<actor>` / `<channel>` declaration lines, per task and buffer
    /// id — the spans `csdf-lint` attaches to its diagnostics.
    pub source_map: SourceMap,
}

/// Parses an SDF3 `<sdf>`/`<csdf>` XML document into a [`CsdfGraph`].
///
/// See the [module docs](self) for the recognised subset. Tasks keep the
/// actor document order and buffers the channel document order, so ids are
/// stable across re-imports of the same file.
///
/// # Errors
///
/// Returns [`CsdfError::Parse`] (with a 1-based line number) for malformed
/// XML, unknown actors/ports, inconsistent vector lengths or invalid
/// numbers, and the usual builder errors for semantic problems.
///
/// # Examples
///
/// ```
/// let xml = r#"
/// <sdf3 type="sdf">
///   <applicationGraph name="pair">
///     <sdf name="pair" type="G">
///       <actor name="a"><port name="o" type="out" rate="2"/></actor>
///       <actor name="b"><port name="i" type="in" rate="3"/></actor>
///       <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i"
///                initialTokens="1"/>
///     </sdf>
///   </applicationGraph>
/// </sdf3>"#;
/// let graph = csdf::text::parse_sdf3_xml(xml)?;
/// assert_eq!(graph.name(), "pair");
/// assert_eq!(graph.buffer(csdf::BufferId::new(0)).initial_tokens(), 1);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn parse_sdf3_xml(input: &str) -> Result<CsdfGraph, CsdfError> {
    parse_sdf3_xml_import(input).map(|import| import.graph)
}

/// Property elements accepted (and deliberately skipped) inside
/// `<sdfProperties>`/`<csdfProperties>`: they describe costs and constraints
/// orthogonal to throughput analysis. Anything else in a properties section
/// is a line-numbered [`CsdfError::Parse`] rather than a silent skip, so a
/// file relying on an unsupported property cannot be half-imported.
const BENIGN_PROPERTY_ELEMENTS: [&str; 7] = [
    "graphProperties",
    "timeConstraints",
    "throughput",
    "memory",
    "stateSize",
    "tokenSize",
    "units",
];

/// Parses an SDF3 `<sdf>`/`<csdf>` XML document into a [`CsdfGraph`] plus
/// its side-band annotations — currently the per-channel `bufferSize`
/// capacity requests. [`parse_sdf3_xml`] is this with the annotations
/// dropped.
///
/// # Errors
///
/// Those of [`parse_sdf3_xml`], plus [`CsdfError::Parse`] for
/// `channelProperties` referencing unknown channels, malformed `bufferSize`
/// elements, and unsupported elements inside the properties sections.
pub fn parse_sdf3_xml_import(input: &str) -> Result<Sdf3Import, CsdfError> {
    let mut scanner = TagScanner::new(input);
    let mut graph_name: Option<String> = None;
    let mut actors: Vec<XmlActor> = Vec::new();
    let mut channels: Vec<XmlChannel> = Vec::new();
    // Element context while walking the document.
    let mut in_graph = false;
    let mut in_properties = false;
    let mut current_actor: Option<usize> = None;
    let mut properties_actor: Option<usize> = None;
    let mut properties_channel: Option<usize> = None;
    let mut seen_processor = false;

    while let Some(tag) = scanner.next_tag()? {
        match (tag.name, tag.closing) {
            ("sdf" | "csdf", false) => {
                // A self-closing `<sdf/>` opens and closes an empty graph.
                in_graph = !tag.self_closing;
                if graph_name.is_none() {
                    graph_name = tag.attribute("name").map(str::to_string);
                }
            }
            ("sdf" | "csdf", true) => {
                in_graph = false;
                current_actor = None;
            }
            ("sdfProperties" | "csdfProperties", closing) => {
                in_properties = !closing && !tag.self_closing;
            }
            ("applicationGraph", false) => {
                if let Some(name) = tag.attribute("name") {
                    graph_name.get_or_insert_with(|| name.to_string());
                }
            }
            ("actor", false) if in_graph => {
                let name = tag.required("name")?;
                if actors.iter().any(|actor| actor.name == name) {
                    return Err(parse_error(tag.line, &format!("duplicate actor `{name}`")));
                }
                actors.push(XmlActor {
                    name: name.to_string(),
                    line: tag.line,
                    ports: Vec::new(),
                    execution_times: None,
                });
                // `<actor .../>` is already closed: a following <port> must
                // not silently attach to it.
                current_actor = (!tag.self_closing).then_some(actors.len() - 1);
            }
            ("actor", true) if in_graph => current_actor = None,
            ("port", false) if in_graph => {
                let Some(actor) = current_actor else {
                    return Err(parse_error(tag.line, "<port> outside an <actor>"));
                };
                let is_output = match tag.required("type")? {
                    "out" => true,
                    "in" => false,
                    other => {
                        return Err(parse_error(
                            tag.line,
                            &format!("port type must be `in` or `out`, found `{other}`"),
                        ))
                    }
                };
                actors[actor].ports.push(XmlPort {
                    name: tag.required("name")?.to_string(),
                    is_output,
                    rate: parse_rate_list(tag.required("rate")?, tag.line)?,
                });
            }
            ("channel", false) if in_graph => {
                let initial_tokens = match tag.attribute("initialTokens") {
                    Some(value) => parse_number(value, tag.line)?,
                    None => 0,
                };
                channels.push(XmlChannel {
                    line: tag.line,
                    name: tag.attribute("name").map(str::to_string),
                    src_actor: tag.required("srcActor")?.to_string(),
                    src_port: tag.required("srcPort")?.to_string(),
                    dst_actor: tag.required("dstActor")?.to_string(),
                    dst_port: tag.required("dstPort")?.to_string(),
                    initial_tokens,
                    buffer_size: None,
                });
            }
            ("actorProperties", false) if in_properties => {
                let name = tag.required("actor")?;
                let index = actors
                    .iter()
                    .position(|actor| actor.name == name)
                    .ok_or_else(|| {
                        parse_error(tag.line, &format!("properties for unknown actor `{name}`"))
                    })?;
                properties_actor = (!tag.self_closing).then_some(index);
                seen_processor = false;
            }
            ("actorProperties", true) => properties_actor = None,
            ("channelProperties", false) if in_properties => {
                let name = tag.required("channel")?;
                let index = channels
                    .iter()
                    .position(|channel| channel.name.as_deref() == Some(name))
                    .ok_or_else(|| {
                        parse_error(
                            tag.line,
                            &format!("properties for unknown channel `{name}`"),
                        )
                    })?;
                properties_channel = (!tag.self_closing).then_some(index);
            }
            ("channelProperties", true) => properties_channel = None,
            ("bufferSize", false) if in_properties => {
                let Some(channel) = properties_channel else {
                    return Err(parse_error(
                        tag.line,
                        "<bufferSize> outside <channelProperties>",
                    ));
                };
                channels[channel].buffer_size = Some(parse_number(tag.required("sz")?, tag.line)?);
            }
            ("processor", false) if in_properties => {
                // Keep the first processor unless a later one is the default.
                seen_processor = tag.attribute("default") != Some("true") && seen_processor;
            }
            ("executionTime", false) if in_properties => {
                let Some(actor) = properties_actor else {
                    return Err(parse_error(
                        tag.line,
                        "<executionTime> outside <actorProperties>",
                    ));
                };
                if !seen_processor {
                    actors[actor].execution_times =
                        Some(parse_rate_list(tag.required("time")?, tag.line)?);
                    seen_processor = true;
                }
            }
            (other, false) if in_properties && !BENIGN_PROPERTY_ELEMENTS.contains(&other) => {
                return Err(parse_error(
                    tag.line,
                    &format!("unsupported property element <{other}>"),
                ));
            }
            _ => {}
        }
    }

    if actors.is_empty() {
        return Err(CsdfError::EmptyGraph);
    }

    let mut builder = CsdfGraphBuilder::named(graph_name.unwrap_or_else(|| "sdf3".to_string()));
    for actor in &actors {
        let phases = phase_count(actor);
        let durations = match &actor.execution_times {
            Some(times) => broadcast(times, phases, &actor.name, actor.line)?,
            None => vec![1; phases],
        };
        for port in &actor.ports {
            // Validate now for a line-numbered error instead of a builder one.
            broadcast(&port.rate, phases, &actor.name, actor.line)?;
        }
        builder.add_task(actor.name.clone(), durations);
    }
    for channel in &channels {
        let (src_index, src) = find_actor(&actors, &channel.src_actor, channel.line)?;
        let (dst_index, dst) = find_actor(&actors, &channel.dst_actor, channel.line)?;
        let production = src.port(&channel.src_port, true, channel.line)?;
        let consumption = dst.port(&channel.dst_port, false, channel.line)?;
        builder.add_buffer(
            crate::TaskId::new(src_index),
            crate::TaskId::new(dst_index),
            broadcast(&production.rate, phase_count(src), &src.name, channel.line)?,
            broadcast(&consumption.rate, phase_count(dst), &dst.name, channel.line)?,
            channel.initial_tokens,
        );
    }
    let buffer_capacities = channels
        .iter()
        .enumerate()
        .filter_map(|(index, channel)| {
            channel
                .buffer_size
                .map(|capacity| (BufferId::new(index), capacity))
        })
        .collect();
    let source_map = SourceMap::new(
        actors.iter().map(|actor| Some(actor.line)).collect(),
        channels.iter().map(|channel| Some(channel.line)).collect(),
    );
    Ok(Sdf3Import {
        graph: builder.build()?,
        buffer_capacities,
        source_map,
    })
}

/// Serialises a graph to the SDF3 XML subset read by [`parse_sdf3_xml`] —
/// the workspace's wire format for shipping graphs between tools (and the
/// `csdf-service` protocol). The emitted document always uses the `<csdf>`
/// element (an SDF graph is a one-phase CSDF graph), actors in task-id
/// order with one port per incident channel, channels in buffer-id order
/// named `ch<id>`, and one default processor per actor carrying the phase
/// durations — so `parse_sdf3_xml(&write_sdf3_xml(g))` reconstructs `g`
/// exactly: same ids, names, rates, durations and markings
/// (property-tested over random CSDF graphs in the workspace test-suite).
///
/// Names are attribute-escaped on output; the importer does not decode
/// entity references, so round trips are exact for names without the XML
/// special characters `&<>"'` (every benchmark and generated name).
pub fn write_sdf3_xml(graph: &CsdfGraph) -> String {
    write_sdf3_xml_with_capacities(graph, &[])
}

/// Like [`write_sdf3_xml`], but also emits a `<channelProperties>` /
/// `<bufferSize sz="..."/>` annotation for each listed buffer, the form
/// [`parse_sdf3_xml_import`] reads back as capacity requests. Buffers
/// listed more than once keep the last capacity on re-import.
///
/// # Panics
///
/// Panics when a listed buffer id is not part of `graph`.
pub fn write_sdf3_xml_with_capacities(graph: &CsdfGraph, capacities: &[(BufferId, u64)]) -> String {
    for &(buffer, _) in capacities {
        assert!(
            buffer.index() < graph.buffer_count(),
            "capacity for unknown buffer {}",
            buffer.index()
        );
    }
    let name = xml_escape(graph.name());
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\"?>\n");
    out.push_str("<sdf3 type=\"csdf\" version=\"1.0\">\n");
    out.push_str(&format!("  <applicationGraph name=\"{name}\">\n"));
    out.push_str(&format!("    <csdf name=\"{name}\" type=\"G\">\n"));
    for (task_id, task) in graph.tasks() {
        out.push_str(&format!(
            "      <actor name=\"{}\" type=\"A\">\n",
            xml_escape(task.name())
        ));
        for (buffer_id, buffer) in graph.buffers() {
            if buffer.source() == task_id {
                out.push_str(&format!(
                    "        <port name=\"out_ch{}\" type=\"out\" rate=\"{}\"/>\n",
                    buffer_id.index(),
                    join_rates(buffer.production())
                ));
            }
            if buffer.target() == task_id {
                out.push_str(&format!(
                    "        <port name=\"in_ch{}\" type=\"in\" rate=\"{}\"/>\n",
                    buffer_id.index(),
                    join_rates(buffer.consumption())
                ));
            }
        }
        out.push_str("      </actor>\n");
    }
    for (buffer_id, buffer) in graph.buffers() {
        out.push_str(&format!(
            "      <channel name=\"ch{id}\" srcActor=\"{src}\" srcPort=\"out_ch{id}\" \
             dstActor=\"{dst}\" dstPort=\"in_ch{id}\" initialTokens=\"{tokens}\"/>\n",
            id = buffer_id.index(),
            src = xml_escape(graph.task(buffer.source()).name()),
            dst = xml_escape(graph.task(buffer.target()).name()),
            tokens = buffer.initial_tokens()
        ));
    }
    out.push_str("    </csdf>\n");
    out.push_str("    <csdfProperties>\n");
    for (_, task) in graph.tasks() {
        out.push_str(&format!(
            "      <actorProperties actor=\"{}\">\n",
            xml_escape(task.name())
        ));
        out.push_str("        <processor type=\"cpu\" default=\"true\">\n");
        out.push_str(&format!(
            "          <executionTime time=\"{}\"/>\n",
            join_rates(task.durations())
        ));
        out.push_str("        </processor>\n");
        out.push_str("      </actorProperties>\n");
    }
    for &(buffer, capacity) in capacities {
        out.push_str(&format!(
            "      <channelProperties channel=\"ch{}\">\n",
            buffer.index()
        ));
        out.push_str(&format!("        <bufferSize sz=\"{capacity}\"/>\n"));
        out.push_str("      </channelProperties>\n");
    }
    out.push_str("    </csdfProperties>\n");
    out.push_str("  </applicationGraph>\n");
    out.push_str("</sdf3>\n");
    out
}

fn join_rates(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Escapes the five XML special characters for use in attribute values.
fn xml_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

fn phase_count(actor: &XmlActor) -> usize {
    actor
        .ports
        .iter()
        .map(|port| port.rate.len())
        .chain(actor.execution_times.iter().map(Vec::len))
        .max()
        .unwrap_or(1)
        .max(1)
}

fn find_actor<'a>(
    actors: &'a [XmlActor],
    name: &str,
    line: usize,
) -> Result<(usize, &'a XmlActor), CsdfError> {
    actors
        .iter()
        .enumerate()
        .find(|(_, actor)| actor.name == name)
        .ok_or_else(|| parse_error(line, &format!("unknown actor `{name}`")))
}

/// Expands a rate/time vector to the actor's phase count: exact lengths pass
/// through, scalars broadcast, anything else is a mismatch.
fn broadcast(
    values: &[u64],
    phases: usize,
    actor: &str,
    line: usize,
) -> Result<Vec<u64>, CsdfError> {
    if values.len() == phases {
        Ok(values.to_vec())
    } else if values.len() == 1 {
        Ok(vec![values[0]; phases])
    } else {
        Err(parse_error(
            line,
            &format!(
                "vector of length {} on actor `{actor}` which has {phases} phases",
                values.len()
            ),
        ))
    }
}

fn parse_rate_list(value: &str, line: usize) -> Result<Vec<u64>, CsdfError> {
    let values: Result<Vec<u64>, CsdfError> = value
        .split(',')
        .map(|entry| parse_number(entry, line))
        .collect();
    let values = values?;
    if values.is_empty() {
        return Err(parse_error(line, "empty rate list"));
    }
    Ok(values)
}

fn parse_number(value: &str, line: usize) -> Result<u64, CsdfError> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| parse_error(line, &format!("invalid number `{}`", value.trim())))
}

fn parse_error(line: usize, message: &str) -> CsdfError {
    CsdfError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::to_text;

    const PAPER_FIGURE1: &str = r#"<?xml version="1.0"?>
<sdf3 type="csdf" version="1.0">
  <!-- the buffer of the paper's Figure 1 -->
  <applicationGraph name="figure1">
    <csdf name="figure1" type="G">
      <actor name="t" type="T">
        <port name="p" type="out" rate="2,3,1"/>
      </actor>
      <actor name="u" type="U">
        <port name="q" type="in" rate="2,5"/>
      </actor>
      <channel name="a" srcActor="t" srcPort="p" dstActor="u" dstPort="q"
               initialTokens="0"/>
    </csdf>
    <csdfProperties>
      <actorProperties actor="t">
        <processor type="cpu" default="true">
          <executionTime time="1,1,1"/>
        </processor>
      </actorProperties>
      <actorProperties actor="u">
        <processor type="cpu" default="true">
          <executionTime time="2,2"/>
        </processor>
      </actorProperties>
    </csdfProperties>
  </applicationGraph>
</sdf3>
"#;

    #[test]
    fn parses_the_paper_example() {
        let g = parse_sdf3_xml(PAPER_FIGURE1).unwrap();
        assert_eq!(g.name(), "figure1");
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.buffer_count(), 1);
        let t = g.find_task("t").unwrap();
        let u = g.find_task("u").unwrap();
        assert_eq!(g.task(t).durations(), &[1, 1, 1]);
        assert_eq!(g.task(u).durations(), &[2, 2]);
        let buffer = g.buffer(crate::BufferId::new(0));
        assert_eq!(buffer.production(), &[2, 3, 1]);
        assert_eq!(buffer.consumption(), &[2, 5]);
        let q = g.repetition_vector().unwrap();
        assert_eq!(q.get(t), 7);
        assert_eq!(q.get(u), 6);
    }

    #[test]
    fn import_records_actor_and_channel_lines() {
        let import = parse_sdf3_xml_import(PAPER_FIGURE1).unwrap();
        let g = &import.graph;
        let sources = &import.source_map;
        assert_eq!(sources.task_line(g.find_task("t").unwrap()), Some(6));
        assert_eq!(sources.task_line(g.find_task("u").unwrap()), Some(9));
        assert_eq!(sources.buffer_line(crate::BufferId::new(0)), Some(12));
    }

    #[test]
    fn round_trips_through_the_text_format() {
        let g = parse_sdf3_xml(PAPER_FIGURE1).unwrap();
        let round_trip = crate::text::parse(&to_text(&g)).unwrap();
        assert_eq!(round_trip, g);
    }

    #[test]
    fn scalar_rates_broadcast_over_csdf_phases() {
        let xml = r#"
<sdf3><applicationGraph name="bcast"><csdf name="bcast">
  <actor name="a">
    <port name="o" type="out" rate="1"/>
  </actor>
  <actor name="b"><port name="i" type="in" rate="2"/></actor>
  <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i"/>
</csdf>
<csdfProperties>
  <actorProperties actor="a"><processor type="cpu"><executionTime time="1,2,3"/></processor></actorProperties>
</csdfProperties>
</applicationGraph></sdf3>"#;
        let g = parse_sdf3_xml(xml).unwrap();
        let a = g.find_task("a").unwrap();
        assert_eq!(g.task(a).phase_count(), 3);
        assert_eq!(g.buffer(crate::BufferId::new(0)).production(), &[1, 1, 1]);
        // Missing executionTime defaults to 1 per phase, missing
        // initialTokens to 0.
        let b = g.find_task("b").unwrap();
        assert_eq!(g.task(b).durations(), &[1]);
        assert_eq!(g.buffer(crate::BufferId::new(0)).initial_tokens(), 0);
    }

    #[test]
    fn the_default_processor_wins() {
        let xml = r#"
<sdf3><applicationGraph><sdf name="procs">
  <actor name="a"><port name="o" type="out" rate="1"/></actor>
  <actor name="b"><port name="i" type="in" rate="1"/></actor>
  <channel name="c" srcActor="a" srcPort="o" dstActor="b" dstPort="i"/>
</sdf>
<sdfProperties>
  <actorProperties actor="a">
    <processor type="slow"><executionTime time="9"/></processor>
    <processor type="fast" default="true"><executionTime time="2"/></processor>
  </actorProperties>
</sdfProperties>
</applicationGraph></sdf3>"#;
        let g = parse_sdf3_xml(xml).unwrap();
        let a = g.find_task("a").unwrap();
        assert_eq!(g.task(a).durations(), &[2]);
    }

    #[test]
    fn self_closing_containers_do_not_leak_context() {
        // A port after a self-closing actor must not attach to it.
        let stray_port = "<sdf name=\"g\">\n<actor name=\"a\"/>\n<port name=\"p\" type=\"in\" rate=\"1\"/>\n</sdf>";
        match parse_sdf3_xml(stray_port) {
            Err(CsdfError::Parse { line: 3, message }) => {
                assert!(message.contains("outside an <actor>"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A self-closing properties block must not swallow later elements.
        let stray_time = "<sdf name=\"g\">\n<actor name=\"a\"><port name=\"o\" type=\"out\" rate=\"1\"/></actor>\n<actor name=\"b\"><port name=\"i\" type=\"in\" rate=\"1\"/></actor>\n<channel name=\"c\" srcActor=\"a\" srcPort=\"o\" dstActor=\"b\" dstPort=\"i\"/>\n</sdf>\n<sdfProperties/>\n<executionTime time=\"9\"/>";
        let g = parse_sdf3_xml(stray_time).unwrap();
        // The stray executionTime is ignored, not applied to anything.
        let a = g.find_task("a").unwrap();
        assert_eq!(g.task(a).durations(), &[1]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let unknown_port = "<sdf name=\"g\">\n<actor name=\"a\"/>\n<actor name=\"b\"/>\n<channel name=\"c\" srcActor=\"a\" srcPort=\"o\" dstActor=\"b\" dstPort=\"i\"/>\n</sdf>";
        match parse_sdf3_xml(unknown_port) {
            Err(CsdfError::Parse { line: 4, message }) => {
                assert!(message.contains("output port"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_sdf3_xml("<sdf name=\"g\">\n<actor name=\"a\"/>\n<actor name=\"a\"/>\n</sdf>"),
            Err(CsdfError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_sdf3_xml("<sdf>\n<actor name=\"a\">\n<port name=\"p\" type=\"sideways\" rate=\"1\"/>\n</actor>\n</sdf>"),
            Err(CsdfError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_sdf3_xml("<sdf>\n<port name=\"p\" type=\"in\" rate=\"1\"/>\n</sdf>"),
            Err(CsdfError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_sdf3_xml("<sdf>\n<actor name=\"a\">\n<port name=\"p\" type=\"in\" rate=\"x\"/>\n</actor>\n</sdf>"),
            Err(CsdfError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_sdf3_xml("<sdf/>"),
            Err(CsdfError::EmptyGraph)
        ));
        assert!(matches!(
            parse_sdf3_xml("<!-- unterminated"),
            Err(CsdfError::Parse { line: 1, .. })
        ));
        // Vector length 2 on a 3-phase actor is a mismatch, not a broadcast.
        let mismatch = "<sdf>\n<actor name=\"a\">\n<port name=\"o\" type=\"out\" rate=\"1,2,3\"/>\n<port name=\"o2\" type=\"out\" rate=\"1,2\"/>\n</actor>\n</sdf>";
        assert!(matches!(
            parse_sdf3_xml(mismatch),
            Err(CsdfError::Parse { .. })
        ));
    }

    #[test]
    fn export_import_round_trips_the_paper_example() {
        let g = parse_sdf3_xml(PAPER_FIGURE1).unwrap();
        let xml = write_sdf3_xml(&g);
        assert_eq!(parse_sdf3_xml(&xml).unwrap(), g);
        // Exported documents carry no capacity annotations by default.
        assert!(parse_sdf3_xml_import(&xml)
            .unwrap()
            .buffer_capacities
            .is_empty());
    }

    #[test]
    fn capacity_annotations_round_trip() {
        let g = parse_sdf3_xml(PAPER_FIGURE1).unwrap();
        let capacities = vec![(crate::BufferId::new(0), 9u64)];
        let xml = write_sdf3_xml_with_capacities(&g, &capacities);
        let import = parse_sdf3_xml_import(&xml).unwrap();
        assert_eq!(import.graph, g);
        assert_eq!(import.buffer_capacities, capacities);
    }

    #[test]
    fn buffer_size_annotations_are_imported() {
        let xml = r#"
<sdf3><applicationGraph name="sized"><sdf name="sized">
  <actor name="a"><port name="o" type="out" rate="1"/></actor>
  <actor name="b"><port name="i" type="in" rate="1"/></actor>
  <channel name="c0" srcActor="a" srcPort="o" dstActor="b" dstPort="i"/>
</sdf>
<sdfProperties>
  <channelProperties channel="c0"><bufferSize sz="7"/></channelProperties>
</sdfProperties>
</applicationGraph></sdf3>"#;
        let import = parse_sdf3_xml_import(xml).unwrap();
        assert_eq!(import.buffer_capacities, vec![(crate::BufferId::new(0), 7)]);
        // The graph itself is unchanged by the annotation.
        assert_eq!(import.graph, parse_sdf3_xml(xml).unwrap());
    }

    #[test]
    fn unsupported_property_elements_error_with_line_numbers() {
        let xml = "<sdf name=\"g\">\n<actor name=\"a\"><port name=\"o\" type=\"out\" rate=\"1\"/></actor>\n<actor name=\"b\"><port name=\"i\" type=\"in\" rate=\"1\"/></actor>\n<channel name=\"c\" srcActor=\"a\" srcPort=\"o\" dstActor=\"b\" dstPort=\"i\"/>\n</sdf>\n<sdfProperties>\n<schedule kind=\"static\"/>\n</sdfProperties>";
        match parse_sdf3_xml(xml) {
            Err(CsdfError::Parse { line: 7, message }) => {
                assert!(
                    message.contains("unsupported property element"),
                    "{message}"
                );
                assert!(message.contains("schedule"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Known cost/constraint elements still import fine.
        let benign = xml.replace(
            "<schedule kind=\"static\"/>",
            "<graphProperties><timeConstraints><throughput>0.1</throughput></timeConstraints></graphProperties><actorProperties actor=\"a\"><processor type=\"cpu\" default=\"true\"><executionTime time=\"2\"/><memory><stateSize max=\"1\"/></memory></processor></actorProperties>",
        );
        let g = parse_sdf3_xml(&benign).unwrap();
        assert_eq!(g.task(g.find_task("a").unwrap()).durations(), &[2]);
    }

    #[test]
    fn channel_property_errors_carry_line_numbers() {
        let base = "<sdf name=\"g\">\n<actor name=\"a\"><port name=\"o\" type=\"out\" rate=\"1\"/></actor>\n<actor name=\"b\"><port name=\"i\" type=\"in\" rate=\"1\"/></actor>\n<channel name=\"c\" srcActor=\"a\" srcPort=\"o\" dstActor=\"b\" dstPort=\"i\"/>\n</sdf>\n<sdfProperties>\n";
        let unknown = format!("{base}<channelProperties channel=\"nope\"/>\n</sdfProperties>");
        match parse_sdf3_xml(&unknown) {
            Err(CsdfError::Parse { line: 7, message }) => {
                assert!(message.contains("unknown channel `nope`"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let stray = format!("{base}<bufferSize sz=\"3\"/>\n</sdfProperties>");
        assert!(matches!(
            parse_sdf3_xml(&stray),
            Err(CsdfError::Parse { line: 7, .. })
        ));
        // A self-closing channelProperties leaves no channel context open.
        let dangling = format!(
            "{base}<channelProperties channel=\"c\"/>\n<bufferSize sz=\"3\"/>\n</sdfProperties>"
        );
        assert!(matches!(
            parse_sdf3_xml(&dangling),
            Err(CsdfError::Parse { line: 8, .. })
        ));
    }

    #[test]
    fn exported_names_are_attribute_escaped() {
        let mut b = crate::CsdfGraphBuilder::named("a&b");
        let t = b.add_sdf_task("t<1>", 1);
        let u = b.add_sdf_task("u\"2\"", 1);
        b.add_sdf_buffer(t, u, 1, 1, 0);
        b.add_sdf_buffer(u, t, 1, 1, 1);
        let g = b.build().unwrap();
        let xml = write_sdf3_xml(&g);
        assert!(xml.contains("a&amp;b"));
        assert!(xml.contains("t&lt;1&gt;"));
        assert!(xml.contains("u&quot;2&quot;"));
    }
}
