//! Graphviz DOT export of CSDF graphs.

use std::fmt::Write as _;

use crate::graph::CsdfGraph;

/// Renders a graph in Graphviz DOT syntax.
///
/// Task nodes are labelled with their name and per-phase durations; buffer
/// edges with their production / consumption vectors and initial marking —
/// the same information the paper's Figure 2 shows.
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, dot::to_dot};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 2, 1, 0);
/// let graph = builder.build()?;
/// let dot = to_dot(&graph);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("\"a\" -> \"b\""));
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn to_dot(graph: &CsdfGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(graph.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse];");
    for (_, task) in graph.tasks() {
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\nd={:?}\"];",
            escape(task.name()),
            escape(task.name()),
            task.durations()
        );
    }
    for (_, buffer) in graph.buffers() {
        let source = graph.task(buffer.source()).name();
        let target = graph.task(buffer.target()).name();
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{:?} / {:?}  M0={}\"];",
            escape(source),
            escape(target),
            buffer.production(),
            buffer.consumption(),
            buffer.initial_tokens()
        );
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(text: &str) -> String {
    text.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    #[test]
    fn dot_output_mentions_every_element() {
        let mut b = CsdfGraphBuilder::named("fig");
        let x = b.add_task("xform", vec![1, 2]);
        let y = b.add_sdf_task("sink", 1);
        b.add_buffer(x, y, vec![2, 3], vec![5], 4);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph \"fig\""));
        assert!(dot.contains("xform"));
        assert!(dot.contains("sink"));
        assert!(dot.contains("M0=4"));
        assert!(dot.contains("[2, 3] / [5]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut b = CsdfGraphBuilder::named("has\"quote");
        b.add_sdf_task("t\"t", 1);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("has\\\"quote"));
        assert!(dot.contains("t\\\"t"));
    }
}
