//! The Cyclo-Static Dataflow Graph container type.

use std::fmt;

use crate::buffer::{Buffer, BufferId};
use crate::error::CsdfError;
use crate::repetition::RepetitionVector;
use crate::task::{Task, TaskId};

/// A Cyclo-Static Dataflow Graph `G = (T, B)`.
///
/// Tasks and buffers are stored densely and addressed by [`TaskId`] /
/// [`BufferId`]. Graphs are immutable once built; use
/// [`CsdfGraphBuilder`](crate::CsdfGraphBuilder) to construct one and the
/// transformation functions in [`crate::transform`] to derive new graphs.
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
///
/// let mut builder = CsdfGraphBuilder::new();
/// let producer = builder.add_task("producer", vec![1]);
/// let consumer = builder.add_task("consumer", vec![1]);
/// builder.add_buffer(producer, consumer, vec![2], vec![1], 0);
/// let graph = builder.build()?;
/// assert_eq!(graph.task_count(), 2);
/// assert_eq!(graph.repetition_vector()?.get(producer), 1);
/// assert_eq!(graph.repetition_vector()?.get(consumer), 2);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsdfGraph {
    name: String,
    tasks: Vec<Task>,
    buffers: Vec<Buffer>,
    outgoing: Vec<Vec<BufferId>>,
    incoming: Vec<Vec<BufferId>>,
}

impl CsdfGraph {
    pub(crate) fn from_parts(name: String, tasks: Vec<Task>, buffers: Vec<Buffer>) -> Self {
        let mut outgoing = vec![Vec::new(); tasks.len()];
        let mut incoming = vec![Vec::new(); tasks.len()];
        for (index, buffer) in buffers.iter().enumerate() {
            outgoing[buffer.source().index()].push(BufferId(index));
            incoming[buffer.target().index()].push(BufferId(index));
        }
        CsdfGraph {
            name,
            tasks,
            buffers,
            outgoing,
            incoming,
        }
    }

    /// Human-readable graph name (defaults to `"csdf"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks `|T|`.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of buffers `|B|`.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// The task addressed by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The buffer addressed by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn buffer(&self, id: BufferId) -> &Buffer {
        &self.buffers[id.index()]
    }

    /// Fallible task lookup.
    pub fn try_task(&self, id: TaskId) -> Result<&Task, CsdfError> {
        self.tasks
            .get(id.index())
            .ok_or(CsdfError::TaskIndexOutOfRange(id.index()))
    }

    /// Fallible buffer lookup.
    pub fn try_buffer(&self, id: BufferId) -> Result<&Buffer, CsdfError> {
        self.buffers
            .get(id.index())
            .ok_or(CsdfError::BufferIndexOutOfRange(id.index()))
    }

    /// Iterator over all task ids in index order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// Iterator over all buffer ids in index order.
    pub fn buffer_ids(&self) -> impl Iterator<Item = BufferId> + '_ {
        (0..self.buffers.len()).map(BufferId)
    }

    /// Iterator over `(TaskId, &Task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> + '_ {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Iterator over `(BufferId, &Buffer)` pairs.
    pub fn buffers(&self) -> impl Iterator<Item = (BufferId, &Buffer)> + '_ {
        self.buffers
            .iter()
            .enumerate()
            .map(|(i, b)| (BufferId(i), b))
    }

    /// Buffers produced by `task`.
    pub fn outgoing(&self, task: TaskId) -> &[BufferId] {
        &self.outgoing[task.index()]
    }

    /// Buffers consumed by `task`.
    pub fn incoming(&self, task: TaskId) -> &[BufferId] {
        &self.incoming[task.index()]
    }

    /// Finds a task by name.
    pub fn find_task(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name() == name).map(TaskId)
    }

    /// A [`BufferRef`](crate::BufferRef) — index plus endpoint task names —
    /// for error messages and diagnostics about `buffer`.
    ///
    /// # Panics
    ///
    /// Panics if `buffer` does not belong to this graph.
    pub fn buffer_ref(&self, buffer: BufferId) -> crate::BufferRef {
        let b = self.buffer(buffer);
        crate::BufferRef::new(
            buffer.index(),
            self.task(b.source()).name(),
            self.task(b.target()).name(),
        )
    }

    /// Returns `true` when every task has a single phase (the graph is an
    /// ordinary Synchronous Dataflow Graph).
    pub fn is_sdf(&self) -> bool {
        self.tasks.iter().all(Task::is_sdf)
    }

    /// Returns `true` when the graph is a Homogeneous SDF graph: every task has
    /// a single phase and every rate equals one.
    pub fn is_hsdf(&self) -> bool {
        self.is_sdf()
            && self
                .buffers
                .iter()
                .all(|b| b.total_production() == 1 && b.total_consumption() == 1)
    }

    /// Replaces the initial marking `M0(b)` of one buffer in place, returning
    /// the previous value.
    ///
    /// This is the mutation primitive of design-space exploration: a marking
    /// change never alters the graph's *structure* (tasks, phases, rates,
    /// endpoints), so consumers that cache structure-derived data — the
    /// repetition vector, or the `kperiodic` event-graph arena — only have to
    /// re-derive what actually depends on the mutated buffer's token count.
    ///
    /// # Errors
    ///
    /// Returns [`CsdfError::BufferIndexOutOfRange`] when `buffer` does not
    /// belong to this graph.
    pub fn set_initial_tokens(&mut self, buffer: BufferId, tokens: u64) -> Result<u64, CsdfError> {
        let buffer = self
            .buffers
            .get_mut(buffer.index())
            .ok_or(CsdfError::BufferIndexOutOfRange(buffer.index()))?;
        let previous = buffer.initial_tokens();
        buffer.set_initial_tokens(tokens);
        Ok(previous)
    }

    /// Sets the capacity of a bounded buffer in place, returning the previous
    /// capacity.
    ///
    /// `reverse` must be the back-pressure buffer modelling `forward`'s
    /// capacity (endpoints swapped, rates mirrored — the shape produced by
    /// [`crate::transform::bound_buffers`]). The capacity `C` is realised as
    /// `C − M0(forward)` initial tokens of free space on the reverse buffer,
    /// so this reduces to a marking mutation and inherits its
    /// cheap-invalidation property.
    ///
    /// The validation is *structural*: the graph itself does not remember
    /// which reverse buffer was created for which forward buffer, so if two
    /// identical parallel channels are both bounded, either reverse buffer
    /// mirrors either forward buffer and a crossed pair cannot be detected
    /// here. The authoritative pairing is the one recorded by
    /// [`crate::transform::bound_buffers_tracked`]
    /// ([`BoundedGraph::reverse_of`](crate::transform::BoundedGraph::reverse_of));
    /// always take `reverse` from it.
    ///
    /// # Errors
    ///
    /// * [`CsdfError::BufferIndexOutOfRange`] for an unknown buffer id;
    /// * [`CsdfError::NotAReverseBuffer`] when `reverse` does not mirror
    ///   `forward` (mutating it would silently corrupt the model);
    /// * [`CsdfError::CapacityBelowMarking`] when `capacity` cannot hold the
    ///   forward buffer's initial tokens.
    pub fn set_capacity(
        &mut self,
        forward: BufferId,
        reverse: BufferId,
        capacity: u64,
    ) -> Result<u64, CsdfError> {
        let forward_buffer = self.try_buffer(forward)?;
        let reverse_buffer = self.try_buffer(reverse)?;
        if forward == reverse || !reverse_buffer.is_reverse_of(forward_buffer) {
            return Err(CsdfError::NotAReverseBuffer {
                forward: self.buffer_ref(forward),
                reverse: self.buffer_ref(reverse),
            });
        }
        let marking = forward_buffer.initial_tokens();
        if capacity < marking {
            return Err(CsdfError::CapacityBelowMarking {
                buffer: self.buffer_ref(forward),
                capacity,
                marking,
            });
        }
        let previous_slack = self.set_initial_tokens(reverse, capacity - marking)?;
        Ok(marking + previous_slack)
    }

    /// Computes the (smallest, component-wise) repetition vector of the graph.
    ///
    /// # Errors
    ///
    /// Returns [`CsdfError::Inconsistent`] when the balance equations have no
    /// solution and [`CsdfError::Overflow`] when the entries do not fit in
    /// `u64`.
    pub fn repetition_vector(&self) -> Result<RepetitionVector, CsdfError> {
        RepetitionVector::compute(self)
    }

    /// Returns `true` when the graph is consistent (a repetition vector
    /// exists).
    pub fn is_consistent(&self) -> bool {
        self.repetition_vector().is_ok()
    }

    /// Sum of all phase counts, i.e. the number of nodes of the 1-periodic
    /// event graph.
    pub fn total_phase_count(&self) -> usize {
        self.tasks.iter().map(Task::phase_count).sum()
    }

    /// Total number of initial tokens stored in the graph.
    pub fn total_initial_tokens(&self) -> u64 {
        self.buffers.iter().map(Buffer::initial_tokens).sum()
    }
}

impl fmt::Display for CsdfGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} tasks, {} buffers)",
            self.name,
            self.task_count(),
            self.buffer_count()
        )?;
        for (id, task) in self.tasks() {
            writeln!(f, "  {id}: {task}")?;
        }
        for (id, buffer) in self.buffers() {
            writeln!(f, "  {id}: {buffer}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::CsdfGraphBuilder;

    #[test]
    fn adjacency_lists_are_built() {
        let mut b = CsdfGraphBuilder::named("pipe");
        let a = b.add_task("a", vec![1]);
        let c = b.add_task("c", vec![1, 1]);
        let d = b.add_task("d", vec![1]);
        b.add_buffer(a, c, vec![2], vec![1, 1], 0);
        b.add_buffer(c, d, vec![1, 1], vec![2], 0);
        b.add_buffer(d, a, vec![1], vec![1], 2);
        let g = b.build().unwrap();

        assert_eq!(g.name(), "pipe");
        assert_eq!(g.outgoing(a).len(), 1);
        assert_eq!(g.incoming(a).len(), 1);
        assert_eq!(g.outgoing(c).len(), 1);
        assert_eq!(g.incoming(c).len(), 1);
        assert_eq!(g.find_task("d"), Some(d));
        assert_eq!(g.find_task("zzz"), None);
        assert_eq!(g.total_phase_count(), 4);
        assert_eq!(g.total_initial_tokens(), 2);
        assert!(!g.is_sdf());
        assert!(!g.is_hsdf());
        assert!(g.is_consistent());
    }

    #[test]
    fn hsdf_detection() {
        let mut b = CsdfGraphBuilder::new();
        let a = b.add_task("a", vec![1]);
        let c = b.add_task("c", vec![1]);
        b.add_buffer(a, c, vec![1], vec![1], 0);
        b.add_buffer(c, a, vec![1], vec![1], 1);
        let g = b.build().unwrap();
        assert!(g.is_sdf());
        assert!(g.is_hsdf());
    }

    #[test]
    fn out_of_range_lookups_are_errors() {
        let mut b = CsdfGraphBuilder::new();
        b.add_task("a", vec![1]);
        let g = b.build().unwrap();
        assert!(g.try_task(crate::TaskId::new(5)).is_err());
        assert!(g.try_buffer(crate::BufferId::new(0)).is_err());
        assert!(g.try_task(crate::TaskId::new(0)).is_ok());
    }

    #[test]
    fn marking_mutation_is_in_place_and_structure_preserving() {
        let mut b = CsdfGraphBuilder::new();
        let a = b.add_task("a", vec![1, 2]);
        let c = b.add_sdf_task("c", 1);
        let chan = b.add_buffer(a, c, vec![1, 2], vec![3], 4);
        let mut g = b.build().unwrap();
        let q_before = g.repetition_vector().unwrap();

        assert_eq!(g.set_initial_tokens(chan, 9).unwrap(), 4);
        assert_eq!(g.buffer(chan).initial_tokens(), 9);
        assert_eq!(g.total_initial_tokens(), 9);
        // Marking mutations never change the repetition vector.
        assert_eq!(
            g.repetition_vector().unwrap().as_slice(),
            q_before.as_slice()
        );
        assert!(matches!(
            g.set_initial_tokens(crate::BufferId::new(7), 1),
            Err(crate::CsdfError::BufferIndexOutOfRange(7))
        ));
    }

    #[test]
    fn display_contains_all_elements() {
        let mut b = CsdfGraphBuilder::named("demo");
        let a = b.add_task("alpha", vec![1]);
        let c = b.add_task("beta", vec![1]);
        b.add_buffer(a, c, vec![1], vec![1], 3);
        let g = b.build().unwrap();
        let text = g.to_string();
        assert!(text.contains("demo"));
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
    }
}
