//! Fallible construction of CSDF graphs.

use std::collections::HashSet;

use crate::buffer::{Buffer, BufferId};
use crate::error::CsdfError;
use crate::graph::CsdfGraph;
use crate::task::{Task, TaskId};

/// Builder for [`CsdfGraph`] values.
///
/// Tasks and buffers may be added in any order; all structural validation
/// (phase counts vs. rate vector lengths, duplicate names, dangling ids,
/// zero-rate buffers) happens in [`CsdfGraphBuilder::build`].
///
/// # Examples
///
/// ```
/// use csdf::CsdfGraphBuilder;
///
/// let mut builder = CsdfGraphBuilder::named("figure1");
/// let t = builder.add_task("t", vec![1, 1, 1]);
/// let t_prime = builder.add_task("t'", vec![1, 1]);
/// builder.add_buffer(t, t_prime, vec![2, 3, 1], vec![2, 5], 0);
/// let graph = builder.build()?;
/// assert_eq!(graph.buffer_count(), 1);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsdfGraphBuilder {
    name: String,
    tasks: Vec<Task>,
    buffers: Vec<PendingBuffer>,
}

#[derive(Debug, Clone)]
struct PendingBuffer {
    source: TaskId,
    target: TaskId,
    production: Vec<u64>,
    consumption: Vec<u64>,
    initial_tokens: u64,
}

impl CsdfGraphBuilder {
    /// Creates an empty builder with the default graph name `"csdf"`.
    pub fn new() -> Self {
        Self::named("csdf")
    }

    /// Creates an empty builder with an explicit graph name.
    pub fn named(name: impl Into<String>) -> Self {
        CsdfGraphBuilder {
            name: name.into(),
            tasks: Vec::new(),
            buffers: Vec::new(),
        }
    }

    /// Adds a cyclo-static task with one duration per phase and returns its id.
    pub fn add_task(&mut self, name: impl Into<String>, durations: Vec<u64>) -> TaskId {
        let id = TaskId(self.tasks.len());
        // An empty duration vector is diagnosed in `build`; store a marker
        // phase so `Task::new` does not panic here.
        let durations = if durations.is_empty() {
            vec![u64::MAX]
        } else {
            durations
        };
        self.tasks.push(Task::new(name, durations));
        id
    }

    /// Adds an SDF task (single phase) with the given duration.
    pub fn add_sdf_task(&mut self, name: impl Into<String>, duration: u64) -> TaskId {
        self.add_task(name, vec![duration])
    }

    /// Adds a buffer from `source` to `target` and returns its id.
    ///
    /// `production` must have one entry per phase of `source` and
    /// `consumption` one entry per phase of `target`; this is validated in
    /// [`CsdfGraphBuilder::build`].
    pub fn add_buffer(
        &mut self,
        source: TaskId,
        target: TaskId,
        production: Vec<u64>,
        consumption: Vec<u64>,
        initial_tokens: u64,
    ) -> BufferId {
        let id = BufferId(self.buffers.len());
        self.buffers.push(PendingBuffer {
            source,
            target,
            production,
            consumption,
            initial_tokens,
        });
        id
    }

    /// Adds an SDF buffer (scalar rates) from `source` to `target`.
    pub fn add_sdf_buffer(
        &mut self,
        source: TaskId,
        target: TaskId,
        production: u64,
        consumption: u64,
        initial_tokens: u64,
    ) -> BufferId {
        self.add_buffer(
            source,
            target,
            vec![production],
            vec![consumption],
            initial_tokens,
        )
    }

    /// Adds a self-loop buffer around `task` carrying one token, which
    /// serialises the executions of the task (disables auto-concurrency).
    ///
    /// The production and consumption vectors are all-ones over the phases of
    /// the task so that each phase must wait for the completion of the
    /// previous one across iterations.
    pub fn add_serializing_self_loop(&mut self, task: TaskId) -> BufferId {
        let phases = self
            .tasks
            .get(task.index())
            .map_or(1, super::task::Task::phase_count);
        self.add_buffer(task, task, vec![1; phases], vec![1; phases], 1)
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of buffers added so far.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Validates the accumulated tasks and buffers and produces the graph.
    ///
    /// # Errors
    ///
    /// * [`CsdfError::EmptyGraph`] if no task was added.
    /// * [`CsdfError::DuplicateTaskName`] if two tasks share a name.
    /// * [`CsdfError::EmptyPhases`] if a task was declared without phases.
    /// * [`CsdfError::UnknownTask`] if a buffer references a missing task.
    /// * [`CsdfError::RateLengthMismatch`] if a rate vector length differs from
    ///   the task's phase count.
    /// * [`CsdfError::ZeroRateBuffer`] if a buffer never produces or never
    ///   consumes any token.
    pub fn build(self) -> Result<CsdfGraph, CsdfError> {
        if self.tasks.is_empty() {
            return Err(CsdfError::EmptyGraph);
        }
        let mut names = HashSet::new();
        for task in &self.tasks {
            if task.durations() == [u64::MAX] {
                return Err(CsdfError::EmptyPhases(task.name().to_string()));
            }
            if !names.insert(task.name().to_string()) {
                return Err(CsdfError::DuplicateTaskName(task.name().to_string()));
            }
        }
        let mut buffers = Vec::with_capacity(self.buffers.len());
        for (index, pending) in self.buffers.into_iter().enumerate() {
            let source = self
                .tasks
                .get(pending.source.index())
                .ok_or(CsdfError::TaskIndexOutOfRange(pending.source.index()))?;
            let target = self
                .tasks
                .get(pending.target.index())
                .ok_or(CsdfError::TaskIndexOutOfRange(pending.target.index()))?;
            if pending.production.len() != source.phase_count() {
                return Err(CsdfError::RateLengthMismatch {
                    task: source.name().to_string(),
                    phases: source.phase_count(),
                    rate_len: pending.production.len(),
                });
            }
            if pending.consumption.len() != target.phase_count() {
                return Err(CsdfError::RateLengthMismatch {
                    task: target.name().to_string(),
                    phases: target.phase_count(),
                    rate_len: pending.consumption.len(),
                });
            }
            let total_production: u64 = pending.production.iter().sum();
            let total_consumption: u64 = pending.consumption.iter().sum();
            if total_production == 0 || total_consumption == 0 {
                return Err(CsdfError::ZeroRateBuffer {
                    buffer: crate::BufferRef::new(index, source.name(), target.name()),
                });
            }
            buffers.push(Buffer::new(
                pending.source,
                pending.target,
                pending.production,
                pending.consumption,
                pending.initial_tokens,
            ));
        }
        Ok(CsdfGraph::from_parts(self.name, self.tasks, buffers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_graph() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_task("y", vec![1, 2]);
        b.add_buffer(x, y, vec![3], vec![1, 2], 0);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.buffer_count(), 2);
        assert!(g.buffer(crate::BufferId::new(1)).is_self_loop());
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(CsdfGraphBuilder::new().build(), Err(CsdfError::EmptyGraph));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = CsdfGraphBuilder::new();
        b.add_sdf_task("a", 1);
        b.add_sdf_task("a", 1);
        assert!(matches!(
            b.build(),
            Err(CsdfError::DuplicateTaskName(name)) if name == "a"
        ));
    }

    #[test]
    fn empty_phase_task_is_rejected() {
        let mut b = CsdfGraphBuilder::new();
        b.add_task("a", vec![]);
        assert!(matches!(b.build(), Err(CsdfError::EmptyPhases(_))));
    }

    #[test]
    fn rate_length_mismatch_is_rejected() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![1], vec![1], 0);
        assert!(matches!(
            b.build(),
            Err(CsdfError::RateLengthMismatch { task, phases: 2, rate_len: 1 }) if task == "x"
        ));
    }

    #[test]
    fn zero_rate_buffer_is_rejected() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 0, 1, 0);
        assert_eq!(
            b.build(),
            Err(CsdfError::ZeroRateBuffer {
                buffer: crate::BufferRef::new(0, "x", "y"),
            })
        );
    }

    #[test]
    fn dangling_task_reference_is_rejected() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        b.add_sdf_buffer(x, TaskId::new(9), 1, 1, 0);
        assert!(matches!(b.build(), Err(CsdfError::TaskIndexOutOfRange(9))));
    }
}
