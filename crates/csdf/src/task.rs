//! Tasks (actors) of a cyclo-static dataflow graph.

use std::fmt;

/// Index of a task within a [`crate::CsdfGraph`].
///
/// Task ids are dense indices assigned in insertion order by the
/// [`crate::CsdfGraphBuilder`]; they are only meaningful relative to the graph
/// that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) usize);

impl TaskId {
    /// Creates a task id from a raw index.
    ///
    /// Mostly useful in tests and generators; analyses obtain ids from the
    /// graph itself.
    pub fn new(index: usize) -> Self {
        TaskId(index)
    }

    /// The raw dense index of this task.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A cyclo-static task: a name and one execution duration per phase.
///
/// A task with `p` phases executes its phases `1..=p` in order; one *iteration*
/// of the task is one pass over all phases. A Synchronous Dataflow (SDF) actor
/// is the special case `p == 1`.
///
/// # Examples
///
/// ```
/// use csdf::Task;
///
/// let t = Task::new("filter", vec![2, 1, 1]);
/// assert_eq!(t.phase_count(), 3);
/// assert_eq!(t.duration(2), 1);
/// assert_eq!(t.total_duration(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Task {
    name: String,
    durations: Vec<u64>,
}

impl Task {
    /// Creates a task from a name and per-phase durations.
    ///
    /// # Panics
    ///
    /// Panics if `durations` is empty; use [`crate::CsdfGraphBuilder`] for a
    /// fallible construction path.
    pub fn new(name: impl Into<String>, durations: Vec<u64>) -> Self {
        assert!(!durations.is_empty(), "a task needs at least one phase");
        Task {
            name: name.into(),
            durations,
        }
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of phases `ϕ(t)`.
    pub fn phase_count(&self) -> usize {
        self.durations.len()
    }

    /// Duration of the phase with 0-based index `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `phase >= self.phase_count()`.
    pub fn duration(&self, phase: usize) -> u64 {
        self.durations[phase]
    }

    /// All per-phase durations in phase order.
    pub fn durations(&self) -> &[u64] {
        &self.durations
    }

    /// Sum of the durations of all phases (the length of one iteration when
    /// executed back to back).
    pub fn total_duration(&self) -> u64 {
        self.durations.iter().sum()
    }

    /// Returns `true` when the task has a single phase (an SDF actor).
    pub fn is_sdf(&self) -> bool {
        self.durations.len() == 1
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} d={:?}", self.name, self.durations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_exposes_phase_information() {
        let t = Task::new("a", vec![1, 2, 3]);
        assert_eq!(t.name(), "a");
        assert_eq!(t.phase_count(), 3);
        assert_eq!(t.durations(), &[1, 2, 3]);
        assert_eq!(t.duration(0), 1);
        assert_eq!(t.total_duration(), 6);
        assert!(!t.is_sdf());
    }

    #[test]
    fn single_phase_task_is_sdf() {
        let t = Task::new("a", vec![5]);
        assert!(t.is_sdf());
        assert_eq!(t.total_duration(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_durations_panic() {
        let _ = Task::new("a", vec![]);
    }

    #[test]
    fn task_id_roundtrip() {
        let id = TaskId::new(4);
        assert_eq!(id.index(), 4);
        assert_eq!(id.to_string(), "t4");
    }
}
