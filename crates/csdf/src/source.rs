//! Side-band source locations recorded by the importers.
//!
//! Both importers — the [`crate::text`] line format and the SDF3 XML scanner
//! — already track 1-based line numbers for their error messages. A
//! [`SourceMap`] carries those same line numbers out of a *successful* import
//! so downstream consumers (the `csdf-lint` static analyzer in particular)
//! can attach source spans to diagnostics about individual tasks and
//! buffers.

use crate::buffer::BufferId;
use crate::task::TaskId;

/// Per-task and per-buffer source lines of an imported graph.
///
/// Entries are indexed by [`TaskId`] / [`BufferId`]; lookups outside the
/// recorded range (e.g. for reverse buffers a transform appended after the
/// import) return `None` rather than panic, so a map taken from an importer
/// stays usable after the graph has been enlarged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    task_lines: Vec<Option<usize>>,
    buffer_lines: Vec<Option<usize>>,
}

impl SourceMap {
    /// Builds a map from per-task and per-buffer line vectors, in id order.
    pub fn new(task_lines: Vec<Option<usize>>, buffer_lines: Vec<Option<usize>>) -> SourceMap {
        SourceMap {
            task_lines,
            buffer_lines,
        }
    }

    /// The 1-based source line the task was declared on, when recorded.
    pub fn task_line(&self, task: TaskId) -> Option<usize> {
        self.task_lines.get(task.index()).copied().flatten()
    }

    /// The 1-based source line the buffer (channel) was declared on, when
    /// recorded.
    pub fn buffer_line(&self, buffer: BufferId) -> Option<usize> {
        self.buffer_lines.get(buffer.index()).copied().flatten()
    }

    /// Whether the map carries no locations at all.
    pub fn is_empty(&self) -> bool {
        self.task_lines.is_empty() && self.buffer_lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_lookups_return_none() {
        let map = SourceMap::new(vec![Some(2), None], vec![Some(5)]);
        assert_eq!(map.task_line(TaskId::new(0)), Some(2));
        assert_eq!(map.task_line(TaskId::new(1)), None);
        assert_eq!(map.task_line(TaskId::new(7)), None);
        assert_eq!(map.buffer_line(BufferId::new(0)), Some(5));
        assert_eq!(map.buffer_line(BufferId::new(1)), None);
        assert!(!map.is_empty());
        assert!(SourceMap::default().is_empty());
    }
}
