//! Disabling auto-concurrency by adding one-token self-loops.

use crate::builder::CsdfGraphBuilder;
use crate::error::CsdfError;
use crate::graph::CsdfGraph;

/// Returns a copy of `graph` in which every task that does not already have a
/// self-loop buffer receives a one-token self-loop with unit rates on every
/// phase.
///
/// With such a loop, execution `n+1` of a task can only start after execution
/// `n` has completed, which is the usual "auto-concurrency disabled"
/// convention of the SDF3 tool and of the paper's benchmarks. Tasks that
/// already carry a self-loop (whatever its marking) are left untouched so that
/// intentionally pipelined tasks keep their degree of concurrency.
///
/// # Errors
///
/// Propagates builder validation errors, which cannot occur for a graph that
/// was itself built through [`CsdfGraphBuilder`].
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, transform::serialize_tasks};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 1, 1, 0);
/// let graph = builder.build()?;
/// let serialized = serialize_tasks(&graph)?;
/// assert_eq!(serialized.buffer_count(), 3);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn serialize_tasks(graph: &CsdfGraph) -> Result<CsdfGraph, CsdfError> {
    let mut builder = CsdfGraphBuilder::named(graph.name().to_string());
    for (_, task) in graph.tasks() {
        builder.add_task(task.name().to_string(), task.durations().to_vec());
    }
    for (_, buffer) in graph.buffers() {
        builder.add_buffer(
            buffer.source(),
            buffer.target(),
            buffer.production().to_vec(),
            buffer.consumption().to_vec(),
            buffer.initial_tokens(),
        );
    }
    for task_id in graph.task_ids() {
        let has_self_loop = graph
            .outgoing(task_id)
            .iter()
            .any(|&b| graph.buffer(b).is_self_loop());
        if !has_self_loop {
            builder.add_serializing_self_loop(task_id);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    #[test]
    fn adds_self_loops_only_where_missing() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![1, 1], vec![2], 0);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let s = serialize_tasks(&g).unwrap();
        assert_eq!(s.buffer_count(), 3);
        let self_loops = s
            .buffers()
            .filter(|(_, buffer)| buffer.is_self_loop())
            .count();
        assert_eq!(self_loops, 2);
        // The added loop covers every phase of the multi-phase task.
        let x_loop = s
            .buffers()
            .find(|(_, buffer)| buffer.is_self_loop() && buffer.source() == x)
            .unwrap()
            .1;
        assert_eq!(x_loop.production(), &[1, 1]);
        assert_eq!(x_loop.initial_tokens(), 1);
    }

    #[test]
    fn idempotent_on_already_serialized_graphs() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        b.add_serializing_self_loop(x);
        let g = b.build().unwrap();
        let s = serialize_tasks(&g).unwrap();
        assert_eq!(s.buffer_count(), g.buffer_count());
        let s2 = serialize_tasks(&s).unwrap();
        assert_eq!(s2.buffer_count(), s.buffer_count());
    }

    #[test]
    fn preserves_consistency() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 3, 5, 0);
        let g = b.build().unwrap();
        let s = serialize_tasks(&g).unwrap();
        let q = s.repetition_vector().unwrap();
        assert_eq!(q.get(x), 5);
        assert_eq!(q.get(y), 3);
    }
}
