//! SDF → HSDF expansion (Lee & Messerschmitt style).
//!
//! The expansion replaces every task `t` of a consistent SDF graph by `q_t`
//! copies — one per firing inside a graph iteration — and every buffer by
//! unit-rate precedence edges between the copies. The resulting Homogeneous
//! SDF graph has the same maximum throughput as the original and its minimum
//! period is a Maximum Cycle Mean problem, which is how the expansion-based
//! baseline methods (references [10] and [6] of the paper) evaluate
//! throughput.
//!
//! The expansion adds, for every consumer firing, a single precedence edge
//! from the *last* producer firing it depends on. This is sufficient because
//! the expansion also guarantees that the firings of each task are serialised:
//! tasks carrying a self-loop in the input expand it naturally into a chain,
//! and tasks without one receive an explicit chain of unit edges with a single
//! initial token closing the cycle.

use crate::builder::CsdfGraphBuilder;
use crate::error::CsdfError;
use crate::graph::CsdfGraph;
use crate::task::TaskId;

/// Result of [`expand_to_hsdf`]: the homogeneous graph plus the mapping from
/// original tasks to their firing copies.
#[derive(Debug, Clone)]
pub struct HsdfExpansion {
    /// The expanded homogeneous graph (all rates are 1).
    pub graph: CsdfGraph,
    /// `copies[t]` lists, in firing order, the expanded task ids of original
    /// task `t`.
    pub copies: Vec<Vec<TaskId>>,
}

impl HsdfExpansion {
    /// Total number of firing copies, i.e. `Σ_t q_t`.
    pub fn copy_count(&self) -> usize {
        self.copies.iter().map(Vec::len).sum()
    }

    /// Original task and firing index (0-based) of an expanded task id.
    pub fn original_of(&self, copy: TaskId) -> Option<(TaskId, usize)> {
        for (task_index, copies) in self.copies.iter().enumerate() {
            if let Some(position) = copies.iter().position(|&c| c == copy) {
                return Some((TaskId::new(task_index), position));
            }
        }
        None
    }
}

/// Expands a consistent SDF graph into an equivalent HSDF graph.
///
/// # Errors
///
/// * [`CsdfError::Inconsistent`] / [`CsdfError::Overflow`] if the repetition
///   vector cannot be computed or a delay does not fit in `u64`.
/// * [`CsdfError::RateLengthMismatch`] if the graph contains a multi-phase
///   (true CSDF) task: the expansion baseline is only defined for SDF graphs,
///   exactly as the expansion-based methods compared in the paper's Table 1.
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, transform::expand_to_hsdf};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// builder.add_sdf_buffer(a, b, 2, 3, 0);
/// let graph = builder.build()?;
/// let expansion = expand_to_hsdf(&graph)?;
/// // q = [3, 2] so the expansion has 5 firing copies.
/// assert_eq!(expansion.copy_count(), 5);
/// assert!(expansion.graph.is_hsdf());
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn expand_to_hsdf(graph: &CsdfGraph) -> Result<HsdfExpansion, CsdfError> {
    for (_, task) in graph.tasks() {
        if !task.is_sdf() {
            return Err(CsdfError::RateLengthMismatch {
                task: task.name().to_string(),
                phases: task.phase_count(),
                rate_len: 1,
            });
        }
    }
    let q = graph.repetition_vector()?;
    let mut builder = CsdfGraphBuilder::named(format!("{}_hsdf", graph.name()));
    let mut copies: Vec<Vec<TaskId>> = Vec::with_capacity(graph.task_count());
    for (task_id, task) in graph.tasks() {
        let mut task_copies = Vec::new();
        for firing in 0..q.get(task_id) {
            let copy = builder.add_sdf_task(
                format!("{}#{}", task.name(), firing + 1),
                task.duration(0),
            );
            task_copies.push(copy);
        }
        copies.push(task_copies);
    }

    // Precedence edges from the last needed producer firing of every consumer
    // firing.
    for (_, buffer) in graph.buffers() {
        let producer = buffer.source();
        let consumer = buffer.target();
        let p = buffer.total_production() as i128;
        let c = buffer.total_consumption() as i128;
        let m = buffer.initial_tokens() as i128;
        let qu = q.get(producer) as i128;
        let qv = q.get(consumer) as i128;
        for j in 1..=qv {
            // Smallest iteration w >= 1 of the consumer such that its j-th
            // firing needs at least one producer firing.
            let needed_offset = m + 1 - j * c;
            let w = 1 + if needed_offset > 0 {
                div_ceil(needed_offset, qv * c)
            } else {
                0
            };
            let global_consumption = ((w - 1) * qv + j) * c;
            let needed_firings = div_ceil(global_consumption - m, p);
            if needed_firings < 1 {
                // Enough initial tokens forever (cannot happen once w is
                // advanced, kept for safety).
                continue;
            }
            let producer_copy = ((needed_firings - 1) % qu) as usize;
            let producer_iteration = (needed_firings - 1) / qu + 1;
            let delay = w - producer_iteration;
            debug_assert!(delay >= 0, "stationary dependency must not look ahead");
            builder.add_sdf_buffer(
                copies[producer.index()][producer_copy],
                copies[consumer.index()][j as usize - 1],
                1,
                1,
                u64::try_from(delay).map_err(|_| CsdfError::Overflow)?,
            );
        }
    }

    // Serialisation chains for tasks that did not bring their own self-loop.
    for task_id in graph.task_ids() {
        let has_self_loop = graph
            .outgoing(task_id)
            .iter()
            .any(|&b| graph.buffer(b).is_self_loop());
        if has_self_loop {
            continue;
        }
        let task_copies = &copies[task_id.index()];
        let count = task_copies.len();
        if count == 1 {
            builder.add_sdf_buffer(task_copies[0], task_copies[0], 1, 1, 1);
        } else {
            for i in 0..count {
                let next = (i + 1) % count;
                let delay = if next == 0 { 1 } else { 0 };
                builder.add_sdf_buffer(task_copies[i], task_copies[next], 1, 1, delay);
            }
        }
    }

    Ok(HsdfExpansion {
        graph: builder.build()?,
        copies,
    })
}

fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    if a >= 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    #[test]
    fn expansion_size_matches_repetition_vector() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 2);
        b.add_sdf_buffer(x, y, 2, 3, 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        assert_eq!(e.copies[x.index()].len(), 3);
        assert_eq!(e.copies[y.index()].len(), 2);
        assert_eq!(e.copy_count(), 5);
        assert!(e.graph.is_hsdf());
        assert!(e.graph.is_consistent());
        let copy = e.copies[y.index()][1];
        assert_eq!(e.original_of(copy), Some((y, 1)));
    }

    #[test]
    fn dependencies_respect_initial_tokens() {
        // x -> y with rate 1/1 and 1 initial token: firing j of y depends on
        // firing j-1... expressed across iterations, y#1 depends on x#1 of the
        // previous iteration (delay 1).
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 1);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        let edge = e
            .graph
            .buffers()
            .find(|(_, buffer)| {
                buffer.source() == e.copies[x.index()][0]
                    && buffer.target() == e.copies[y.index()][0]
            })
            .unwrap()
            .1;
        assert_eq!(edge.initial_tokens(), 1);
    }

    #[test]
    fn zero_token_chain_dependency() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        let edge = e
            .graph
            .buffers()
            .find(|(_, buffer)| {
                buffer.source() == e.copies[x.index()][0]
                    && buffer.target() == e.copies[y.index()][0]
            })
            .unwrap()
            .1;
        assert_eq!(edge.initial_tokens(), 0);
    }

    #[test]
    fn serialization_chain_is_added() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        // q_y = 2, so y has a chain y#1 -> y#2 (0 tokens) and y#2 -> y#1 (1).
        let chain_edges: Vec<_> = e
            .graph
            .buffers()
            .filter(|(_, buffer)| {
                e.copies[y.index()].contains(&buffer.source())
                    && e.copies[y.index()].contains(&buffer.target())
            })
            .collect();
        assert_eq!(chain_edges.len(), 2);
        let total_tokens: u64 = chain_edges.iter().map(|(_, b)| b.initial_tokens()).sum();
        assert_eq!(total_tokens, 1);
    }

    #[test]
    fn existing_self_loops_are_expanded_not_duplicated() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        // The self-loop of y (q_y = 2) expands to exactly 2 intra-task edges,
        // no additional chain is appended.
        let intra: usize = e
            .graph
            .buffers()
            .filter(|(_, buffer)| {
                e.copies[y.index()].contains(&buffer.source())
                    && e.copies[y.index()].contains(&buffer.target())
            })
            .count();
        assert_eq!(intra, 2);
    }

    #[test]
    fn multi_phase_tasks_are_rejected() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![1, 1], vec![2], 0);
        let g = b.build().unwrap();
        assert!(expand_to_hsdf(&g).is_err());
    }

    #[test]
    fn div_ceil_handles_signs() {
        assert_eq!(div_ceil(7, 3), 3);
        assert_eq!(div_ceil(6, 3), 2);
        assert_eq!(div_ceil(0, 3), 0);
        assert_eq!(div_ceil(-1, 3), -1 / 3);
    }
}
