//! (C)SDF → HSDF expansion (Lee & Messerschmitt style).
//!
//! The expansion replaces every task `t` of a consistent CSDF graph by
//! `q_t · φ_t` copies — one per *phase firing* inside a graph iteration — and
//! every buffer by unit-rate precedence edges between the copies. The
//! resulting Homogeneous SDF graph has the same maximum throughput as the
//! original and its minimum period is a Maximum Cycle Mean problem, which is
//! how the expansion-based baseline methods (references [10] and [6] of the
//! paper) evaluate throughput. For plain SDF graphs (`φ_t = 1` everywhere)
//! this reduces to the classical `q_t`-copies expansion.
//!
//! The expansion adds, for every consumer firing, a single precedence edge
//! from the *last* producer firing it depends on. This is sufficient because
//! the expansion also guarantees that the firings of each task are serialised:
//! tasks carrying a self-loop in the input expand it naturally into a chain,
//! and tasks without one receive an explicit chain of unit edges with a single
//! initial token closing the cycle.

use crate::builder::CsdfGraphBuilder;
use crate::error::CsdfError;
use crate::graph::CsdfGraph;
use crate::task::TaskId;

/// Result of [`expand_to_hsdf`]: the homogeneous graph plus the mapping from
/// original tasks to their firing copies.
#[derive(Debug, Clone)]
pub struct HsdfExpansion {
    /// The expanded homogeneous graph (all rates are 1).
    pub graph: CsdfGraph,
    /// `copies[t]` lists, in phase-firing order, the expanded task ids of
    /// original task `t` (`q_t · φ_t` entries; firing `i` executes phase
    /// `i mod φ_t`).
    pub copies: Vec<Vec<TaskId>>,
}

impl HsdfExpansion {
    /// Total number of firing copies, i.e. `Σ_t q_t · φ_t`.
    pub fn copy_count(&self) -> usize {
        self.copies.iter().map(Vec::len).sum()
    }

    /// Original task and firing index (0-based) of an expanded task id.
    pub fn original_of(&self, copy: TaskId) -> Option<(TaskId, usize)> {
        for (task_index, copies) in self.copies.iter().enumerate() {
            if let Some(position) = copies.iter().position(|&c| c == copy) {
                return Some((TaskId::new(task_index), position));
            }
        }
        None
    }
}

/// Expands a consistent (C)SDF graph into an equivalent HSDF graph.
///
/// Every task `t` becomes `q_t · φ_t` unit-rate copies, one per phase firing
/// of a graph iteration; copy `i` carries the duration of phase `i mod φ_t`.
///
/// # Errors
///
/// * [`CsdfError::Inconsistent`] / [`CsdfError::Overflow`] if the repetition
///   vector cannot be computed or a delay does not fit in `u64`.
///
/// # Panics
///
/// Panics only if the token-accounting invariant breaks (a prefix sum fails
/// to reach its cycle total).
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, transform::expand_to_hsdf};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_task("b", vec![1, 1]);
/// builder.add_buffer(a, b, vec![2], vec![1, 2], 0);
/// let graph = builder.build()?;
/// let expansion = expand_to_hsdf(&graph)?;
/// // q = [3, 2] and b has two phases, so the expansion has 3 + 2·2 copies.
/// assert_eq!(expansion.copy_count(), 7);
/// assert!(expansion.graph.is_hsdf());
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn expand_to_hsdf(graph: &CsdfGraph) -> Result<HsdfExpansion, CsdfError> {
    let q = graph.repetition_vector()?;
    let mut builder = CsdfGraphBuilder::named(format!("{}_hsdf", graph.name()));
    let mut copies: Vec<Vec<TaskId>> = Vec::with_capacity(graph.task_count());
    for (task_id, task) in graph.tasks() {
        let phases = task.phase_count();
        let mut task_copies = Vec::new();
        for firing in 0..q.get(task_id) as usize * phases {
            let copy = builder.add_sdf_task(
                format!("{}#{}", task.name(), firing + 1),
                task.duration(firing % phases),
            );
            task_copies.push(copy);
        }
        copies.push(task_copies);
    }

    // Precedence edges from the last needed producer phase firing of every
    // consumer phase firing.
    for (_, buffer) in graph.buffers() {
        let producer = buffer.source();
        let consumer = buffer.target();
        let phases_u = graph.task(producer).phase_count() as i128;
        let phases_v = graph.task(consumer).phase_count() as i128;
        let sum_p = buffer.total_production() as i128;
        let sum_c = buffer.total_consumption() as i128;
        let m = buffer.initial_tokens() as i128;
        if sum_c == 0 {
            // The consumer never reads this buffer: no precedence at all.
            continue;
        }
        // Cumulative production within one phase cycle: prefix_p[i] = tokens
        // after the first i phase firings of a cycle (prefix_p[0] = 0). Only
        // the producer side needs the explicit array — it is searched in
        // reverse (production count -> phase index); the consumer side uses
        // `Buffer::cumulative_consumption` directly.
        let prefix_p: Vec<i128> = std::iter::once(0)
            .chain(buffer.production().iter().scan(0i128, |acc, &r| {
                *acc += r as i128;
                Some(*acc)
            }))
            .collect();
        let firings_u = q.get(producer) as i128 * phases_u;
        let firings_v = q.get(consumer) as i128 * phases_v;
        let consumed_per_iteration = q.get(consumer) as i128 * sum_c;
        for j in 1..=firings_v {
            let phase_v = ((j - 1) % phases_v) as usize;
            if buffer.consumption_at(phase_v) == 0 {
                // This phase consumes nothing from the buffer: no dependency.
                continue;
            }
            // Tokens consumed through the end of the j-th phase firing of one
            // iteration (`Oa` of the paper; the cycle index is 1-based).
            let consumed_within =
                buffer.cumulative_consumption(phase_v, ((j - 1) / phases_v + 1) as u64) as i128;
            // Smallest iteration w >= 1 of the consumer such that its j-th
            // phase firing needs at least one producer firing.
            let needed_offset = m + 1 - consumed_within;
            let w = 1 + if needed_offset > 0 {
                div_ceil(needed_offset, consumed_per_iteration)
            } else {
                0
            };
            let global_consumption = (w - 1) * consumed_per_iteration + consumed_within;
            // Smallest global count n of producer phase firings with
            // cumulative production >= global_consumption - m.
            let needed = global_consumption - m;
            if needed < 1 {
                // Enough initial tokens forever (cannot happen once w is
                // advanced, kept for safety).
                continue;
            }
            let full_cycles = (needed - 1).div_euclid(sum_p);
            let remainder = needed - full_cycles * sum_p; // in 1..=sum_p
            let within_cycle = prefix_p
                .iter()
                .position(|&produced| produced >= remainder)
                .expect("prefix sums reach the cycle total") as i128;
            let needed_firings = full_cycles * phases_u + within_cycle;
            let producer_copy = ((needed_firings - 1) % firings_u) as usize;
            let producer_iteration = (needed_firings - 1) / firings_u + 1;
            let delay = w - producer_iteration;
            debug_assert!(delay >= 0, "stationary dependency must not look ahead");
            builder.add_sdf_buffer(
                copies[producer.index()][producer_copy],
                copies[consumer.index()][j as usize - 1],
                1,
                1,
                u64::try_from(delay).map_err(|_| CsdfError::Overflow)?,
            );
        }
    }

    // Serialisation chains for tasks that did not bring their own self-loop.
    for task_id in graph.task_ids() {
        let has_self_loop = graph
            .outgoing(task_id)
            .iter()
            .any(|&b| graph.buffer(b).is_self_loop());
        if has_self_loop {
            continue;
        }
        let task_copies = &copies[task_id.index()];
        let count = task_copies.len();
        if count == 1 {
            builder.add_sdf_buffer(task_copies[0], task_copies[0], 1, 1, 1);
        } else {
            for i in 0..count {
                let next = (i + 1) % count;
                let delay = if next == 0 { 1 } else { 0 };
                builder.add_sdf_buffer(task_copies[i], task_copies[next], 1, 1, delay);
            }
        }
    }

    Ok(HsdfExpansion {
        graph: builder.build()?,
        copies,
    })
}

fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    if a >= 0 {
        (a + b - 1) / b
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    #[test]
    fn expansion_size_matches_repetition_vector() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 2);
        b.add_sdf_buffer(x, y, 2, 3, 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        assert_eq!(e.copies[x.index()].len(), 3);
        assert_eq!(e.copies[y.index()].len(), 2);
        assert_eq!(e.copy_count(), 5);
        assert!(e.graph.is_hsdf());
        assert!(e.graph.is_consistent());
        let copy = e.copies[y.index()][1];
        assert_eq!(e.original_of(copy), Some((y, 1)));
    }

    #[test]
    fn dependencies_respect_initial_tokens() {
        // x -> y with rate 1/1 and 1 initial token: firing j of y depends on
        // firing j-1... expressed across iterations, y#1 depends on x#1 of the
        // previous iteration (delay 1).
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 1);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        let edge = e
            .graph
            .buffers()
            .find(|(_, buffer)| {
                buffer.source() == e.copies[x.index()][0]
                    && buffer.target() == e.copies[y.index()][0]
            })
            .unwrap()
            .1;
        assert_eq!(edge.initial_tokens(), 1);
    }

    #[test]
    fn zero_token_chain_dependency() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 1, 1, 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        let edge = e
            .graph
            .buffers()
            .find(|(_, buffer)| {
                buffer.source() == e.copies[x.index()][0]
                    && buffer.target() == e.copies[y.index()][0]
            })
            .unwrap()
            .1;
        assert_eq!(edge.initial_tokens(), 0);
    }

    #[test]
    fn serialization_chain_is_added() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        // q_y = 2, so y has a chain y#1 -> y#2 (0 tokens) and y#2 -> y#1 (1).
        let chain_edges: Vec<_> = e
            .graph
            .buffers()
            .filter(|(_, buffer)| {
                e.copies[y.index()].contains(&buffer.source())
                    && e.copies[y.index()].contains(&buffer.target())
            })
            .collect();
        assert_eq!(chain_edges.len(), 2);
        let total_tokens: u64 = chain_edges.iter().map(|(_, b)| b.initial_tokens()).sum();
        assert_eq!(total_tokens, 1);
    }

    #[test]
    fn existing_self_loops_are_expanded_not_duplicated() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 1, 0);
        b.add_serializing_self_loop(y);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        // The self-loop of y (q_y = 2) expands to exactly 2 intra-task edges,
        // no additional chain is appended.
        let intra: usize = e
            .graph
            .buffers()
            .filter(|(_, buffer)| {
                e.copies[y.index()].contains(&buffer.source())
                    && e.copies[y.index()].contains(&buffer.target())
            })
            .count();
        assert_eq!(intra, 2);
    }

    #[test]
    fn multi_phase_tasks_expand_to_one_copy_per_phase_firing() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 3]);
        let y = b.add_sdf_task("y", 1);
        b.add_buffer(x, y, vec![1, 1], vec![2], 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        // q = [1, 1]; x has two phases, y one: three copies in total.
        assert_eq!(e.copies[x.index()].len(), 2);
        assert_eq!(e.copies[y.index()].len(), 1);
        assert!(e.graph.is_hsdf());
        // Copies carry their phase's duration.
        assert_eq!(e.graph.task(e.copies[x.index()][0]).duration(0), 1);
        assert_eq!(e.graph.task(e.copies[x.index()][1]).duration(0), 3);
        // y's single firing consumes 2 tokens, available only after both
        // phases of x: the dependency points at x#2.
        let edge = e
            .graph
            .buffers()
            .find(|(_, buffer)| buffer.target() == e.copies[y.index()][0])
            .unwrap()
            .1;
        assert_eq!(edge.source(), e.copies[x.index()][1]);
        assert_eq!(edge.initial_tokens(), 0);
    }

    #[test]
    fn zero_rate_phases_produce_no_dependency() {
        // y's first phase consumes nothing: only its second phase depends on
        // the producer.
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_task("y", vec![1, 1]);
        b.add_buffer(x, y, vec![1], vec![0, 1], 0);
        let g = b.build().unwrap();
        let e = expand_to_hsdf(&g).unwrap();
        let targets: Vec<_> = e
            .graph
            .buffers()
            .filter(|(_, buffer)| {
                buffer.source() == e.copies[x.index()][0]
                    && e.copies[y.index()].contains(&buffer.target())
            })
            .map(|(_, buffer)| buffer.target())
            .collect();
        assert_eq!(targets, vec![e.copies[y.index()][1]]);
    }

    #[test]
    fn div_ceil_handles_signs() {
        assert_eq!(div_ceil(7, 3), 3);
        assert_eq!(div_ceil(6, 3), 2);
        assert_eq!(div_ceil(0, 3), 0);
        assert_eq!(div_ceil(-1, 3), -1 / 3);
    }
}
