//! Graph-to-graph transformations.
//!
//! These transformations produce new [`CsdfGraph`](crate::CsdfGraph) values
//! and never mutate their input:
//!
//! * [`bound_buffers`] / [`bound_all_buffers`] model finite buffer capacities
//!   by adding reverse "space" buffers (used by the fixed-buffer-size rows of
//!   the paper's Table 2); the `*_tracked` variants return a [`BoundedGraph`]
//!   that records the forward → reverse pairing so capacities can later be
//!   re-sized *in place* via [`CsdfGraph::set_capacity`](crate::CsdfGraph::set_capacity);
//! * [`serialize_tasks`] adds one-token self-loops so that the executions of
//!   each task cannot overlap (auto-concurrency disabled, the convention used
//!   by the SDF3 benchmark);
//! * [`expand_to_hsdf`] performs the classical SDF → HSDF expansion used by
//!   the expansion-based baseline methods.

mod buffer_capacity;
mod hsdf;
mod serialize;

pub use buffer_capacity::{
    bound_all_buffers, bound_all_buffers_tracked, bound_buffers, bound_buffers_tracked,
    BoundedGraph, BufferCapacity,
};
pub use hsdf::{expand_to_hsdf, HsdfExpansion};
pub use serialize::serialize_tasks;
