//! Modelling of bounded buffer capacities.
//!
//! A buffer of capacity `C` is modelled, as usual in dataflow analysis, by a
//! reverse buffer from the consumer back to the producer: the producer must
//! acquire `in_b(p)` units of free space before writing and the consumer
//! releases `out_b(p')` units after reading. The reverse buffer initially
//! holds `C − M0(b)` tokens of free space. Throughput evaluation of the
//! bounded graph is then throughput evaluation of the enlarged unbounded
//! graph, which is exactly how the paper's Table 2 "fixed buffer size" rows
//! double the buffer count of every application.

use crate::buffer::BufferId;
use crate::builder::CsdfGraphBuilder;
use crate::error::CsdfError;
use crate::graph::CsdfGraph;

/// A capacity assignment for one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferCapacity {
    /// The buffer being bounded.
    pub buffer: BufferId,
    /// Maximum number of tokens the buffer may hold at any time.
    pub capacity: u64,
}

/// A bounded graph together with the forward → reverse buffer pairing the
/// bounding introduced, as produced by [`bound_buffers_tracked`].
///
/// The pairing is what makes capacities *mutable in place*: a capacity `C`
/// for forward buffer `b` is realised as `C − M0(b)` initial tokens on its
/// reverse buffer, so re-sizing a buffer is a marking mutation
/// ([`CsdfGraph::set_capacity`]) instead of a graph rebuild — the entry point
/// of the `kperiodic` analysis-session / `explore` design-space machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedGraph {
    graph: CsdfGraph,
    /// Reverse buffer id per original buffer id (`None` for self-loops and
    /// buffers left unbounded).
    reverse_of: Vec<Option<BufferId>>,
}

impl BoundedGraph {
    /// The bounded graph (original buffers first, reverse buffers appended in
    /// the order the capacities were listed).
    pub fn graph(&self) -> &CsdfGraph {
        &self.graph
    }

    /// Mutable access to the bounded graph, e.g. to re-size capacities via
    /// [`CsdfGraph::set_capacity`] with the pairing from
    /// [`BoundedGraph::reverse_of`].
    pub fn graph_mut(&mut self) -> &mut CsdfGraph {
        &mut self.graph
    }

    /// Consumes the wrapper and returns the bounded graph.
    pub fn into_graph(self) -> CsdfGraph {
        self.graph
    }

    /// The reverse (back-pressure) buffer modelling `buffer`'s capacity, when
    /// the buffer was bounded.
    pub fn reverse_of(&self, buffer: BufferId) -> Option<BufferId> {
        self.reverse_of.get(buffer.index()).copied().flatten()
    }

    /// Iterator over all `(forward, reverse)` buffer pairs, in forward-buffer
    /// order.
    pub fn bounded_pairs(&self) -> impl Iterator<Item = (BufferId, BufferId)> + '_ {
        self.reverse_of
            .iter()
            .enumerate()
            .filter_map(|(index, reverse)| reverse.map(|reverse| (BufferId::new(index), reverse)))
    }

    /// The current capacity of a bounded buffer: its initial tokens plus the
    /// free space on its reverse buffer. `None` for unbounded buffers.
    pub fn capacity_of(&self, buffer: BufferId) -> Option<u64> {
        let reverse = self.reverse_of(buffer)?;
        Some(
            self.graph.buffer(buffer).initial_tokens()
                + self.graph.buffer(reverse).initial_tokens(),
        )
    }

    /// Sum of the capacities of all bounded buffers — the storage axis of a
    /// throughput/storage trade-off.
    pub fn total_storage(&self) -> u64 {
        self.bounded_pairs()
            .map(|(forward, reverse)| {
                self.graph.buffer(forward).initial_tokens()
                    + self.graph.buffer(reverse).initial_tokens()
            })
            .sum()
    }
}

/// Returns a graph in which the listed buffers are bounded to the given
/// capacities; unlisted buffers stay unbounded.
///
/// Self-loop buffers are never bounded (a reverse self-loop would be
/// meaningless) and requesting a capacity for one is ignored.
///
/// Listing the same buffer twice is rejected: each entry adds one reverse
/// buffer, so duplicates would silently over-constrain the graph (two
/// back-pressure channels for one buffer) and change its throughput.
///
/// # Errors
///
/// * [`CsdfError::BufferIndexOutOfRange`] if a capacity references a missing
///   buffer.
/// * [`CsdfError::CapacityBelowMarking`] if a capacity is smaller than the
///   buffer's initial marking.
/// * [`CsdfError::DuplicateBufferCapacity`] if the same buffer appears in
///   more than one [`BufferCapacity`] entry.
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, transform::{bound_buffers, BufferCapacity}};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// let channel = builder.add_sdf_buffer(a, b, 1, 1, 0);
/// let graph = builder.build()?;
/// let bounded = bound_buffers(&graph, &[BufferCapacity { buffer: channel, capacity: 2 }])?;
/// assert_eq!(bounded.buffer_count(), 2);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn bound_buffers(
    graph: &CsdfGraph,
    capacities: &[BufferCapacity],
) -> Result<CsdfGraph, CsdfError> {
    bound_buffers_tracked(graph, capacities).map(BoundedGraph::into_graph)
}

/// Same as [`bound_buffers`], but also records which reverse buffer models
/// each capacity so capacities can later be re-sized in place with
/// [`CsdfGraph::set_capacity`].
///
/// # Errors
///
/// Same as [`bound_buffers`].
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, transform::{bound_buffers_tracked, BufferCapacity}};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// let channel = builder.add_sdf_buffer(a, b, 1, 1, 0);
/// let graph = builder.build()?;
/// let mut bounded =
///     bound_buffers_tracked(&graph, &[BufferCapacity { buffer: channel, capacity: 2 }])?;
/// let reverse = bounded.reverse_of(channel).expect("tracked");
/// bounded.graph_mut().set_capacity(channel, reverse, 5)?;
/// assert_eq!(bounded.capacity_of(channel), Some(5));
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn bound_buffers_tracked(
    graph: &CsdfGraph,
    capacities: &[BufferCapacity],
) -> Result<BoundedGraph, CsdfError> {
    let mut builder = CsdfGraphBuilder::named(format!("{}_bounded", graph.name()));
    for (_, task) in graph.tasks() {
        builder.add_task(task.name().to_string(), task.durations().to_vec());
    }
    for (_, buffer) in graph.buffers() {
        builder.add_buffer(
            buffer.source(),
            buffer.target(),
            buffer.production().to_vec(),
            buffer.consumption().to_vec(),
            buffer.initial_tokens(),
        );
    }
    let mut reverse_of: Vec<Option<BufferId>> = vec![None; graph.buffer_count()];
    let mut bounded = vec![false; graph.buffer_count()];
    for assignment in capacities {
        let buffer = graph.try_buffer(assignment.buffer)?;
        if bounded[assignment.buffer.index()] {
            return Err(CsdfError::DuplicateBufferCapacity {
                buffer: graph.buffer_ref(assignment.buffer),
            });
        }
        bounded[assignment.buffer.index()] = true;
        if buffer.is_self_loop() {
            continue;
        }
        if assignment.capacity < buffer.initial_tokens() {
            return Err(CsdfError::CapacityBelowMarking {
                buffer: graph.buffer_ref(assignment.buffer),
                capacity: assignment.capacity,
                marking: buffer.initial_tokens(),
            });
        }
        reverse_of[assignment.buffer.index()] = Some(builder.add_buffer(
            buffer.target(),
            buffer.source(),
            buffer.consumption().to_vec(),
            buffer.production().to_vec(),
            assignment.capacity - buffer.initial_tokens(),
        ));
    }
    Ok(BoundedGraph {
        graph: builder.build()?,
        reverse_of,
    })
}

/// Bounds every non-self-loop buffer of the graph to the capacity returned by
/// `capacity_of`, which receives the buffer id and the buffer itself.
///
/// A convenient default for experiments is a small multiple of
/// `i_b + o_b + M0(b)`, which is always live for consistent graphs when the
/// multiple is large enough.
///
/// # Errors
///
/// Same as [`bound_buffers`].
pub fn bound_all_buffers<F>(graph: &CsdfGraph, capacity_of: F) -> Result<CsdfGraph, CsdfError>
where
    F: FnMut(BufferId, &crate::Buffer) -> u64,
{
    bound_all_buffers_tracked(graph, capacity_of).map(BoundedGraph::into_graph)
}

/// Same as [`bound_all_buffers`] but returns the [`BoundedGraph`] with the
/// forward → reverse pairing, for in-place capacity re-sizing.
///
/// # Errors
///
/// Same as [`bound_buffers`].
pub fn bound_all_buffers_tracked<F>(
    graph: &CsdfGraph,
    mut capacity_of: F,
) -> Result<BoundedGraph, CsdfError>
where
    F: FnMut(BufferId, &crate::Buffer) -> u64,
{
    let capacities: Vec<BufferCapacity> = graph
        .buffers()
        .filter(|(_, b)| !b.is_self_loop())
        .map(|(id, b)| BufferCapacity {
            buffer: id,
            capacity: capacity_of(id, b).max(b.initial_tokens()),
        })
        .collect();
    bound_buffers_tracked(graph, &capacities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    fn two_task_graph(marking: u64) -> (CsdfGraph, BufferId) {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 2);
        let chan = b.add_buffer(x, y, vec![1, 2], vec![3], marking);
        (b.build().unwrap(), chan)
    }

    #[test]
    fn reverse_buffer_mirrors_rates() {
        let (g, chan) = two_task_graph(1);
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 5,
            }],
        )
        .unwrap();
        assert_eq!(bounded.buffer_count(), 2);
        let reverse = bounded.buffer(BufferId::new(1));
        assert_eq!(reverse.source(), g.buffer(chan).target());
        assert_eq!(reverse.target(), g.buffer(chan).source());
        assert_eq!(reverse.production(), &[3]);
        assert_eq!(reverse.consumption(), &[1, 2]);
        assert_eq!(reverse.initial_tokens(), 4);
        assert!(bounded.is_consistent());
    }

    #[test]
    fn capacity_below_marking_is_rejected() {
        let (g, chan) = two_task_graph(6);
        let err = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 5,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, CsdfError::CapacityBelowMarking { .. }));
    }

    #[test]
    fn unknown_buffer_is_rejected() {
        let (g, _) = two_task_graph(0);
        let err = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: BufferId::new(7),
                capacity: 5,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, CsdfError::BufferIndexOutOfRange(7)));
    }

    #[test]
    fn duplicate_capacity_entries_are_rejected() {
        // Before the check, each duplicate entry silently added another
        // reverse buffer, doubling the back-pressure and changing the
        // throughput of the bounded graph.
        let (g, chan) = two_task_graph(1);
        let err = bound_buffers(
            &g,
            &[
                BufferCapacity {
                    buffer: chan,
                    capacity: 6,
                },
                BufferCapacity {
                    buffer: chan,
                    capacity: 9,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CsdfError::DuplicateBufferCapacity { buffer } if buffer.index == 0
        ));
        // A single entry still works.
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 6,
            }],
        )
        .unwrap();
        assert_eq!(bounded.buffer_count(), 2);
    }

    #[test]
    fn bound_all_buffers_skips_self_loops() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 3, 0);
        b.add_serializing_self_loop(x);
        let g = b.build().unwrap();
        let bounded =
            bound_all_buffers(&g, |_, b| b.total_production() + b.total_consumption()).unwrap();
        // one forward channel + self loop + one reverse channel
        assert_eq!(bounded.buffer_count(), 3);
    }

    #[test]
    fn tracked_bounding_records_the_pairing() {
        let (g, chan) = two_task_graph(1);
        let mut bounded = bound_all_buffers_tracked(&g, |_, _| 5).unwrap();
        let reverse = bounded
            .reverse_of(chan)
            .expect("bounded buffer has a reverse");
        assert_eq!(bounded.capacity_of(chan), Some(5));
        assert_eq!(bounded.total_storage(), 5);
        assert_eq!(
            bounded.bounded_pairs().collect::<Vec<_>>(),
            vec![(chan, reverse)]
        );
        assert!(bounded
            .graph()
            .buffer(reverse)
            .is_reverse_of(bounded.graph().buffer(chan)));

        // In-place re-sizing through the pairing equals re-bounding from
        // scratch at the new capacity.
        bounded.graph_mut().set_capacity(chan, reverse, 9).unwrap();
        assert_eq!(bounded.capacity_of(chan), Some(9));
        let rebuilt = bound_all_buffers(&g, |_, _| 9).unwrap();
        assert_eq!(bounded.graph(), &rebuilt);
    }

    #[test]
    fn set_capacity_validates_the_pair() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        let forward = b.add_sdf_buffer(x, y, 2, 3, 1);
        let unrelated = b.add_sdf_buffer(x, y, 1, 1, 0);
        let mut g = b.build().unwrap();
        // Not a mirror of `forward`.
        assert!(matches!(
            g.set_capacity(forward, unrelated, 9),
            Err(CsdfError::NotAReverseBuffer { forward, reverse })
                if forward.index == 0 && reverse.index == 1 && forward.source == "x"
        ));
        // A buffer is never its own reverse.
        assert!(matches!(
            g.set_capacity(forward, forward, 9),
            Err(CsdfError::NotAReverseBuffer { .. })
        ));

        let bounded = bound_buffers_tracked(
            &g,
            &[BufferCapacity {
                buffer: forward,
                capacity: 6,
            }],
        )
        .unwrap();
        let reverse = bounded.reverse_of(forward).unwrap();
        let mut graph = bounded.into_graph();
        // Capacity must cover the forward marking.
        assert!(matches!(
            graph.set_capacity(forward, reverse, 0),
            Err(CsdfError::CapacityBelowMarking {
                buffer,
                capacity: 0,
                marking: 1
            }) if buffer.index == 0
        ));
        // The previous capacity is reported.
        assert_eq!(graph.set_capacity(forward, reverse, 8).unwrap(), 6);
        assert_eq!(graph.buffer(reverse).initial_tokens(), 7);
        assert!(matches!(
            graph.set_capacity(BufferId::new(9), reverse, 8),
            Err(CsdfError::BufferIndexOutOfRange(9))
        ));
    }

    #[test]
    fn doubles_buffer_count_like_table2() {
        // The paper's Table 2 reports exactly 2x the buffer count when buffer
        // sizes are fixed; bounding all non-self-loop buffers reproduces that.
        let (g, chan) = two_task_graph(0);
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 6,
            }],
        )
        .unwrap();
        assert_eq!(bounded.buffer_count(), 2 * g.buffer_count());
    }
}
