//! Modelling of bounded buffer capacities.
//!
//! A buffer of capacity `C` is modelled, as usual in dataflow analysis, by a
//! reverse buffer from the consumer back to the producer: the producer must
//! acquire `in_b(p)` units of free space before writing and the consumer
//! releases `out_b(p')` units after reading. The reverse buffer initially
//! holds `C − M0(b)` tokens of free space. Throughput evaluation of the
//! bounded graph is then throughput evaluation of the enlarged unbounded
//! graph, which is exactly how the paper's Table 2 "fixed buffer size" rows
//! double the buffer count of every application.

use crate::buffer::BufferId;
use crate::builder::CsdfGraphBuilder;
use crate::error::CsdfError;
use crate::graph::CsdfGraph;

/// A capacity assignment for one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferCapacity {
    /// The buffer being bounded.
    pub buffer: BufferId,
    /// Maximum number of tokens the buffer may hold at any time.
    pub capacity: u64,
}

/// Returns a graph in which the listed buffers are bounded to the given
/// capacities; unlisted buffers stay unbounded.
///
/// Self-loop buffers are never bounded (a reverse self-loop would be
/// meaningless) and requesting a capacity for one is ignored.
///
/// Listing the same buffer twice is rejected: each entry adds one reverse
/// buffer, so duplicates would silently over-constrain the graph (two
/// back-pressure channels for one buffer) and change its throughput.
///
/// # Errors
///
/// * [`CsdfError::BufferIndexOutOfRange`] if a capacity references a missing
///   buffer.
/// * [`CsdfError::CapacityBelowMarking`] if a capacity is smaller than the
///   buffer's initial marking.
/// * [`CsdfError::DuplicateBufferCapacity`] if the same buffer appears in
///   more than one [`BufferCapacity`] entry.
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, transform::{bound_buffers, BufferCapacity}};
///
/// let mut builder = CsdfGraphBuilder::new();
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 1);
/// let channel = builder.add_sdf_buffer(a, b, 1, 1, 0);
/// let graph = builder.build()?;
/// let bounded = bound_buffers(&graph, &[BufferCapacity { buffer: channel, capacity: 2 }])?;
/// assert_eq!(bounded.buffer_count(), 2);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn bound_buffers(
    graph: &CsdfGraph,
    capacities: &[BufferCapacity],
) -> Result<CsdfGraph, CsdfError> {
    let mut builder = CsdfGraphBuilder::named(format!("{}_bounded", graph.name()));
    for (_, task) in graph.tasks() {
        builder.add_task(task.name().to_string(), task.durations().to_vec());
    }
    for (_, buffer) in graph.buffers() {
        builder.add_buffer(
            buffer.source(),
            buffer.target(),
            buffer.production().to_vec(),
            buffer.consumption().to_vec(),
            buffer.initial_tokens(),
        );
    }
    let mut bounded = vec![false; graph.buffer_count()];
    for assignment in capacities {
        let buffer = graph.try_buffer(assignment.buffer)?;
        if bounded[assignment.buffer.index()] {
            return Err(CsdfError::DuplicateBufferCapacity {
                buffer: assignment.buffer.index(),
            });
        }
        bounded[assignment.buffer.index()] = true;
        if buffer.is_self_loop() {
            continue;
        }
        if assignment.capacity < buffer.initial_tokens() {
            return Err(CsdfError::CapacityBelowMarking {
                buffer: assignment.buffer.index(),
                capacity: assignment.capacity,
                marking: buffer.initial_tokens(),
            });
        }
        builder.add_buffer(
            buffer.target(),
            buffer.source(),
            buffer.consumption().to_vec(),
            buffer.production().to_vec(),
            assignment.capacity - buffer.initial_tokens(),
        );
    }
    builder.build()
}

/// Bounds every non-self-loop buffer of the graph to the capacity returned by
/// `capacity_of`, which receives the buffer id and the buffer itself.
///
/// A convenient default for experiments is a small multiple of
/// `i_b + o_b + M0(b)`, which is always live for consistent graphs when the
/// multiple is large enough.
///
/// # Errors
///
/// Same as [`bound_buffers`].
pub fn bound_all_buffers<F>(graph: &CsdfGraph, mut capacity_of: F) -> Result<CsdfGraph, CsdfError>
where
    F: FnMut(BufferId, &crate::Buffer) -> u64,
{
    let capacities: Vec<BufferCapacity> = graph
        .buffers()
        .filter(|(_, b)| !b.is_self_loop())
        .map(|(id, b)| BufferCapacity {
            buffer: id,
            capacity: capacity_of(id, b).max(b.initial_tokens()),
        })
        .collect();
    bound_buffers(graph, &capacities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    fn two_task_graph(marking: u64) -> (CsdfGraph, BufferId) {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_task("x", vec![1, 1]);
        let y = b.add_sdf_task("y", 2);
        let chan = b.add_buffer(x, y, vec![1, 2], vec![3], marking);
        (b.build().unwrap(), chan)
    }

    #[test]
    fn reverse_buffer_mirrors_rates() {
        let (g, chan) = two_task_graph(1);
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 5,
            }],
        )
        .unwrap();
        assert_eq!(bounded.buffer_count(), 2);
        let reverse = bounded.buffer(BufferId::new(1));
        assert_eq!(reverse.source(), g.buffer(chan).target());
        assert_eq!(reverse.target(), g.buffer(chan).source());
        assert_eq!(reverse.production(), &[3]);
        assert_eq!(reverse.consumption(), &[1, 2]);
        assert_eq!(reverse.initial_tokens(), 4);
        assert!(bounded.is_consistent());
    }

    #[test]
    fn capacity_below_marking_is_rejected() {
        let (g, chan) = two_task_graph(6);
        let err = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 5,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, CsdfError::CapacityBelowMarking { .. }));
    }

    #[test]
    fn unknown_buffer_is_rejected() {
        let (g, _) = two_task_graph(0);
        let err = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: BufferId::new(7),
                capacity: 5,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, CsdfError::BufferIndexOutOfRange(7)));
    }

    #[test]
    fn duplicate_capacity_entries_are_rejected() {
        // Before the check, each duplicate entry silently added another
        // reverse buffer, doubling the back-pressure and changing the
        // throughput of the bounded graph.
        let (g, chan) = two_task_graph(1);
        let err = bound_buffers(
            &g,
            &[
                BufferCapacity {
                    buffer: chan,
                    capacity: 6,
                },
                BufferCapacity {
                    buffer: chan,
                    capacity: 9,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CsdfError::DuplicateBufferCapacity { buffer: 0 }
        ));
        // A single entry still works.
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 6,
            }],
        )
        .unwrap();
        assert_eq!(bounded.buffer_count(), 2);
    }

    #[test]
    fn bound_all_buffers_skips_self_loops() {
        let mut b = CsdfGraphBuilder::new();
        let x = b.add_sdf_task("x", 1);
        let y = b.add_sdf_task("y", 1);
        b.add_sdf_buffer(x, y, 2, 3, 0);
        b.add_serializing_self_loop(x);
        let g = b.build().unwrap();
        let bounded =
            bound_all_buffers(&g, |_, b| b.total_production() + b.total_consumption()).unwrap();
        // one forward channel + self loop + one reverse channel
        assert_eq!(bounded.buffer_count(), 3);
    }

    #[test]
    fn doubles_buffer_count_like_table2() {
        // The paper's Table 2 reports exactly 2x the buffer count when buffer
        // sizes are fixed; bounding all non-self-loop buffers reproduces that.
        let (g, chan) = two_task_graph(0);
        let bounded = bound_buffers(
            &g,
            &[BufferCapacity {
                buffer: chan,
                capacity: 6,
            }],
        )
        .unwrap();
        assert_eq!(bounded.buffer_count(), 2 * g.buffer_count());
    }
}
