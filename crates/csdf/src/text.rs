//! A small line-oriented text format for CSDF graphs, plus the SDF3 XML
//! importer.
//!
//! The line format is meant for fixtures, examples and debugging; it is not
//! the SDF3 XML format (which the paper's benchmark ships in) but carries
//! exactly the same information:
//!
//! ```text
//! # comment
//! graph sample
//! task A durations=1,1
//! task B durations=1
//! buffer A -> B prod=2,3 cons=5 tokens=4
//! ```
//!
//! Real benchmark files in the SDF3 `<sdf>`/`<csdf>` XML format are imported
//! with [`parse_sdf3_xml`].

use crate::builder::CsdfGraphBuilder;
use crate::error::CsdfError;
use crate::graph::CsdfGraph;
use crate::source::SourceMap;

pub use crate::sdf3::{
    parse_sdf3_xml, parse_sdf3_xml_import, write_sdf3_xml, write_sdf3_xml_with_capacities,
    Sdf3Import,
};

/// Serialises a graph into the textual format parsed by [`parse`].
///
/// # Examples
///
/// ```
/// use csdf::{CsdfGraphBuilder, text};
///
/// let mut builder = CsdfGraphBuilder::named("demo");
/// let a = builder.add_sdf_task("a", 1);
/// let b = builder.add_sdf_task("b", 2);
/// builder.add_sdf_buffer(a, b, 1, 1, 0);
/// let graph = builder.build()?;
/// let round_trip = text::parse(&text::to_text(&graph))?;
/// assert_eq!(round_trip, graph);
/// # Ok::<(), csdf::CsdfError>(())
/// ```
pub fn to_text(graph: &CsdfGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("graph {}\n", graph.name()));
    for (_, task) in graph.tasks() {
        out.push_str(&format!(
            "task {} durations={}\n",
            task.name(),
            join(task.durations())
        ));
    }
    for (_, buffer) in graph.buffers() {
        out.push_str(&format!(
            "buffer {} -> {} prod={} cons={} tokens={}\n",
            graph.task(buffer.source()).name(),
            graph.task(buffer.target()).name(),
            join(buffer.production()),
            join(buffer.consumption()),
            buffer.initial_tokens()
        ));
    }
    out
}

fn join(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a graph from the textual format produced by [`to_text`].
///
/// # Errors
///
/// Returns [`CsdfError::Parse`] with a 1-based line number for syntax errors,
/// and the usual builder errors for semantic problems (unknown task names,
/// rate-length mismatches, ...).
pub fn parse(input: &str) -> Result<CsdfGraph, CsdfError> {
    parse_with_sources(input).map(|(graph, _)| graph)
}

/// Like [`parse`], but also returns the [`SourceMap`] recording the 1-based
/// line each task and buffer was declared on — the spans `csdf-lint`
/// attaches to its diagnostics.
///
/// # Errors
///
/// Those of [`parse`].
pub fn parse_with_sources(input: &str) -> Result<(CsdfGraph, SourceMap), CsdfError> {
    let mut name = "csdf".to_string();
    let mut builder: Option<CsdfGraphBuilder> = None;
    let mut task_lines: Vec<Option<usize>> = Vec::new();
    // line number, source, target, production, consumption, initial tokens
    type PendingBuffer = (usize, String, String, Vec<u64>, Vec<u64>, u64);
    let mut pending_buffers: Vec<PendingBuffer> = Vec::new();

    for (line_index, raw_line) in input.lines().enumerate() {
        let line_number = line_index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("graph") => {
                name = words
                    .next()
                    .ok_or_else(|| parse_error(line_number, "missing graph name"))?
                    .to_string();
            }
            Some("task") => {
                let task_name = words
                    .next()
                    .ok_or_else(|| parse_error(line_number, "missing task name"))?;
                let durations = parse_field(words.next(), "durations", line_number)?;
                builder
                    .get_or_insert_with(|| CsdfGraphBuilder::named(name.clone()))
                    .add_task(task_name, durations);
                task_lines.push(Some(line_number));
            }
            Some("buffer") => {
                let source = words
                    .next()
                    .ok_or_else(|| parse_error(line_number, "missing source task"))?
                    .to_string();
                let arrow = words.next();
                if arrow != Some("->") {
                    return Err(parse_error(line_number, "expected `->`"));
                }
                let target = words
                    .next()
                    .ok_or_else(|| parse_error(line_number, "missing target task"))?
                    .to_string();
                let production = parse_field(words.next(), "prod", line_number)?;
                let consumption = parse_field(words.next(), "cons", line_number)?;
                let tokens = parse_field(words.next(), "tokens", line_number)?;
                let tokens = *tokens
                    .first()
                    .ok_or_else(|| parse_error(line_number, "missing token count"))?;
                pending_buffers.push((
                    line_number,
                    source,
                    target,
                    production,
                    consumption,
                    tokens,
                ));
            }
            Some(other) => {
                return Err(parse_error(
                    line_number,
                    &format!("unknown directive `{other}`"),
                ));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }

    let mut builder = builder.ok_or(CsdfError::EmptyGraph)?;
    // Buffers can only be resolved once all tasks are known: build a
    // task-only skeleton graph to resolve names, then add the buffers. The
    // name index is built once — resolving each buffer through
    // `CsdfGraph::find_task`'s linear scan is quadratic overall and took
    // minutes on 100k-task graphs. Like `find_task`, the first declaration
    // of a duplicated name wins.
    let skeleton = builder.clone().build()?;
    let mut task_index: std::collections::HashMap<&str, crate::TaskId> =
        std::collections::HashMap::new();
    for (id, task) in skeleton.tasks() {
        task_index.entry(task.name()).or_insert(id);
    }
    let mut buffer_lines: Vec<Option<usize>> = Vec::with_capacity(pending_buffers.len());
    for (line_number, source, target, production, consumption, tokens) in pending_buffers {
        let source_id = *task_index
            .get(source.as_str())
            .ok_or_else(|| parse_error(line_number, &format!("unknown task `{source}`")))?;
        let target_id = *task_index
            .get(target.as_str())
            .ok_or_else(|| parse_error(line_number, &format!("unknown task `{target}`")))?;
        builder.add_buffer(source_id, target_id, production, consumption, tokens);
        buffer_lines.push(Some(line_number));
    }
    let graph = builder.build()?;
    Ok((graph, SourceMap::new(task_lines, buffer_lines)))
}

fn parse_field(word: Option<&str>, key: &str, line: usize) -> Result<Vec<u64>, CsdfError> {
    let word = word.ok_or_else(|| parse_error(line, &format!("missing `{key}=` field")))?;
    let (actual_key, value) = word
        .split_once('=')
        .ok_or_else(|| parse_error(line, &format!("expected `{key}=<values>`")))?;
    if actual_key != key {
        return Err(parse_error(
            line,
            &format!("expected field `{key}`, found `{actual_key}`"),
        ));
    }
    value
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<u64>()
                .map_err(|_| parse_error(line, &format!("invalid number `{v}` in `{key}`")))
        })
        .collect()
}

fn parse_error(line: usize, message: &str) -> CsdfError {
    CsdfError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsdfGraphBuilder;

    #[test]
    fn round_trips_a_cyclo_static_graph() {
        let mut b = CsdfGraphBuilder::named("fig1");
        let t = b.add_task("t", vec![1, 1, 1]);
        let u = b.add_task("u", vec![2, 2]);
        b.add_buffer(t, u, vec![2, 3, 1], vec![2, 5], 4);
        b.add_serializing_self_loop(t);
        let g = b.build().unwrap();
        let text = to_text(&g);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# a comment\ngraph demo\n\ntask a durations=1\ntask b durations=2\nbuffer a -> b prod=1 cons=1 tokens=0\n";
        let g = parse(text).unwrap();
        assert_eq!(g.name(), "demo");
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.buffer_count(), 1);
    }

    #[test]
    fn source_map_records_declaration_lines() {
        let text = "# header\ngraph demo\ntask a durations=1\n\ntask b durations=2\nbuffer a -> b prod=1 cons=1 tokens=0\n";
        let (g, sources) = parse_with_sources(text).unwrap();
        assert_eq!(sources.task_line(g.find_task("a").unwrap()), Some(3));
        assert_eq!(sources.task_line(g.find_task("b").unwrap()), Some(5));
        assert_eq!(sources.buffer_line(crate::BufferId::new(0)), Some(6));
        // A buffer id beyond the imported range (e.g. appended by a
        // transform) has no span.
        assert_eq!(sources.buffer_line(crate::BufferId::new(9)), None);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = "graph demo\ntask a durations=1\nbuffer a => a prod=1 cons=1 tokens=0\n";
        match parse(text) {
            Err(CsdfError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_task_in_buffer_is_reported() {
        let text = "graph g\ntask a durations=1\nbuffer a -> missing prod=1 cons=1 tokens=0\n";
        assert!(matches!(parse(text), Err(CsdfError::Parse { line: 3, .. })));
    }

    #[test]
    fn unknown_directive_is_reported() {
        assert!(matches!(
            parse("actor a durations=1\n"),
            Err(CsdfError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn invalid_numbers_are_reported() {
        let text = "graph g\ntask a durations=1,x\n";
        assert!(matches!(parse(text), Err(CsdfError::Parse { line: 2, .. })));
    }

    #[test]
    fn empty_input_is_an_empty_graph_error() {
        assert!(matches!(parse("# nothing\n"), Err(CsdfError::EmptyGraph)));
    }

    #[test]
    fn wrong_field_name_is_reported() {
        let text = "graph g\ntask a durations=1\ntask b durations=1\nbuffer a -> b production=1 cons=1 tokens=0\n";
        assert!(matches!(parse(text), Err(CsdfError::Parse { line: 4, .. })));
    }
}
