//! # csdf — Cyclo-Static Dataflow Graph model
//!
//! This crate provides the dataflow substrate of the `kiter` workspace, a
//! reproduction of *Optimal and fast throughput evaluation of CSDF* (Bodin,
//! Munier-Kordon, Dupont de Dinechin — DAC 2016):
//!
//! * [`CsdfGraph`], [`Task`], [`Buffer`] — the model of Section 2.1 of the
//!   paper: tasks with phases and per-phase durations, buffers with
//!   cyclo-static production/consumption rates and an initial marking;
//! * [`RepetitionVector`] — consistency and the repetition vector `q`
//!   (Section 2.2);
//! * [`Throughput`] and [`Rational`] — exact result types (Section 2.3);
//! * [`transform`] — buffer-capacity modelling, auto-concurrency
//!   serialisation and the SDF → HSDF expansion used by baseline methods;
//! * [`dot`] / [`text`] — serialisation helpers.
//!
//! # Examples
//!
//! The buffer of the paper's Figure 1, embedded in a two-task graph:
//!
//! ```
//! use csdf::CsdfGraphBuilder;
//!
//! let mut builder = CsdfGraphBuilder::named("figure1");
//! let t = builder.add_task("t", vec![1, 1, 1]);
//! let t_prime = builder.add_task("t'", vec![1, 1]);
//! builder.add_buffer(t, t_prime, vec![2, 3, 1], vec![2, 5], 0);
//! let graph = builder.build()?;
//!
//! let q = graph.repetition_vector()?;
//! assert_eq!(q.get(t), 7);       // q_t · 6 = q_t' · 7
//! assert_eq!(q.get(t_prime), 6);
//! # Ok::<(), csdf::CsdfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod builder;
mod error;
mod graph;
mod rational;
mod repetition;
mod sdf3;
mod source;
mod task;
mod throughput;

pub mod dot;
pub mod text;
pub mod transform;

pub use buffer::{Buffer, BufferId};
pub use builder::CsdfGraphBuilder;
pub use error::{BufferRef, CsdfError};
pub use graph::CsdfGraph;
pub use rational::{gcd_i128, gcd_u128, gcd_u64, lcm_u64, Rational, RationalError, RationalSum};
pub use repetition::RepetitionVector;
pub use source::SourceMap;
pub use task::{Task, TaskId};
pub use throughput::Throughput;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CsdfGraph>();
        assert_send_sync::<CsdfGraphBuilder>();
        assert_send_sync::<CsdfError>();
        assert_send_sync::<Rational>();
        assert_send_sync::<Throughput>();
        assert_send_sync::<RepetitionVector>();
    }
}
