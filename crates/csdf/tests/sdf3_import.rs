//! Integration test for the SDF3 XML importer on the committed benchmark
//! fixture (`tests/fixtures/modem.sdf3.xml`).

use csdf::{text, BufferId};

const MODEM_XML: &str = include_str!("fixtures/modem.sdf3.xml");

#[test]
fn fixture_imports_with_the_expected_shape() {
    let graph = text::parse_sdf3_xml(MODEM_XML).expect("fixture parses");
    assert_eq!(graph.name(), "modem_csdf");
    assert_eq!(graph.task_count(), 4);
    assert_eq!(graph.buffer_count(), 5);
    assert!(!graph.is_sdf(), "fixture is genuinely cyclo-static");
    assert!(graph.is_consistent());

    let adc = graph.find_task("adc").expect("adc");
    let equalizer = graph.find_task("equalizer").expect("equalizer");
    let decision = graph.find_task("decision").expect("decision");
    assert_eq!(graph.task(adc).durations(), &[1, 2]);
    assert_eq!(graph.task(equalizer).durations(), &[2, 1, 2]);
    // The default="true" processor wins over the first one listed.
    assert_eq!(graph.task(decision).durations(), &[3]);

    // Channel order and rate broadcasting: `in_samples` is a scalar rate on
    // a three-phase actor.
    let samples = graph.buffer(BufferId::new(0));
    assert_eq!(samples.production(), &[2, 1]);
    assert_eq!(samples.consumption(), &[1, 1, 1]);
    let coeff = graph.buffer(BufferId::new(3));
    assert_eq!(coeff.consumption(), &[0, 1, 0]);
    assert_eq!(coeff.initial_tokens(), 1);
    assert_eq!(graph.total_initial_tokens(), 5);

    let q = graph.repetition_vector().expect("consistent");
    assert!(graph.task_ids().all(|task| q.get(task) == 1));
}

#[test]
fn fixture_round_trips_through_the_text_format() {
    let graph = text::parse_sdf3_xml(MODEM_XML).expect("fixture parses");
    let round_trip = text::parse(&text::to_text(&graph)).expect("text round-trip parses");
    assert_eq!(round_trip, graph);
}

#[test]
fn fixture_round_trips_through_the_xml_export() {
    let graph = text::parse_sdf3_xml(MODEM_XML).expect("fixture parses");
    let exported = text::write_sdf3_xml(&graph);
    let round_trip = text::parse_sdf3_xml(&exported).expect("export re-imports");
    assert_eq!(round_trip, graph);

    // Capacity annotations survive an export/import cycle too.
    let capacities = vec![(BufferId::new(0), 6u64), (BufferId::new(3), 2u64)];
    let sized = text::write_sdf3_xml_with_capacities(&graph, &capacities);
    let import = text::parse_sdf3_xml_import(&sized).expect("sized export re-imports");
    assert_eq!(import.graph, graph);
    assert_eq!(import.buffer_capacities, capacities);
}

#[test]
fn import_is_deterministic() {
    // Ids must be stable across re-imports, otherwise replayed capacity
    // sweeps would target the wrong buffers.
    let first = text::parse_sdf3_xml(MODEM_XML).expect("parses");
    let second = text::parse_sdf3_xml(MODEM_XML).expect("parses");
    assert_eq!(first, second);
}
