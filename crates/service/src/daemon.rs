//! The daemon: session pool + result cache + request scheduler.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use csdf::transform::bound_all_buffers_tracked;
use csdf::{CsdfGraph, TaskId, Throughput};
use csdf_baselines::{expansion_throughput, Budget, EvaluationStatus};
use csdf_explore::{
    min_storage_for_throughput_on, uniform_slack_capacity, ParetoSweep, ScenarioSet,
};
use csdf_lint::{LintOptions, LintReport};
use kperiodic::{
    AnalysisError, AnalysisSession, KIterOptions, KIterResult, PoolStats, SessionPool,
};

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::json::Json;
use crate::protocol::{parse_request, throughput_to_string, GraphFormat, GraphSpec, RequestBody};

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The K-Iter options every pooled session evaluates with.
    pub options: KIterOptions,
    /// Maximum idle sessions kept warm (see [`SessionPool`]).
    pub pool_capacity: usize,
    /// Maximum cached evaluate results (see [`ResultCache`]).
    pub cache_capacity: usize,
    /// Worker threads a batch is fanned over ([`Daemon::run_batch`];
    /// `0` is treated as `1`). Streaming transports answer in-line and
    /// ignore this.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            options: KIterOptions::default(),
            pool_capacity: 16,
            cache_capacity: 256,
            workers: 4,
        }
    }
}

/// A throughput-analysis daemon.
///
/// One daemon owns a [`SessionPool`] (warm [`AnalysisSession`]s routed by
/// structure fingerprint) and a [`ResultCache`] (exact-keyed evaluate
/// results), both behind mutexes held only for checkout/return and
/// lookup/insert — never across an evaluation — so any number of transport
/// threads and batch workers can share one daemon. Every response is
/// **bit-identical** to the corresponding direct library call on a cold
/// session, whatever mix of requests ran before: warm sessions re-target
/// markings without keeping K state, and the cache key is exact.
///
/// Transports: [`Daemon::run_batch`] (a batch of lines fanned over a scoped
/// worker pool, responses in request order), [`Daemon::serve_lines`]
/// (streaming line/response over any reader/writer pair, e.g. stdin/stdout)
/// and [`Daemon::serve_unix`] (a Unix socket, one streaming connection per
/// thread).
///
/// # Examples
///
/// ```
/// use csdf_service::{Daemon, ServiceConfig};
///
/// let daemon = Daemon::new(ServiceConfig::default());
/// let request = r#"{"id":1,"type":"evaluate","graph":{"format":"text","source":"graph g\ntask a durations=1\ntask b durations=1\nbuffer a -> b prod=1 cons=1 tokens=0\nbuffer b -> a prod=1 cons=1 tokens=1\n"}}"#;
/// let response = daemon.handle_line(request);
/// assert!(response.contains(r#""status":"ok""#));
/// assert!(response.contains(r#""throughput":"1/2""#));
/// ```
#[derive(Debug)]
pub struct Daemon {
    config: ServiceConfig,
    pool: Mutex<SessionPool>,
    cache: Mutex<ResultCache>,
}

impl Daemon {
    /// Creates a daemon with the given configuration.
    pub fn new(config: ServiceConfig) -> Daemon {
        Daemon {
            pool: Mutex::new(SessionPool::new(config.options, config.pool_capacity)),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            config,
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Session-pool counters so far (checkouts, warm hit rate, evictions).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread poisoned the pool lock by panicking.
    pub fn pool_stats(&self) -> PoolStats {
        *self.pool.lock().expect("pool poisoned").stats()
    }

    /// Result-cache counters so far.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread poisoned the cache lock by panicking.
    pub fn cache_stats(&self) -> CacheStats {
        *self.cache.lock().expect("cache poisoned").stats()
    }

    /// Handles one request line and renders the one response line (without
    /// trailing newline). Never panics on malformed input: every failure
    /// becomes an `{"status":"error"}` response echoing the request id when
    /// one could be read.
    pub fn handle_line(&self, line: &str) -> String {
        let (id, outcome) = match parse_request(line) {
            Err((id, message)) => (id, Err((None, message))),
            Ok(request) => (
                request.id,
                match self.dispatch(&request.body) {
                    Ok(fields) => Ok((request.body.kind(), fields)),
                    Err(message) => Err((Some(request.body.kind()), message)),
                },
            ),
        };
        let id_value = match id {
            Some(id) => Json::Int(id),
            None => Json::Null,
        };
        let mut entries = vec![("id".to_string(), id_value)];
        match outcome {
            Ok((kind, fields)) => {
                entries.push(("type".to_string(), Json::Str(kind.to_string())));
                entries.push(("status".to_string(), Json::Str("ok".to_string())));
                entries.extend(fields);
            }
            Err((kind, message)) => {
                if let Some(kind) = kind {
                    entries.push(("type".to_string(), Json::Str(kind.to_string())));
                }
                entries.push(("status".to_string(), Json::Str("error".to_string())));
                entries.push(("error".to_string(), Json::Str(message)));
            }
        }
        Json::Object(entries).to_string()
    }

    /// Runs a batch of request lines (blank lines skipped) over the
    /// configured worker pool and returns the responses **in request
    /// order** — workers race through a shared cursor, but each tags its
    /// responses with the request index and the batch is re-assembled
    /// deterministically before returning.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked mid-batch (responses would
    /// otherwise be lost silently).
    pub fn run_batch(&self, input: &str) -> Vec<String> {
        let lines: Vec<&str> = input
            .lines()
            .filter(|line| !line.trim().is_empty())
            .collect();
        let workers = self.config.workers.max(1).min(lines.len().max(1));
        let cursor = AtomicUsize::new(0);
        let mut responses: Vec<Option<String>> = Vec::new();
        responses.resize_with(lines.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut handled = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= lines.len() {
                                break;
                            }
                            handled.push((index, self.handle_line(lines[index])));
                        }
                        handled
                    })
                })
                .collect();
            for handle in handles {
                for (index, response) in handle.join().expect("batch worker panicked") {
                    responses[index] = Some(response);
                }
            }
        });
        responses
            .into_iter()
            .map(|response| response.expect("every request index is handled"))
            .collect()
    }

    /// Streams requests from `reader` to `writer`: one response line per
    /// request line, flushed immediately, blank lines skipped. Returns when
    /// the reader reaches end of input.
    ///
    /// # Errors
    ///
    /// I/O errors from the reader or writer.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            writeln!(writer, "{}", self.handle_line(&line))?;
            writer.flush()?;
        }
        Ok(())
    }

    /// Serves streaming connections on a Unix socket at `path` (an existing
    /// socket file is replaced). Each connection gets its own thread running
    /// [`Daemon::serve_lines`]; all connections share this daemon's pool and
    /// cache. With `max_connections`, returns after that many connections
    /// have been **accepted** (their threads are joined before returning) —
    /// pass `None` to serve forever.
    ///
    /// # Errors
    ///
    /// Socket bind/accept errors; per-connection I/O errors only terminate
    /// that connection.
    #[cfg(unix)]
    pub fn serve_unix(
        &self,
        path: &std::path::Path,
        max_connections: Option<usize>,
    ) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        std::thread::scope(|scope| {
            for (accepted, stream) in listener.incoming().enumerate() {
                let stream = stream?;
                scope.spawn(move || {
                    let reader = BufReader::new(&stream);
                    let _ = self.serve_lines(reader, &stream);
                });
                if max_connections.is_some_and(|max| accepted + 1 >= max) {
                    break;
                }
            }
            Ok(())
        })
    }

    /// Checks a session out of the pool for `graph`, runs `work` on it
    /// outside any lock, and returns the session to the pool — also on
    /// failure: a failed evaluation leaves a session usable (its next
    /// evaluation rebuilds from scratch), and keeping it pooled preserves
    /// the warm arena for the next request of this structure.
    fn with_session<T>(
        &self,
        graph: &CsdfGraph,
        work: impl FnOnce(&mut AnalysisSession) -> Result<T, AnalysisError>,
    ) -> Result<T, String> {
        let mut session = self
            .pool
            .lock()
            .expect("pool poisoned")
            .checkout(graph)
            .map_err(|error| error.to_string())?;
        let outcome = work(&mut session);
        self.pool.lock().expect("pool poisoned").give_back(session);
        outcome.map_err(|error| error.to_string())
    }

    /// Dispatches one request body to the matching handler, returning the
    /// response's payload fields.
    fn dispatch(&self, body: &RequestBody) -> Result<Vec<(String, Json)>, String> {
        match body {
            RequestBody::Evaluate { graph } => {
                let graph = graph.load()?;
                let (result, cache) = self.evaluate_cached(&graph)?;
                Ok(evaluate_fields(&result, cache))
            }
            RequestBody::Sweep { graph, slacks } => {
                let graph = graph.load()?;
                let sweep = ParetoSweep::uniform_slack(&graph, slacks)
                    .map_err(|error| error.to_string())?;
                let outcome = self.with_session(sweep.bounded().graph(), |session| {
                    sweep.run_on_session(session)
                })?;
                let points: Vec<Json> = outcome
                    .points
                    .iter()
                    .map(|point| {
                        Json::Object(vec![
                            ("slack".to_string(), Json::Int(point.label.into())),
                            (
                                "total_storage".to_string(),
                                Json::Int(point.total_storage.into()),
                            ),
                            (
                                "throughput".to_string(),
                                Json::Str(throughput_to_string(point.throughput())),
                            ),
                            (
                                "iterations".to_string(),
                                Json::Int(point.result.iterations as i128),
                            ),
                        ])
                    })
                    .collect();
                let frontier: Vec<Json> = outcome
                    .pareto_frontier()
                    .iter()
                    .map(|point| Json::Int(point.label.into()))
                    .collect();
                Ok(vec![
                    ("points".to_string(), Json::Array(points)),
                    ("frontier".to_string(), Json::Array(frontier)),
                ])
            }
            RequestBody::MinStorage {
                graph,
                target,
                max_slack,
            } => {
                let graph = graph.load()?;
                let max_slack = (*max_slack).max(1);
                let bounded = bound_all_buffers_tracked(&graph, |_, buffer| {
                    uniform_slack_capacity(buffer, max_slack)
                })
                .map_err(|error| error.to_string())?;
                let outcome = self.with_session(bounded.graph(), |session| {
                    min_storage_for_throughput_on(session, &bounded, *target, max_slack)
                })?;
                match outcome {
                    None => Ok(vec![("feasible".to_string(), Json::Bool(false))]),
                    Some(outcome) => Ok(vec![
                        ("feasible".to_string(), Json::Bool(true)),
                        ("slack".to_string(), Json::Int(outcome.slack.into())),
                        (
                            "total_storage".to_string(),
                            Json::Int(outcome.total_storage.into()),
                        ),
                        (
                            "throughput".to_string(),
                            Json::Str(throughput_to_string(outcome.result.throughput)),
                        ),
                        (
                            "evaluations".to_string(),
                            Json::Int(outcome.evaluations as i128),
                        ),
                    ]),
                }
            }
            RequestBody::ScenarioSet { graph, scenarios } => {
                let graph = graph.load()?;
                let mut set = ScenarioSet::new(graph);
                for scenario in scenarios {
                    set.add(scenario.name.clone(), scenario.markings.clone());
                }
                let outcomes =
                    self.with_session(set.base(), |session| set.run_on_session(session))?;
                let rendered: Vec<Json> = outcomes
                    .iter()
                    .map(|outcome| {
                        Json::Object(vec![
                            ("name".to_string(), Json::Str(outcome.name.clone())),
                            (
                                "throughput".to_string(),
                                Json::Str(throughput_to_string(outcome.result.throughput)),
                            ),
                            (
                                "iterations".to_string(),
                                Json::Int(outcome.result.iterations as i128),
                            ),
                        ])
                    })
                    .collect();
                Ok(vec![("scenarios".to_string(), Json::Array(rendered))])
            }
            RequestBody::Lint { graph } => Ok(lint_fields(&lint_spec(graph))),
            RequestBody::Verify {
                graph: spec,
                max_expansion,
            } => Ok(self.verify(spec, *max_expansion)),
        }
    }

    /// The shared evaluate path: exact-keyed cache lookup, else a pooled
    /// session run whose result is cached. Returns the result and whether it
    /// was a cache `"hit"` or `"miss"`.
    fn evaluate_cached(&self, graph: &CsdfGraph) -> Result<(KIterResult, &'static str), String> {
        let key = CacheKey::new(graph, &self.config.options);
        if let Some(result) = self.cache.lock().expect("cache poisoned").get(&key) {
            return Ok((result, "hit"));
        }
        let result = self.with_session(graph, AnalysisSession::evaluate)?;
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(key, result.clone());
        Ok((result, "miss"))
    }

    /// The `verify` handler: lint, solve, cross-check.
    ///
    /// Checks run only where they apply and each reports pass/fail: the lint
    /// bounds must bracket the solver's throughput, a lint-proven deadlock
    /// must match [`Throughput::Deadlocked`], and on graphs whose HSDF
    /// expansion stays within `max_expansion` phase-firing copies the
    /// expansion baseline must reproduce the solver's answer exactly. The
    /// verdict is `"agree"` when every executed check passed, `"disagree"`
    /// when any failed, and `"inconclusive"` when none could run (e.g. the
    /// solver exhausted a budget on a graph lint found clean).
    fn verify(&self, spec: &GraphSpec, max_expansion: u64) -> Vec<(String, Json)> {
        let report = lint_spec(spec);
        let mut fields = lint_fields(&report);
        let mut checks: Vec<(&'static str, bool)> = Vec::new();
        match spec.load() {
            Err(error) => {
                // The importer rejected the graph: lint must have an error
                // diagnostic for the same input.
                fields.push(("solver_error".to_string(), Json::Str(error)));
                checks.push(("lint_flags_unloadable", report.has_errors()));
            }
            Ok(graph) => match self.evaluate_cached(&graph) {
                Err(error) => {
                    fields.push(("solver_error".to_string(), Json::Str(error)));
                    // A solver rejection is predicted by lint only when lint
                    // found an error; budget-type failures are unpredictable,
                    // so no check is recorded for them and the verdict stays
                    // inconclusive.
                    if report.has_errors() {
                        checks.push(("solver_rejection_predicted", true));
                    }
                }
                Ok((result, _)) => {
                    fields.push((
                        "throughput".to_string(),
                        Json::Str(throughput_to_string(result.throughput)),
                    ));
                    if let Some(bounds) = &report.bounds {
                        checks.push(("bounds_bracket", bounds.brackets(&result.throughput)));
                    }
                    if report.certain_deadlock() {
                        checks.push((
                            "deadlock_agreement",
                            result.throughput == Throughput::Deadlocked,
                        ));
                    }
                    fields.push(baseline_check(&graph, &result, max_expansion, &mut checks));
                }
            },
        }
        let verdict = if checks.iter().any(|&(_, passed)| !passed) {
            "disagree"
        } else if checks.is_empty() {
            "inconclusive"
        } else {
            "agree"
        };
        let rendered: Vec<Json> = checks
            .iter()
            .map(|&(name, passed)| {
                Json::Object(vec![
                    ("check".to_string(), Json::Str(name.to_string())),
                    ("passed".to_string(), Json::Bool(passed)),
                ])
            })
            .collect();
        fields.push(("checks".to_string(), Json::Array(rendered)));
        fields.push(("verdict".to_string(), Json::Str(verdict.to_string())));
        fields
    }
}

/// Runs the HSDF-expansion baseline when the expansion stays within
/// `max_expansion` phase-firing copies, recording a `baseline_agreement`
/// check; returns the `baseline` response field (`"skipped"` when too large
/// or out of budget).
fn baseline_check(
    graph: &CsdfGraph,
    result: &KIterResult,
    max_expansion: u64,
    checks: &mut Vec<(&'static str, bool)>,
) -> (String, Json) {
    let field = |value: String| ("baseline".to_string(), Json::Str(value));
    let size = graph.repetition_vector().ok().map(|q| {
        graph
            .tasks()
            .map(|(id, task)| q.get(id) as u128 * task.phase_count() as u128)
            .sum::<u128>()
    });
    match size {
        Some(size) if size <= max_expansion as u128 => {
            let budget = Budget {
                max_events: max_expansion,
                max_wall_time: std::time::Duration::from_secs(30),
            };
            match expansion_throughput(graph, &budget) {
                Ok(baseline) if baseline.status == EvaluationStatus::Exact => {
                    checks.push((
                        "baseline_agreement",
                        baseline.throughput == Some(result.throughput),
                    ));
                    field(match baseline.throughput {
                        Some(throughput) => throughput_to_string(throughput),
                        None => "none".to_string(),
                    })
                }
                _ => field("skipped".to_string()),
            }
        }
        _ => field("skipped".to_string()),
    }
}

/// Maps a [`GraphSpec`] through the static analyzer; importer failures come
/// back as `L000`/`L003` diagnostics rather than errors.
fn lint_spec(spec: &GraphSpec) -> LintReport {
    let format = match spec.format {
        GraphFormat::Sdf3 => csdf_lint::InputFormat::Sdf3,
        GraphFormat::Text => csdf_lint::InputFormat::Text,
    };
    csdf_lint::lint_source(&spec.source, format, &LintOptions::default())
}

/// The payload fields shared by `lint` responses and the lint part of
/// `verify` responses.
fn lint_fields(report: &LintReport) -> Vec<(String, Json)> {
    let diagnostics: Vec<Json> = report.diagnostics.iter().map(diagnostic_json).collect();
    let mut fields = vec![
        ("diagnostics".to_string(), Json::Array(diagnostics)),
        (
            "errors".to_string(),
            Json::Int(report.error_count() as i128),
        ),
        (
            "warnings".to_string(),
            Json::Int(report.warning_count() as i128),
        ),
        (
            "certain_deadlock".to_string(),
            Json::Bool(report.certain_deadlock()),
        ),
    ];
    if let Some(bounds) = &report.bounds {
        fields.push((
            "bounds".to_string(),
            Json::Object(vec![
                (
                    "lower".to_string(),
                    Json::Str(throughput_to_string(bounds.lower)),
                ),
                (
                    "upper".to_string(),
                    Json::Str(throughput_to_string(bounds.upper)),
                ),
            ]),
        ));
    }
    fields
}

/// One diagnostic as a JSON object (`line`/`tasks`/`buffers` only when set).
fn diagnostic_json(diagnostic: &csdf_lint::Diagnostic) -> Json {
    let mut entries = vec![
        (
            "code".to_string(),
            Json::Str(diagnostic.code.as_str().to_string()),
        ),
        (
            "severity".to_string(),
            Json::Str(diagnostic.severity().to_string()),
        ),
        ("message".to_string(), Json::Str(diagnostic.message.clone())),
    ];
    if let Some(line) = diagnostic.line {
        entries.push(("line".to_string(), Json::Int(line as i128)));
    }
    if !diagnostic.tasks.is_empty() {
        let tasks: Vec<Json> = diagnostic
            .tasks
            .iter()
            .map(|task| Json::Str(task.clone()))
            .collect();
        entries.push(("tasks".to_string(), Json::Array(tasks)));
    }
    if !diagnostic.buffers.is_empty() {
        let buffers: Vec<Json> = diagnostic
            .buffers
            .iter()
            .map(|buffer| {
                Json::Object(vec![
                    ("index".to_string(), Json::Int(buffer.index as i128)),
                    ("source".to_string(), Json::Str(buffer.source.clone())),
                    ("target".to_string(), Json::Str(buffer.target.clone())),
                ])
            })
            .collect();
        entries.push(("buffers".to_string(), Json::Array(buffers)));
    }
    Json::Object(entries)
}

/// The payload fields of an evaluate response.
fn evaluate_fields(result: &KIterResult, cache: &str) -> Vec<(String, Json)> {
    let periodicity: Vec<Json> = (0..result.periodicity.len())
        .map(|index| Json::Int(result.periodicity.get(TaskId::new(index)).into()))
        .collect();
    let critical: Vec<Json> = result
        .critical_tasks
        .iter()
        .map(|task| Json::Int(task.index() as i128))
        .collect();
    vec![
        ("cache".to_string(), Json::Str(cache.to_string())),
        (
            "throughput".to_string(),
            Json::Str(throughput_to_string(result.throughput)),
        ),
        (
            "iterations".to_string(),
            Json::Int(result.iterations as i128),
        ),
        ("periodicity".to_string(), Json::Array(periodicity)),
        ("critical_tasks".to_string(), Json::Array(critical)),
    ]
}
