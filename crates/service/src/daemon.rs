//! The daemon: session pool + result cache + request scheduler.
//!
//! # Fault containment
//!
//! The daemon survives any single request. Per-request handling runs under
//! [`std::panic::catch_unwind`], so a panicking handler becomes a structured
//! `internal_panic` error response instead of tearing down the transport; a
//! pool or cache mutex poisoned by such a panic is recovered on the next
//! access (the pool drops its idle sessions, the cache restarts empty, and
//! the recovery is counted in [`ServiceStats`]). Sessions whose work errored
//! or panicked mid-mutation are quarantined
//! ([`SessionPool::quarantine`]), never refiled. Deadlines
//! ([`crate::protocol::Request::deadline_ms`] or
//! [`ServiceConfig::default_deadline_ms`]) cancel evaluations cooperatively
//! through a [`CancelToken`], and admission caps
//! ([`ServiceConfig::max_line_bytes`] / [`ServiceConfig::max_tasks`] /
//! [`ServiceConfig::max_buffers`] / [`ServiceConfig::max_inflight`]) shed
//! oversized or excess work with typed `rejected` responses before it can
//! occupy a worker.

use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use csdf::transform::bound_all_buffers_tracked;
use csdf::{CsdfGraph, TaskId, Throughput};
use csdf_baselines::{expansion_throughput, Budget, EvaluationStatus};
use csdf_explore::{
    min_storage_for_throughput_on, uniform_slack_capacity, ParetoSweep, ScenarioSet,
};
use csdf_lint::{LintOptions, LintReport};
use kperiodic::{
    AnalysisError, AnalysisSession, CancelToken, KIterOptions, KIterResult, PoolStats, SessionPool,
};

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::fault::{FaultPlan, FaultSite};
use crate::json::Json;
use crate::protocol::{parse_request, throughput_to_string, GraphFormat, GraphSpec, RequestBody};

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The K-Iter options every pooled session evaluates with.
    pub options: KIterOptions,
    /// Maximum idle sessions kept warm (see [`SessionPool`]).
    pub pool_capacity: usize,
    /// Maximum cached evaluate results (see [`ResultCache`]).
    pub cache_capacity: usize,
    /// Worker threads a batch is fanned over ([`Daemon::run_batch`];
    /// `0` is treated as `1`). Streaming transports answer in-line and
    /// ignore this.
    pub workers: usize,
    /// Deadline applied to requests that carry no `deadline_ms` of their
    /// own; `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Wall-clock budget of each `verify` cross-check when the request has
    /// no deadline of its own (also the expansion baseline's time budget).
    pub verify_check_budget_ms: u64,
    /// Longest accepted request line in bytes; longer lines are answered
    /// with a `rejected` error (and, on streaming transports, never buffered
    /// beyond this size).
    pub max_line_bytes: usize,
    /// Largest admitted task count of a request's graph.
    pub max_tasks: usize,
    /// Largest admitted buffer count of a request's graph. Also caps the
    /// result cache's entry size (a cache key stores one marking per
    /// buffer).
    pub max_buffers: usize,
    /// Requests allowed past parsing concurrently; excess load is shed with
    /// a `rejected` error instead of queueing without bound.
    pub max_inflight: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            options: KIterOptions::default(),
            pool_capacity: 16,
            cache_capacity: 256,
            workers: 4,
            default_deadline_ms: None,
            verify_check_budget_ms: 30_000,
            max_line_bytes: 1 << 20,
            max_tasks: 1 << 20,
            max_buffers: 1 << 20,
            max_inflight: 256,
        }
    }
}

/// The stable error taxonomy of the wire protocol: every error response
/// carries `{"error":{"kind":"<kind>","message":"..."}}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not a well-formed request.
    Parse,
    /// Admission control refused the request (line length, graph size, or
    /// in-flight load).
    Rejected,
    /// The graph failed to load or was structurally invalid.
    InvalidGraph,
    /// The request's deadline elapsed before the evaluation finished.
    DeadlineExceeded,
    /// The handler panicked; the panic was contained and the daemon is
    /// still live.
    InternalPanic,
    /// The evaluation itself failed (solver error, iteration or size
    /// budget, injected fault).
    Evaluation,
}

impl ErrorKind {
    /// The wire string of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Rejected => "rejected",
            ErrorKind::InvalidGraph => "invalid_graph",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::InternalPanic => "internal_panic",
            ErrorKind::Evaluation => "evaluation",
        }
    }
}

/// A typed request failure, rendered as the response's `error` object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Which class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// Creates an error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServiceError {
        ServiceError {
            kind,
            message: message.into(),
        }
    }
}

impl From<AnalysisError> for ServiceError {
    fn from(error: AnalysisError) -> ServiceError {
        let kind = match &error {
            AnalysisError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            AnalysisError::Model(_)
            | AnalysisError::RejectedByLint { .. }
            | AnalysisError::ArenaGraphMismatch => ErrorKind::InvalidGraph,
            AnalysisError::Solver(_)
            | AnalysisError::IterationLimitReached { .. }
            | AnalysisError::EventGraphTooLarge { .. } => ErrorKind::Evaluation,
        };
        ServiceError::new(kind, error.to_string())
    }
}

/// Fault-containment counters of a [`Daemon`]
/// ([`Daemon::service_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Request handlers that panicked; each became an `internal_panic`
    /// response while the daemon stayed live.
    pub panics_caught: usize,
    /// Requests answered with `deadline_exceeded`.
    pub deadline_exceeded: usize,
    /// Requests shed by admission control (`rejected` responses).
    pub rejected: usize,
    /// Times the pool mutex was found poisoned and rebuilt (idle sessions
    /// dropped, counters kept).
    pub pool_poison_recoveries: usize,
    /// Times the cache mutex was found poisoned and cleared.
    pub cache_poison_recoveries: usize,
    /// Requests currently past admission and not yet answered.
    pub inflight: usize,
}

/// A throughput-analysis daemon.
///
/// One daemon owns a [`SessionPool`] (warm [`AnalysisSession`]s routed by
/// structure fingerprint) and a [`ResultCache`] (exact-keyed evaluate
/// results), both behind mutexes held only for checkout/return and
/// lookup/insert — never across an evaluation — so any number of transport
/// threads and batch workers can share one daemon. Every response is
/// **bit-identical** to the corresponding direct library call on a cold
/// session, whatever mix of requests ran before: warm sessions re-target
/// markings without keeping K state, and the cache key is exact.
///
/// Transports: [`Daemon::run_batch`] (a batch of lines fanned over a scoped
/// worker pool, responses in request order), [`Daemon::serve_lines`]
/// (streaming line/response over any reader/writer pair, e.g. stdin/stdout)
/// and [`Daemon::serve_unix`] (a Unix socket, one streaming connection per
/// thread). All of them contain faults per request — see the module docs.
///
/// # Examples
///
/// ```
/// use csdf_service::{Daemon, ServiceConfig};
///
/// let daemon = Daemon::new(ServiceConfig::default());
/// let request = r#"{"id":1,"type":"evaluate","graph":{"format":"text","source":"graph g\ntask a durations=1\ntask b durations=1\nbuffer a -> b prod=1 cons=1 tokens=0\nbuffer b -> a prod=1 cons=1 tokens=1\n"}}"#;
/// let response = daemon.handle_line(request);
/// assert!(response.contains(r#""status":"ok""#));
/// assert!(response.contains(r#""throughput":"1/2""#));
/// ```
#[derive(Debug)]
pub struct Daemon {
    config: ServiceConfig,
    pool: Mutex<SessionPool>,
    cache: Mutex<ResultCache>,
    fault_plan: Option<FaultPlan>,
    panics_caught: AtomicUsize,
    deadlines_exceeded: AtomicUsize,
    rejected: AtomicUsize,
    pool_poison_recoveries: AtomicUsize,
    cache_poison_recoveries: AtomicUsize,
    inflight: AtomicUsize,
}

/// Decrements the in-flight gauge when a request finishes — also by
/// unwinding, so a panicking handler cannot leak an in-flight slot.
struct InflightGuard<'a> {
    daemon: &'a Daemon,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.daemon.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A checked-out session on its way through one request. Dropping the lease
/// with the session still inside — the error and panic paths — quarantines
/// it ([`SessionPool::quarantine`]); the success path takes the session out
/// and refiles it explicitly.
struct SessionLease<'a> {
    daemon: &'a Daemon,
    session: Option<AnalysisSession>,
}

impl Drop for SessionLease<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.daemon.pool_guard().quarantine(session);
        }
    }
}

impl Daemon {
    /// Creates a daemon with the given configuration.
    pub fn new(config: ServiceConfig) -> Daemon {
        Daemon {
            pool: Mutex::new(SessionPool::new(config.options, config.pool_capacity)),
            cache: Mutex::new(
                ResultCache::new(config.cache_capacity).with_entry_limit(config.max_buffers),
            ),
            config,
            fault_plan: None,
            panics_caught: AtomicUsize::new(0),
            deadlines_exceeded: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            pool_poison_recoveries: AtomicUsize::new(0),
            cache_poison_recoveries: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
        }
    }

    /// Installs a [`FaultPlan`] polled at the named request-handling sites
    /// (builder form). Only available with the `fault-injection` cargo
    /// feature, so production builds cannot inject faults.
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Daemon {
        self.fault_plan = Some(plan);
        self
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Session-pool counters so far (checkouts, warm hit rate, evictions,
    /// quarantines). Recovers the pool first if a panicking worker poisoned
    /// its lock.
    pub fn pool_stats(&self) -> PoolStats {
        *self.pool_guard().stats()
    }

    /// Result-cache counters so far. Recovers the cache first if a panicking
    /// worker poisoned its lock.
    pub fn cache_stats(&self) -> CacheStats {
        *self.cache_guard().stats()
    }

    /// Fault-containment counters so far.
    pub fn service_stats(&self) -> ServiceStats {
        ServiceStats {
            panics_caught: self.panics_caught.load(Ordering::SeqCst),
            deadline_exceeded: self.deadlines_exceeded.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            pool_poison_recoveries: self.pool_poison_recoveries.load(Ordering::SeqCst),
            cache_poison_recoveries: self.cache_poison_recoveries.load(Ordering::SeqCst),
            inflight: self.inflight.load(Ordering::SeqCst),
        }
    }

    /// Locks the pool, recovering from poison: a pool whose lock was
    /// poisoned mid-checkout may hold sessions in unknown states, so its
    /// idle set is dropped (counters survive) and the recovery is counted.
    fn pool_guard(&self) -> MutexGuard<'_, SessionPool> {
        match self.pool.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.pool.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.pool_poison_recoveries.fetch_add(1, Ordering::SeqCst);
                guard
            }
        }
    }

    /// Locks the cache, recovering from poison: a half-written cache entry
    /// must never be served, so the cache restarts empty (counters survive)
    /// and the recovery is counted.
    fn cache_guard(&self) -> MutexGuard<'_, ResultCache> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.cache.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.cache_poison_recoveries.fetch_add(1, Ordering::SeqCst);
                guard
            }
        }
    }

    /// Polls the installed fault plan at `site` (no-op without a plan).
    fn fault(&self, site: FaultSite) -> Result<(), ServiceError> {
        match &self.fault_plan {
            Some(plan) => plan
                .fire(site)
                .map_err(|message| ServiceError::new(ErrorKind::Evaluation, message)),
            None => Ok(()),
        }
    }

    /// Handles one request line and renders the one response line (without
    /// trailing newline). Never panics and never propagates a handler panic:
    /// every failure — malformed input, admission rejection, deadline,
    /// evaluation error, or a panic inside the handler — becomes a
    /// `{"status":"error"}` response with a typed `error` object, echoing
    /// the request id when one could be read.
    pub fn handle_line(&self, line: &str) -> String {
        if line.len() > self.config.max_line_bytes {
            return self.reject_oversized(line);
        }
        match catch_unwind(AssertUnwindSafe(|| self.handle_admitted(line))) {
            Ok(response) => response,
            Err(payload) => {
                self.panics_caught.fetch_add(1, Ordering::SeqCst);
                let error = ServiceError::new(
                    ErrorKind::InternalPanic,
                    format!("request handler panicked: {}", panic_message(&payload)),
                );
                render_response(scan_id(line), None, Err(error))
            }
        }
    }

    /// The panic-unsafe interior of [`Daemon::handle_line`]: parse,
    /// admission, deadline, dispatch.
    fn handle_admitted(&self, line: &str) -> String {
        let request = match parse_request(line) {
            Err((id, message)) => {
                return render_response(
                    id,
                    None,
                    Err(ServiceError::new(ErrorKind::Parse, message)),
                );
            }
            Ok(request) => request,
        };
        let kind = request.body.kind();
        let respond = |outcome: Result<Vec<(String, Json)>, ServiceError>| {
            if let Err(error) = &outcome {
                match error.kind {
                    ErrorKind::DeadlineExceeded => {
                        self.deadlines_exceeded.fetch_add(1, Ordering::SeqCst);
                    }
                    ErrorKind::Rejected => {
                        self.rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {}
                }
            }
            render_response(request.id, Some(kind), outcome)
        };
        let Some(_inflight) = self.try_admit() else {
            return respond(Err(ServiceError::new(
                ErrorKind::Rejected,
                "daemon is at its in-flight request limit",
            )));
        };
        if let Err(error) = self.fault(FaultSite::Parse) {
            return respond(Err(error));
        }
        let deadline = match request.deadline_ms.or(self.config.default_deadline_ms) {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::default(),
        };
        respond(self.dispatch(&request.body, &deadline))
    }

    /// Renders the `rejected` response for an over-long request line. The
    /// message deliberately names no byte counts and the id scan is capped
    /// to the first [`ServiceConfig::max_line_bytes`] bytes, so a streaming
    /// transport that never buffered the whole line produces the identical
    /// response.
    fn reject_oversized(&self, line: &str) -> String {
        self.rejected.fetch_add(1, Ordering::SeqCst);
        let window = prefix_window(line, self.config.max_line_bytes);
        render_response(
            scan_id(window),
            None,
            Err(ServiceError::new(
                ErrorKind::Rejected,
                "request line exceeds the maximum line length",
            )),
        )
    }

    /// Reserves an in-flight slot, or sheds the request when the daemon is
    /// already at [`ServiceConfig::max_inflight`].
    fn try_admit(&self) -> Option<InflightGuard<'_>> {
        let previous = self.inflight.fetch_add(1, Ordering::SeqCst);
        let guard = InflightGuard { daemon: self };
        if previous >= self.config.max_inflight.max(1) {
            drop(guard);
            None
        } else {
            Some(guard)
        }
    }

    /// Rejects graphs over the admission caps before any expensive work.
    fn admit(&self, graph: &CsdfGraph) -> Result<(), ServiceError> {
        if graph.task_count() > self.config.max_tasks {
            return Err(ServiceError::new(
                ErrorKind::Rejected,
                format!(
                    "graph has {} tasks, admission cap is {}",
                    graph.task_count(),
                    self.config.max_tasks
                ),
            ));
        }
        if graph.buffer_count() > self.config.max_buffers {
            return Err(ServiceError::new(
                ErrorKind::Rejected,
                format!(
                    "graph has {} buffers, admission cap is {}",
                    graph.buffer_count(),
                    self.config.max_buffers
                ),
            ));
        }
        Ok(())
    }

    /// Runs a batch of request lines (blank lines skipped) over the
    /// configured worker pool and returns the responses **in request
    /// order** — workers race through a shared cursor, but each tags its
    /// responses with the request index and the batch is re-assembled
    /// deterministically before returning.
    ///
    /// Degrades gracefully: should a worker die anyway (handler panics are
    /// already contained inside [`Daemon::handle_line`]), its unfinished
    /// request indices are answered with `internal_panic` error responses
    /// instead of panicking the caller.
    pub fn run_batch(&self, input: &str) -> Vec<String> {
        let lines: Vec<&str> = input
            .lines()
            .filter(|line| !line.trim().is_empty())
            .collect();
        let workers = self.config.workers.max(1).min(lines.len().max(1));
        let cursor = AtomicUsize::new(0);
        let mut responses: Vec<Option<String>> = Vec::new();
        responses.resize_with(lines.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut handled = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= lines.len() {
                                break;
                            }
                            handled.push((index, self.handle_line(lines[index])));
                        }
                        handled
                    })
                })
                .collect();
            for handle in handles {
                // A dead worker loses its handled list; the fill-in below
                // answers for whatever indices stayed unclaimed.
                if let Ok(handled) = handle.join() {
                    for (index, response) in handled {
                        responses[index] = Some(response);
                    }
                }
            }
        });
        responses
            .into_iter()
            .enumerate()
            .map(|(index, response)| {
                response.unwrap_or_else(|| {
                    self.panics_caught.fetch_add(1, Ordering::SeqCst);
                    render_response(
                        scan_id(lines[index]),
                        None,
                        Err(ServiceError::new(
                            ErrorKind::InternalPanic,
                            "batch worker terminated before answering",
                        )),
                    )
                })
            })
            .collect()
    }

    /// Streams requests from `reader` to `writer`: one response line per
    /// request line, flushed immediately, blank lines skipped. Returns when
    /// the reader reaches end of input.
    ///
    /// Reads are bounded: at most [`ServiceConfig::max_line_bytes`] (+1)
    /// bytes of a line are ever buffered. A longer line is answered with the
    /// same id-echoing `rejected` response the batch transport produces and
    /// the rest of the line is drained without buffering it.
    ///
    /// # Errors
    ///
    /// I/O errors from the reader or writer.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<()> {
        let limit = self.config.max_line_bytes;
        // One limit-resettable wrapper instead of a fresh `take` per line:
        // at most limit + 1 bytes of any line are ever buffered.
        let mut reader = std::io::Read::take(reader, 0);
        let mut buffer: Vec<u8> = Vec::new();
        loop {
            reader.set_limit(limit as u64 + 1);
            buffer.clear();
            let read = reader.read_until(b'\n', &mut buffer)?;
            if read == 0 {
                return Ok(());
            }
            let complete = buffer.last() == Some(&b'\n');
            if complete {
                buffer.pop();
                if buffer.last() == Some(&b'\r') {
                    buffer.pop();
                }
            }
            if !complete && buffer.len() > limit {
                let prefix = String::from_utf8_lossy(&buffer);
                writeln!(writer, "{}", self.reject_oversized(&prefix))?;
                writer.flush()?;
                drain_line(reader.get_mut())?;
                continue;
            }
            let line = String::from_utf8_lossy(&buffer);
            if line.trim().is_empty() {
                continue;
            }
            writeln!(writer, "{}", self.handle_line(&line))?;
            writer.flush()?;
        }
    }

    /// Serves streaming connections on a Unix socket at `path` (an existing
    /// socket file is replaced). Each connection gets its own thread running
    /// [`Daemon::serve_lines`] — with its bounded reads, so no connection
    /// can grow a buffer beyond [`ServiceConfig::max_line_bytes`]; all
    /// connections share this daemon's pool and cache. With
    /// `max_connections`, returns after that many connections have been
    /// **accepted** (their threads are joined before returning) — pass
    /// `None` to serve forever.
    ///
    /// # Errors
    ///
    /// Socket bind/accept errors; per-connection I/O errors only terminate
    /// that connection.
    #[cfg(unix)]
    pub fn serve_unix(
        &self,
        path: &std::path::Path,
        max_connections: Option<usize>,
    ) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        std::thread::scope(|scope| {
            for (accepted, stream) in listener.incoming().enumerate() {
                let stream = stream?;
                scope.spawn(move || {
                    let reader = BufReader::new(&stream);
                    let _ = self.serve_lines(reader, &stream);
                });
                if max_connections.is_some_and(|max| accepted + 1 >= max) {
                    break;
                }
            }
            Ok(())
        })
    }

    /// Checks a session out of the pool for `graph`, installs the request's
    /// cancellation token, runs `work` on it outside any lock, and refiles
    /// the session. Only a session whose work *succeeded* returns to the
    /// pool (with its token detached); a session whose work errored or
    /// panicked is quarantined — it may be mid-mutation, and a dropped
    /// session can never leak its state into a later request.
    fn with_session<T>(
        &self,
        graph: &CsdfGraph,
        deadline: &CancelToken,
        work: impl FnOnce(&mut AnalysisSession) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        self.admit(graph)?;
        let session = {
            let mut pool = self.pool_guard();
            // Fired while the lock is held: a Checkout panic genuinely
            // poisons the pool mutex, like a real mid-checkout panic would.
            self.fault(FaultSite::Checkout)?;
            pool.checkout(graph).map_err(ServiceError::from)?
        };
        let mut lease = SessionLease {
            daemon: self,
            session: Some(session),
        };
        self.fault(FaultSite::Patch)?;
        let session = lease
            .session
            .as_mut()
            .expect("lease still holds its session");
        session.set_cancel_token(deadline.clone());
        let outcome = work(session);
        match outcome {
            Ok(value) => {
                let mut session = lease.session.take().expect("lease still holds its session");
                session.set_cancel_token(CancelToken::default());
                self.pool_guard().give_back(session);
                Ok(value)
            }
            // Dropping the lease quarantines the session.
            Err(error) => Err(error),
        }
    }

    /// Dispatches one request body to the matching handler, returning the
    /// response's payload fields.
    fn dispatch(
        &self,
        body: &RequestBody,
        deadline: &CancelToken,
    ) -> Result<Vec<(String, Json)>, ServiceError> {
        let load = |spec: &GraphSpec| {
            spec.load()
                .map_err(|message| ServiceError::new(ErrorKind::InvalidGraph, message))
        };
        match body {
            RequestBody::Evaluate { graph } => {
                let graph = load(graph)?;
                let (result, cache) = self.evaluate_cached(&graph, deadline)?;
                Ok(evaluate_fields(&result, cache))
            }
            RequestBody::Sweep { graph, slacks } => {
                let graph = load(graph)?;
                let sweep = ParetoSweep::uniform_slack(&graph, slacks).map_err(|error| {
                    ServiceError::new(ErrorKind::InvalidGraph, error.to_string())
                })?;
                let outcome = self.with_session(sweep.bounded().graph(), deadline, |session| {
                    sweep.run_on_session(session).map_err(ServiceError::from)
                })?;
                let points: Vec<Json> = outcome
                    .points
                    .iter()
                    .map(|point| {
                        Json::Object(vec![
                            ("slack".to_string(), Json::Int(point.label.into())),
                            (
                                "total_storage".to_string(),
                                Json::Int(point.total_storage.into()),
                            ),
                            (
                                "throughput".to_string(),
                                Json::Str(throughput_to_string(point.throughput())),
                            ),
                            (
                                "iterations".to_string(),
                                Json::Int(point.result.iterations as i128),
                            ),
                        ])
                    })
                    .collect();
                let frontier: Vec<Json> = outcome
                    .pareto_frontier()
                    .iter()
                    .map(|point| Json::Int(point.label.into()))
                    .collect();
                Ok(vec![
                    ("points".to_string(), Json::Array(points)),
                    ("frontier".to_string(), Json::Array(frontier)),
                ])
            }
            RequestBody::MinStorage {
                graph,
                target,
                max_slack,
            } => {
                let graph = load(graph)?;
                let max_slack = (*max_slack).max(1);
                let bounded = bound_all_buffers_tracked(&graph, |_, buffer| {
                    uniform_slack_capacity(buffer, max_slack)
                })
                .map_err(|error| ServiceError::new(ErrorKind::InvalidGraph, error.to_string()))?;
                let outcome = self.with_session(bounded.graph(), deadline, |session| {
                    min_storage_for_throughput_on(session, &bounded, *target, max_slack)
                        .map_err(ServiceError::from)
                })?;
                match outcome {
                    None => Ok(vec![("feasible".to_string(), Json::Bool(false))]),
                    Some(outcome) => Ok(vec![
                        ("feasible".to_string(), Json::Bool(true)),
                        ("slack".to_string(), Json::Int(outcome.slack.into())),
                        (
                            "total_storage".to_string(),
                            Json::Int(outcome.total_storage.into()),
                        ),
                        (
                            "throughput".to_string(),
                            Json::Str(throughput_to_string(outcome.result.throughput)),
                        ),
                        (
                            "evaluations".to_string(),
                            Json::Int(outcome.evaluations as i128),
                        ),
                    ]),
                }
            }
            RequestBody::ScenarioSet { graph, scenarios } => {
                let graph = load(graph)?;
                let mut set = ScenarioSet::new(graph);
                for scenario in scenarios {
                    set.add(scenario.name.clone(), scenario.markings.clone());
                }
                let outcomes = self.with_session(set.base(), deadline, |session| {
                    set.run_on_session(session).map_err(ServiceError::from)
                })?;
                let rendered: Vec<Json> = outcomes
                    .iter()
                    .map(|outcome| {
                        Json::Object(vec![
                            ("name".to_string(), Json::Str(outcome.name.clone())),
                            (
                                "throughput".to_string(),
                                Json::Str(throughput_to_string(outcome.result.throughput)),
                            ),
                            (
                                "iterations".to_string(),
                                Json::Int(outcome.result.iterations as i128),
                            ),
                        ])
                    })
                    .collect();
                Ok(vec![("scenarios".to_string(), Json::Array(rendered))])
            }
            RequestBody::Lint { graph } => Ok(lint_fields(&lint_spec(graph))),
            RequestBody::Verify {
                graph: spec,
                max_expansion,
            } => self.verify(spec, *max_expansion, deadline),
        }
    }

    /// The shared evaluate path: exact-keyed cache lookup, else a pooled
    /// session run whose result is cached. Returns the result and whether it
    /// was a cache `"hit"` or `"miss"`.
    fn evaluate_cached(
        &self,
        graph: &CsdfGraph,
        deadline: &CancelToken,
    ) -> Result<(KIterResult, &'static str), ServiceError> {
        self.admit(graph)?;
        let key = CacheKey::new(graph, &self.config.options);
        {
            let mut cache = self.cache_guard();
            // Fired while the lock is held: a Cache panic genuinely poisons
            // the cache mutex.
            self.fault(FaultSite::Cache)?;
            if let Some(result) = cache.get(&key) {
                return Ok((result, "hit"));
            }
        }
        let result = self.with_session(graph, deadline, |session| {
            self.fault(FaultSite::Solve)?;
            session.evaluate().map_err(ServiceError::from)
        })?;
        self.cache_guard().insert(key, result.clone());
        Ok((result, "miss"))
    }

    /// The `verify` handler: lint, solve, cross-check.
    ///
    /// Checks run only where they apply and each reports pass/fail: the lint
    /// bounds must bracket the solver's throughput, a lint-proven deadlock
    /// must match [`Throughput::Deadlocked`], and on graphs whose HSDF
    /// expansion stays within `max_expansion` phase-firing copies the
    /// expansion baseline must reproduce the solver's answer exactly. The
    /// verdict is `"agree"` when every executed check passed, `"disagree"`
    /// when any failed, and `"inconclusive"` when none could run (e.g. the
    /// solver exhausted a budget on a graph lint found clean).
    ///
    /// Each check runs under a budget: the request's own deadline when one
    /// is set, otherwise [`ServiceConfig::verify_check_budget_ms`] per
    /// check (the expansion baseline's wall-time budget is capped the same
    /// way), so one slow check cannot hang a verify forever.
    ///
    /// # Errors
    ///
    /// Only admission rejections ([`ServiceConfig::max_tasks`] /
    /// [`ServiceConfig::max_buffers`]); everything else — including solver
    /// failures — is reported inside the response fields.
    fn verify(
        &self,
        spec: &GraphSpec,
        max_expansion: u64,
        deadline: &CancelToken,
    ) -> Result<Vec<(String, Json)>, ServiceError> {
        let report = lint_spec(spec);
        let mut fields = lint_fields(&report);
        let mut checks: Vec<(&'static str, bool)> = Vec::new();
        let check_budget = Duration::from_millis(self.config.verify_check_budget_ms);
        match spec.load() {
            Err(error) => {
                // The importer rejected the graph: lint must have an error
                // diagnostic for the same input.
                fields.push(("solver_error".to_string(), Json::Str(error)));
                checks.push(("lint_flags_unloadable", report.has_errors()));
            }
            Ok(graph) => {
                self.admit(&graph)?;
                let check_token = if deadline.is_detached() {
                    CancelToken::with_deadline(check_budget)
                } else {
                    deadline.clone()
                };
                match self.evaluate_cached(&graph, &check_token) {
                    Err(error) => {
                        fields.push(("solver_error".to_string(), Json::Str(error.message)));
                        // A solver rejection is predicted by lint only when
                        // lint found an error; budget-type failures are
                        // unpredictable, so no check is recorded for them and
                        // the verdict stays inconclusive.
                        if report.has_errors() {
                            checks.push(("solver_rejection_predicted", true));
                        }
                    }
                    Ok((result, _)) => {
                        fields.push((
                            "throughput".to_string(),
                            Json::Str(throughput_to_string(result.throughput)),
                        ));
                        if let Some(bounds) = &report.bounds {
                            checks.push(("bounds_bracket", bounds.brackets(&result.throughput)));
                        }
                        if report.certain_deadlock() {
                            checks.push((
                                "deadlock_agreement",
                                result.throughput == Throughput::Deadlocked,
                            ));
                        }
                        fields.push(baseline_check(
                            &graph,
                            &result,
                            max_expansion,
                            check_budget,
                            &mut checks,
                        ));
                    }
                }
            }
        }
        let verdict = if checks.iter().any(|&(_, passed)| !passed) {
            "disagree"
        } else if checks.is_empty() {
            "inconclusive"
        } else {
            "agree"
        };
        let rendered: Vec<Json> = checks
            .iter()
            .map(|&(name, passed)| {
                Json::Object(vec![
                    ("check".to_string(), Json::Str(name.to_string())),
                    ("passed".to_string(), Json::Bool(passed)),
                ])
            })
            .collect();
        fields.push(("checks".to_string(), Json::Array(rendered)));
        fields.push(("verdict".to_string(), Json::Str(verdict.to_string())));
        Ok(fields)
    }
}

/// Renders one response line from the request id, the request kind (when it
/// parsed far enough to know one) and the handler outcome.
fn render_response(
    id: Option<i128>,
    kind: Option<&str>,
    outcome: Result<Vec<(String, Json)>, ServiceError>,
) -> String {
    let id_value = match id {
        Some(id) => Json::Int(id),
        None => Json::Null,
    };
    let mut entries = vec![("id".to_string(), id_value)];
    if let Some(kind) = kind {
        entries.push(("type".to_string(), Json::Str(kind.to_string())));
    }
    match outcome {
        Ok(fields) => {
            entries.push(("status".to_string(), Json::Str("ok".to_string())));
            entries.extend(fields);
        }
        Err(error) => {
            entries.push(("status".to_string(), Json::Str("error".to_string())));
            entries.push((
                "error".to_string(),
                Json::Object(vec![
                    (
                        "kind".to_string(),
                        Json::Str(error.kind.as_str().to_string()),
                    ),
                    ("message".to_string(), Json::Str(error.message)),
                ]),
            ));
        }
    }
    Json::Object(entries).to_string()
}

/// Best-effort id recovery from a line that failed before (or without) a
/// full parse: finds the first `"id"` key followed by an integer. Works on
/// truncated documents, so oversized-line rejections can still correlate.
fn scan_id(line: &str) -> Option<i128> {
    let mut rest = line;
    while let Some(position) = rest.find("\"id\"") {
        let after = rest[position + 4..].trim_start();
        if let Some(after) = after.strip_prefix(':') {
            let after = after.trim_start();
            let end = after
                .char_indices()
                .find(|&(index, c)| !(c.is_ascii_digit() || (index == 0 && c == '-')))
                .map_or(after.len(), |(index, _)| index);
            if let Ok(id) = after[..end].parse::<i128>() {
                return Some(id);
            }
        }
        rest = &rest[position + 4..];
    }
    None
}

/// The longest prefix of `line` within `limit` bytes that ends on a char
/// boundary.
fn prefix_window(line: &str, limit: usize) -> &str {
    if line.len() <= limit {
        return line;
    }
    let mut end = limit;
    while end > 0 && !line.is_char_boundary(end) {
        end -= 1;
    }
    &line[..end]
}

/// Consumes the remainder of the current line (up to and including the next
/// `\n`) without buffering it.
fn drain_line<R: BufRead>(reader: &mut R) -> std::io::Result<()> {
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&byte| byte == b'\n') {
            Some(position) => {
                reader.consume(position + 1);
                return Ok(());
            }
            None => {
                let length = chunk.len();
                reader.consume(length);
            }
        }
    }
}

/// Renders a panic payload for the `internal_panic` response message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs the HSDF-expansion baseline when the expansion stays within
/// `max_expansion` phase-firing copies, recording a `baseline_agreement`
/// check; returns the `baseline` response field (`"skipped"` when too large
/// or out of budget).
fn baseline_check(
    graph: &CsdfGraph,
    result: &KIterResult,
    max_expansion: u64,
    max_wall_time: Duration,
    checks: &mut Vec<(&'static str, bool)>,
) -> (String, Json) {
    let field = |value: String| ("baseline".to_string(), Json::Str(value));
    let size = graph.repetition_vector().ok().map(|q| {
        graph
            .tasks()
            .map(|(id, task)| q.get(id) as u128 * task.phase_count() as u128)
            .sum::<u128>()
    });
    match size {
        Some(size) if size <= max_expansion as u128 => {
            let budget = Budget {
                max_events: max_expansion,
                max_wall_time,
            };
            match expansion_throughput(graph, &budget) {
                Ok(baseline) if baseline.status == EvaluationStatus::Exact => {
                    checks.push((
                        "baseline_agreement",
                        baseline.throughput == Some(result.throughput),
                    ));
                    field(match baseline.throughput {
                        Some(throughput) => throughput_to_string(throughput),
                        None => "none".to_string(),
                    })
                }
                _ => field("skipped".to_string()),
            }
        }
        _ => field("skipped".to_string()),
    }
}

/// Maps a [`GraphSpec`] through the static analyzer; importer failures come
/// back as `L000`/`L003` diagnostics rather than errors.
fn lint_spec(spec: &GraphSpec) -> LintReport {
    let format = match spec.format {
        GraphFormat::Sdf3 => csdf_lint::InputFormat::Sdf3,
        GraphFormat::Text => csdf_lint::InputFormat::Text,
    };
    csdf_lint::lint_source(&spec.source, format, &LintOptions::default())
}

/// The payload fields shared by `lint` responses and the lint part of
/// `verify` responses.
fn lint_fields(report: &LintReport) -> Vec<(String, Json)> {
    let diagnostics: Vec<Json> = report.diagnostics.iter().map(diagnostic_json).collect();
    let mut fields = vec![
        ("diagnostics".to_string(), Json::Array(diagnostics)),
        (
            "errors".to_string(),
            Json::Int(report.error_count() as i128),
        ),
        (
            "warnings".to_string(),
            Json::Int(report.warning_count() as i128),
        ),
        (
            "certain_deadlock".to_string(),
            Json::Bool(report.certain_deadlock()),
        ),
    ];
    if let Some(bounds) = &report.bounds {
        fields.push((
            "bounds".to_string(),
            Json::Object(vec![
                (
                    "lower".to_string(),
                    Json::Str(throughput_to_string(bounds.lower)),
                ),
                (
                    "upper".to_string(),
                    Json::Str(throughput_to_string(bounds.upper)),
                ),
            ]),
        ));
    }
    fields
}

/// One diagnostic as a JSON object (`line`/`tasks`/`buffers` only when set).
fn diagnostic_json(diagnostic: &csdf_lint::Diagnostic) -> Json {
    let mut entries = vec![
        (
            "code".to_string(),
            Json::Str(diagnostic.code.as_str().to_string()),
        ),
        (
            "severity".to_string(),
            Json::Str(diagnostic.severity().to_string()),
        ),
        ("message".to_string(), Json::Str(diagnostic.message.clone())),
    ];
    if let Some(line) = diagnostic.line {
        entries.push(("line".to_string(), Json::Int(line as i128)));
    }
    if !diagnostic.tasks.is_empty() {
        let tasks: Vec<Json> = diagnostic
            .tasks
            .iter()
            .map(|task| Json::Str(task.clone()))
            .collect();
        entries.push(("tasks".to_string(), Json::Array(tasks)));
    }
    if !diagnostic.buffers.is_empty() {
        let buffers: Vec<Json> = diagnostic
            .buffers
            .iter()
            .map(|buffer| {
                Json::Object(vec![
                    ("index".to_string(), Json::Int(buffer.index as i128)),
                    ("source".to_string(), Json::Str(buffer.source.clone())),
                    ("target".to_string(), Json::Str(buffer.target.clone())),
                ])
            })
            .collect();
        entries.push(("buffers".to_string(), Json::Array(buffers)));
    }
    Json::Object(entries)
}

/// The payload fields of an evaluate response.
fn evaluate_fields(result: &KIterResult, cache: &str) -> Vec<(String, Json)> {
    let periodicity: Vec<Json> = (0..result.periodicity.len())
        .map(|index| Json::Int(result.periodicity.get(TaskId::new(index)).into()))
        .collect();
    let critical: Vec<Json> = result
        .critical_tasks
        .iter()
        .map(|task| Json::Int(task.index() as i128))
        .collect();
    vec![
        ("cache".to_string(), Json::Str(cache.to_string())),
        (
            "throughput".to_string(),
            Json::Str(throughput_to_string(result.throughput)),
        ),
        (
            "iterations".to_string(),
            Json::Int(result.iterations as i128),
        ),
        ("periodicity".to_string(), Json::Array(periodicity)),
        ("critical_tasks".to_string(), Json::Array(critical)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_id_recovers_ids_from_partial_lines() {
        assert_eq!(scan_id(r#"{"id":42,"type":"evaluate""#), Some(42));
        assert_eq!(scan_id(r#"{"id" : -7 ,"#), Some(-7));
        assert_eq!(scan_id(r#"{"type":"evaluate"}"#), None);
        assert_eq!(scan_id(r#"{"id":"string"}"#), None);
        assert_eq!(scan_id(r#"{"id":null,"other":{"id":5}}"#), Some(5));
        assert_eq!(scan_id("not json at all"), None);
    }

    #[test]
    fn prefix_window_respects_char_boundaries() {
        assert_eq!(prefix_window("hello", 10), "hello");
        assert_eq!(prefix_window("hello", 3), "hel");
        // 'é' is two bytes; a limit inside it backs off to the boundary.
        assert_eq!(prefix_window("aé", 2), "a");
    }

    #[test]
    fn error_kinds_have_stable_wire_strings() {
        for (kind, wire) in [
            (ErrorKind::Parse, "parse"),
            (ErrorKind::Rejected, "rejected"),
            (ErrorKind::InvalidGraph, "invalid_graph"),
            (ErrorKind::DeadlineExceeded, "deadline_exceeded"),
            (ErrorKind::InternalPanic, "internal_panic"),
            (ErrorKind::Evaluation, "evaluation"),
        ] {
            assert_eq!(kind.as_str(), wire);
        }
    }

    #[test]
    fn analysis_errors_classify_into_the_taxonomy() {
        let deadline: ServiceError = AnalysisError::DeadlineExceeded.into();
        assert_eq!(deadline.kind, ErrorKind::DeadlineExceeded);
        let model: ServiceError = AnalysisError::Model(csdf::CsdfError::EmptyGraph).into();
        assert_eq!(model.kind, ErrorKind::InvalidGraph);
        let budget: ServiceError = AnalysisError::IterationLimitReached { iterations: 3 }.into();
        assert_eq!(budget.kind, ErrorKind::Evaluation);
    }
}
