//! The analysis daemon.
//!
//! Default mode reads line-delimited JSON requests from stdin until EOF,
//! fans them over the worker pool, and writes the responses to stdout in
//! request order. With `--socket PATH` it serves streaming connections on a
//! Unix socket instead (one response per request line, flushed
//! immediately). Either way, pool and cache statistics go to stderr as one
//! JSON line on exit.
//!
//! ```text
//! csdf_service [--socket PATH] [--workers N] [--pool N] [--cache N]
//!              [--max-connections N]
//! ```

use std::io::Write;
use std::process::ExitCode;

use csdf_service::{Daemon, ServiceConfig};

struct Args {
    socket: Option<std::path::PathBuf>,
    max_connections: Option<usize>,
    config: ServiceConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        max_connections: None,
        config: ServiceConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--socket" => args.socket = Some(value("--socket")?.into()),
            "--max-connections" => {
                args.max_connections = Some(
                    value("--max-connections")?
                        .parse()
                        .map_err(|_| "--max-connections expects an integer".to_string())?,
                );
            }
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers expects an integer".to_string())?;
            }
            "--pool" => {
                args.config.pool_capacity = value("--pool")?
                    .parse()
                    .map_err(|_| "--pool expects an integer".to_string())?;
            }
            "--cache" => {
                args.config.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|_| "--cache expects an integer".to_string())?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: csdf_service [--socket PATH] [--workers N] [--pool N] [--cache N] [--max-connections N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("csdf_service: {message}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = Daemon::new(args.config);
    let served = match &args.socket {
        Some(path) => serve_socket(&daemon, path, args.max_connections),
        None => serve_stdin(&daemon),
    };
    let pool = daemon.pool_stats();
    let cache = daemon.cache_stats();
    eprintln!(
        "{{\"checkouts\":{},\"warm\":{},\"cold\":{},\"warm_hit_rate\":{:.4},\"cache_hits\":{},\"cache_misses\":{}}}",
        pool.checkouts,
        pool.warm,
        pool.cold,
        pool.warm_hit_rate(),
        cache.hits,
        cache.misses
    );
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("csdf_service: {error}");
            ExitCode::FAILURE
        }
    }
}

fn serve_stdin(daemon: &Daemon) -> std::io::Result<()> {
    let input = std::io::read_to_string(std::io::stdin())?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for response in daemon.run_batch(&input) {
        writeln!(out, "{response}")?;
    }
    out.flush()
}

#[cfg(unix)]
fn serve_socket(
    daemon: &Daemon,
    path: &std::path::Path,
    max_connections: Option<usize>,
) -> std::io::Result<()> {
    daemon.serve_unix(path, max_connections)
}

#[cfg(not(unix))]
fn serve_socket(
    _daemon: &Daemon,
    _path: &std::path::Path,
    _max_connections: Option<usize>,
) -> std::io::Result<()> {
    Err(std::io::Error::other(
        "--socket requires a Unix platform; use the stdin batch mode",
    ))
}
