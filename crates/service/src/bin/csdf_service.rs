//! The analysis daemon.
//!
//! Default mode reads line-delimited JSON requests from stdin until EOF,
//! fans them over the worker pool, and writes the responses to stdout in
//! request order. With `--socket PATH` it serves streaming connections on a
//! Unix socket instead (one response per request line, flushed
//! immediately). Either way, pool, cache and fault-containment statistics
//! go to stderr as one JSON line on exit.
//!
//! ```text
//! csdf_service [--socket PATH] [--workers N] [--pool N] [--cache N]
//!              [--max-connections N] [--deadline-ms N] [--max-line-bytes N]
//!              [--max-tasks N] [--max-buffers N] [--max-inflight N]
//! ```

use std::io::Write;
use std::process::ExitCode;

use csdf_service::{Daemon, ServiceConfig};

struct Args {
    socket: Option<std::path::PathBuf>,
    max_connections: Option<usize>,
    config: ServiceConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        max_connections: None,
        config: ServiceConfig::default(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} expects a value"));
        fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("{flag} expects an integer"))
        }
        match flag.as_str() {
            "--socket" => args.socket = Some(value("--socket")?.into()),
            "--max-connections" => {
                args.max_connections =
                    Some(parse("--max-connections", &value("--max-connections")?)?);
            }
            "--workers" => args.config.workers = parse("--workers", &value("--workers")?)?,
            "--pool" => args.config.pool_capacity = parse("--pool", &value("--pool")?)?,
            "--cache" => args.config.cache_capacity = parse("--cache", &value("--cache")?)?,
            "--deadline-ms" => {
                args.config.default_deadline_ms =
                    Some(parse("--deadline-ms", &value("--deadline-ms")?)?);
            }
            "--max-line-bytes" => {
                args.config.max_line_bytes =
                    parse("--max-line-bytes", &value("--max-line-bytes")?)?;
            }
            "--max-tasks" => args.config.max_tasks = parse("--max-tasks", &value("--max-tasks")?)?,
            "--max-buffers" => {
                args.config.max_buffers = parse("--max-buffers", &value("--max-buffers")?)?;
            }
            "--max-inflight" => {
                args.config.max_inflight = parse("--max-inflight", &value("--max-inflight")?)?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: csdf_service [--socket PATH] [--workers N] [--pool N] [--cache N] \
                     [--max-connections N] [--deadline-ms N] [--max-line-bytes N] \
                     [--max-tasks N] [--max-buffers N] [--max-inflight N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("csdf_service: {message}");
            return ExitCode::FAILURE;
        }
    };
    let daemon = Daemon::new(args.config);
    let served = match &args.socket {
        Some(path) => serve_socket(&daemon, path, args.max_connections),
        None => serve_stdin(&daemon),
    };
    let pool = daemon.pool_stats();
    let cache = daemon.cache_stats();
    let service = daemon.service_stats();
    eprintln!(
        "{{\"checkouts\":{},\"warm\":{},\"cold\":{},\"warm_hit_rate\":{:.4},\"returned\":{},\"quarantined\":{},\"cache_hits\":{},\"cache_misses\":{},\"panics_caught\":{},\"deadline_exceeded\":{},\"rejected\":{},\"pool_poison_recoveries\":{},\"cache_poison_recoveries\":{}}}",
        pool.checkouts,
        pool.warm,
        pool.cold,
        pool.warm_hit_rate(),
        pool.returned,
        pool.quarantined,
        cache.hits,
        cache.misses,
        service.panics_caught,
        service.deadline_exceeded,
        service.rejected,
        service.pool_poison_recoveries,
        service.cache_poison_recoveries
    );
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("csdf_service: {error}");
            ExitCode::FAILURE
        }
    }
}

fn serve_stdin(daemon: &Daemon) -> std::io::Result<()> {
    let input = std::io::read_to_string(std::io::stdin())?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for response in daemon.run_batch(&input) {
        writeln!(out, "{response}")?;
    }
    out.flush()
}

#[cfg(unix)]
fn serve_socket(
    daemon: &Daemon,
    path: &std::path::Path,
    max_connections: Option<usize>,
) -> std::io::Result<()> {
    daemon.serve_unix(path, max_connections)
}

#[cfg(not(unix))]
fn serve_socket(
    _daemon: &Daemon,
    _path: &std::path::Path,
    _max_connections: Option<usize>,
) -> std::io::Result<()> {
    Err(std::io::Error::other(
        "--socket requires a Unix platform; use the stdin batch mode",
    ))
}
