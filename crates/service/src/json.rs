//! A minimal JSON value, parser and writer.
//!
//! The build environment is offline, so the service protocol is carried by
//! this hand-rolled implementation instead of a JSON crate. It covers the
//! full JSON grammar with two deliberate choices: numbers without a
//! fraction or exponent are kept exact as [`Json::Int`] (`i128`, so request
//! ids and token counts never round), and object keys keep their document
//! order (responses render deterministically).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep document/insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            position: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.position != parser.bytes.len() {
            return Err(format!(
                "trailing data at byte {} of the JSON document",
                parser.position
            ));
        }
        Ok(value)
    }

    /// Looks up a key of an object (`None` for other variants too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(value) => Some(value),
            _ => None,
        }
    }

    /// The exact integer payload, if this is an integer.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(value) => Some(*value),
            _ => None,
        }
    }

    /// The integer payload as a `u64`, when in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|value| u64::try_from(value).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(values) => Some(values),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(value) => write!(f, "{value}"),
            Json::Int(value) => write!(f, "{value}"),
            Json::Float(value) => {
                if value.is_finite() {
                    write!(f, "{value}")
                } else {
                    // JSON has no NaN/Infinity; degrade to null like most
                    // serialisers do.
                    f.write_str("null")
                }
            }
            Json::Str(value) => write_escaped(f, value),
            Json::Array(values) => {
                f.write_str("[")?;
                for (index, value) in values.iter().enumerate() {
                    if index > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{value}")?;
                }
                f.write_str("]")
            }
            Json::Object(entries) => {
                f.write_str("{")?;
                for (index, (key, value)) in entries.iter().enumerate() {
                    if index > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, value: &str) -> fmt::Result {
    f.write_str("\"")?;
    let mut rest = value;
    while let Some(position) = rest.find(|c: char| c == '"' || c == '\\' || (c as u32) < 0x20) {
        f.write_str(&rest[..position])?;
        let character = rest[position..].chars().next().expect("found above");
        match character {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            control => write!(f, "\\u{:04x}", control as u32)?,
        }
        rest = &rest[position + character.len_utf8()..];
    }
    f.write_str(rest)?;
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&byte) = self.bytes.get(self.position) {
            if matches!(byte, b' ' | b'\t' | b'\n' | b'\r') {
                self.position += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.position).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.position += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                byte as char, self.position
            ))
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.position..].starts_with(literal.as_bytes()) {
            self.position += literal.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.position))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.position
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.position += 1;
            return Ok(Json::Array(values));
        }
        loop {
            self.skip_whitespace();
            values.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b']') => {
                    self.position += 1;
                    return Ok(Json::Array(values));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.position)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.position += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.position += 1,
                Some(b'}') => {
                    self.position += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.position)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.position;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.position += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.position += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {start}")),
                    }
                    self.position += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape in
                    // one go — both delimiters are ASCII, so the run never
                    // splits a multi-byte character and stays valid UTF-8.
                    let mut end = self.position;
                    while let Some(&byte) = self.bytes.get(end) {
                        if byte == b'"' || byte == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[self.position..end])
                        .map_err(|_| "invalid UTF-8")?;
                    out.push_str(chunk);
                    self.position = end;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (surrogate pairs supported).
    fn unicode_escape(&mut self) -> Result<char, String> {
        self.position += 1; // the `u`
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.peek() == Some(b'\\') {
                self.position += 1;
                if self.peek() == Some(b'u') {
                    self.position += 1;
                    let second = self.hex4()?;
                    if (0xDC00..0xE000).contains(&second) {
                        let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                        return char::from_u32(combined)
                            .ok_or_else(|| "invalid surrogate pair".to_string());
                    }
                }
            }
            return Err("lone high surrogate".to_string());
        }
        char::from_u32(first).ok_or_else(|| "invalid unicode escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.position + 4;
        if end > self.bytes.len() {
            return Err("truncated unicode escape".to_string());
        }
        let digits = std::str::from_utf8(&self.bytes[self.position..end])
            .map_err(|_| "invalid unicode escape")?;
        let value = u32::from_str_radix(digits, 16)
            .map_err(|_| format!("invalid unicode escape `\\u{digits}`"))?;
        self.position = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.position;
        if self.peek() == Some(b'-') {
            self.position += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.position += 1;
        }
        let mut exact = true;
        if self.peek() == Some(b'.') {
            exact = false;
            self.position += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            exact = false;
            self.position += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.position += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.position += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.position]).map_err(|_| "invalid number")?;
        if exact {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("invalid integer `{text}` at byte {start}"))
        } else {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("invalid number `{text}` at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(
            Json::parse("[1, 2, 3]").unwrap(),
            Json::Array(vec![Json::Int(1), Json::Int(2), Json::Int(3)])
        );
        let object = Json::parse(r#"{"a": "x", "b": [true, null]}"#).unwrap();
        assert_eq!(object.get("a").and_then(Json::as_str), Some("x"));
        assert_eq!(
            object.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert!(object.get("missing").is_none());
    }

    #[test]
    fn large_integers_stay_exact() {
        let value = Json::parse("170141183460469231731687303715884105727").unwrap();
        assert_eq!(value.as_i128(), Some(i128::MAX));
    }

    #[test]
    fn strings_unescape_and_re_escape() {
        let parsed = Json::parse(r#""a\nb\t\"q\" \\ \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("a\nb\t\"q\" \\ é 😀"));
        // Render → parse is the identity.
        let rendered = parsed.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn round_trips_nested_documents() {
        let source = r#"{"id":7,"type":"sweep","graph":{"format":"text","source":"graph g\ntask a durations=1\n"},"slacks":[1,2,3]}"#;
        let parsed = Json::parse(source).unwrap();
        assert_eq!(parsed.to_string(), source);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"open",
            "1 2",
            "{,}",
            "nan",
            "\"\\q\"",
            "01x",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }
}
