//! A throughput-analysis service for CSDF graphs.
//!
//! The workspace's analyses — optimal throughput ([`kperiodic`]),
//! Pareto sweeps, minimal-storage searches and scenario studies
//! ([`csdf_explore`]) — are library calls that pay a per-graph setup cost
//! (arena construction, solver scratch). This crate packages them as a
//! long-running daemon so that cost is paid once per graph *structure*, not
//! once per request:
//!
//! - [`protocol`]: line-delimited JSON requests/responses (hand-rolled in
//!   [`json`], no dependencies), with SDF3 XML or the workspace text format
//!   as inline graph encodings and exact `"num/den"` throughput strings.
//! - [`Daemon`]: owns a [`kperiodic::SessionPool`] (warm
//!   [`kperiodic::AnalysisSession`]s routed by structure fingerprint) and a
//!   bounded LRU [`ResultCache`] of evaluate results, and fans batches over
//!   a scoped worker pool with deterministic response ordering.
//! - Transports: a stdin/stdout batch mode and a Unix-socket streaming mode
//!   (`csdf_service` binary), both answering through the same
//!   [`Daemon::handle_line`] so responses are bit-identical across
//!   transports and to direct library calls.
//! - Fault containment: handler panics are caught per request, poisoned
//!   locks recover, errored sessions are quarantined, deadlines cancel
//!   solves cooperatively and admission caps shed oversized work — see
//!   [`daemon`]'s module docs. The [`fault`] module injects faults
//!   deterministically for the chaos test-suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod daemon;
pub mod fault;
pub mod json;
pub mod protocol;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use daemon::{Daemon, ErrorKind, ServiceConfig, ServiceError, ServiceStats};
pub use fault::{FaultAction, FaultPlan, FaultSite};
pub use json::Json;
pub use protocol::{
    parse_request, parse_throughput, throughput_to_string, GraphFormat, GraphSpec, Request,
    RequestBody, ScenarioSpec,
};
