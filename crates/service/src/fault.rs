//! Deterministic fault injection for the chaos test-suite.
//!
//! A [`FaultPlan`] names request-handling *sites* ([`FaultSite`]) at which a
//! fault fires: a panic, a delay, or an injected error. The daemon carries an
//! optional plan (installed through `Daemon::with_fault_plan`, available only
//! with the `fault-injection` cargo feature so production builds cannot
//! inject faults) and polls it at each site; without a plan every poll is a
//! no-op on a `None`.
//!
//! Rules are **count-windowed**: a rule fires for the occurrences numbered
//! `skip .. skip + count` of its site (counted per rule, atomically), so a
//! test can panic exactly the third checkout and nothing else. With a
//! single-threaded daemon the firing sequence is deterministic, which is what
//! lets the chaos harness compare transports bit-for-bit while faults fire.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A request-handling site at which a [`FaultPlan`] rule can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// After the request line parsed, before dispatch.
    Parse,
    /// Inside the pool lock, during session checkout (a panic here genuinely
    /// poisons the pool mutex).
    Checkout,
    /// After checkout, before the session runs its work (mid-mutation from
    /// the pool's point of view: the session is checked out and unreturned).
    Patch,
    /// Inside the evaluation closure, in place of the solve.
    Solve,
    /// Inside the cache lock, during lookup/insert (a panic here genuinely
    /// poisons the cache mutex).
    Cache,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultSite::Parse => "parse",
            FaultSite::Checkout => "checkout",
            FaultSite::Patch => "patch",
            FaultSite::Solve => "solve",
            FaultSite::Cache => "cache",
        };
        f.write_str(name)
    }
}

/// What an armed rule does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// `panic!` with a recognisable payload (exercises `catch_unwind` and
    /// lock-poison recovery).
    Panic,
    /// Sleep for the given duration (exercises deadlines and in-flight
    /// shedding), then continue normally.
    Delay(Duration),
    /// Fail the site with the given message (exercises error paths without
    /// unwinding).
    Error(String),
}

#[derive(Debug)]
struct Rule {
    site: FaultSite,
    /// Occurrences of `site` (per this rule) that pass through unharmed
    /// before the rule starts firing.
    skip: usize,
    /// Number of occurrences the rule fires for once started.
    count: usize,
    action: FaultAction,
    seen: AtomicUsize,
}

/// An ordered set of count-windowed fault rules polled by the daemon.
///
/// # Examples
///
/// ```
/// use csdf_service::{FaultAction, FaultPlan, FaultSite};
///
/// // Panic on the second checkout only.
/// let plan = FaultPlan::new().inject_window(FaultSite::Checkout, 1, 1, FaultAction::Panic);
/// assert!(plan.fire(FaultSite::Checkout).is_ok());
/// assert!(std::panic::catch_unwind(|| plan.fire(FaultSite::Checkout)).is_err());
/// assert!(plan.fire(FaultSite::Checkout).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// An empty plan (no rule ever fires).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Arms `action` for every occurrence of `site` (builder form).
    #[must_use]
    pub fn inject(self, site: FaultSite, action: FaultAction) -> FaultPlan {
        self.inject_window(site, 0, usize::MAX, action)
    }

    /// Arms `action` for the occurrences of `site` numbered
    /// `skip .. skip + count` (builder form). Occurrences are counted per
    /// rule, atomically.
    #[must_use]
    pub fn inject_window(
        mut self,
        site: FaultSite,
        skip: usize,
        count: usize,
        action: FaultAction,
    ) -> FaultPlan {
        self.rules.push(Rule {
            site,
            skip,
            count,
            action,
            seen: AtomicUsize::new(0),
        });
        self
    }

    /// Polls the plan at `site`: every matching rule counts the occurrence
    /// and, inside its window, performs its action.
    ///
    /// # Errors
    ///
    /// The message of a fired [`FaultAction::Error`] rule.
    ///
    /// # Panics
    ///
    /// A fired [`FaultAction::Panic`] rule panics with the payload
    /// `"injected panic at <site>"`.
    pub fn fire(&self, site: FaultSite) -> Result<(), String> {
        for rule in &self.rules {
            if rule.site != site {
                continue;
            }
            let seen = rule.seen.fetch_add(1, Ordering::SeqCst);
            if seen < rule.skip || seen - rule.skip >= rule.count {
                continue;
            }
            match &rule.action {
                FaultAction::Panic => panic!("injected panic at {site}"),
                FaultAction::Delay(duration) => std::thread::sleep(*duration),
                FaultAction::Error(message) => return Err(message.clone()),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_fire_per_rule() {
        let plan = FaultPlan::new()
            .inject_window(FaultSite::Solve, 1, 2, FaultAction::Error("boom".into()))
            .inject(FaultSite::Cache, FaultAction::Delay(Duration::ZERO));
        assert_eq!(plan.fire(FaultSite::Solve), Ok(()));
        assert_eq!(plan.fire(FaultSite::Solve), Err("boom".to_string()));
        assert_eq!(plan.fire(FaultSite::Solve), Err("boom".to_string()));
        assert_eq!(plan.fire(FaultSite::Solve), Ok(()));
        // Unrelated sites are untouched by the solve rule.
        assert_eq!(plan.fire(FaultSite::Cache), Ok(()));
        assert_eq!(plan.fire(FaultSite::Parse), Ok(()));
    }

    #[test]
    fn panic_payload_names_the_site() {
        let plan = FaultPlan::new().inject(FaultSite::Checkout, FaultAction::Panic);
        let payload = std::panic::catch_unwind(|| plan.fire(FaultSite::Checkout)).unwrap_err();
        let message = payload.downcast_ref::<String>().unwrap();
        assert_eq!(message, "injected panic at checkout");
    }
}
